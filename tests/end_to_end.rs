//! Cross-crate integration: the full pipeline from cluster description
//! to runtime selection, exercised through the `collsel` facade.

use collsel::coll::{bcast, BcastAlg};
use collsel::estim::measure::bcast_time;
use collsel::estim::Precision;
use collsel::mpi::simulate;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::{OpenMpiFixedSelector, Selector};
use collsel::{Tuner, TunerConfig};
use collsel_support::Bytes;

fn quiet_gros() -> ClusterModel {
    ClusterModel::gros().with_noise(NoiseParams::OFF)
}

#[test]
fn tuned_selector_beats_openmpi_on_average() {
    // A miniature of the paper's headline result: across a size sweep,
    // the tuned model-based picks degrade less (vs the measured best at
    // 8 KB segments) than the native Open MPI picks.
    let cluster = quiet_gros();
    let p = 32;
    let seg = 8 * 1024;
    let precision = Precision::quick();

    let tuned = Tuner::new(cluster.clone(), TunerConfig::quick(16)).tune();
    let model_sel = tuned.selector();
    let ompi_sel = OpenMpiFixedSelector;

    let mut model_total = 0.0;
    let mut ompi_total = 0.0;
    let mut best_total = 0.0;
    for m in [8 * 1024, 64 * 1024, 512 * 1024, 2 << 20] {
        let mut best = f64::MAX;
        let mut by_alg = std::collections::BTreeMap::new();
        for alg in BcastAlg::ALL {
            let t = bcast_time(&cluster, alg, p, m, seg, &precision, 11).mean;
            best = best.min(t);
            by_alg.insert(alg, t);
        }
        let model_t = by_alg[&model_sel.select(p, m).alg];
        let ompi_pick = ompi_sel.select(p, m);
        let ompi_t = bcast_time(
            &cluster,
            ompi_pick.alg,
            p,
            m,
            ompi_pick.effective_seg_size(m),
            &precision,
            11,
        )
        .mean;
        model_total += model_t;
        ompi_total += ompi_t;
        best_total += best;
    }
    assert!(
        model_total < ompi_total,
        "model-based ({model_total:.6}s) should beat Open MPI ({ompi_total:.6}s) in total"
    );
    assert!(
        model_total < best_total * 1.5,
        "model-based ({model_total:.6}s) should be near the best ({best_total:.6}s)"
    );
}

#[test]
fn tuned_selection_runs_the_selected_algorithm() {
    // Selection feeds straight into execution: broadcast with whatever
    // the tuned selector picks and verify delivery.
    let cluster = quiet_gros();
    let tuned = Tuner::new(cluster.clone(), TunerConfig::quick(12)).tune();
    let selector = tuned.selector();
    let p = 24;
    let m = 96 * 1024;
    let pick = selector.select(p, m);
    let payload = Bytes::from((0..m).map(|i| (i % 241) as u8).collect::<Vec<_>>());
    let expected = payload.clone();
    let out = simulate(&cluster, p, 3, move |ctx| {
        let msg = (ctx.rank() == 0).then(|| payload.clone());
        bcast(ctx, pick.alg, 0, msg, m, pick.effective_seg_size(m))
    })
    .unwrap();
    assert!(out.results.iter().all(|r| r == &expected));
}

#[test]
fn gamma_estimates_are_stable_across_seeds() {
    // With noise on, two estimations with different seeds must agree
    // within the measurement methodology's tolerance.
    let cluster = ClusterModel::gros(); // noise on
    let cfg = collsel::estim::GammaConfig {
        max_width: 5,
        ..collsel::estim::GammaConfig::quick()
    };
    let a = collsel::estim::estimate_gamma(&cluster, &cfg, 1).table;
    let b = collsel::estim::estimate_gamma(&cluster, &cfg, 99).table;
    for p in 3..=5 {
        let (ga, gb) = (a.gamma(p), b.gamma(p));
        assert!(
            (ga - gb).abs() / ga < 0.15,
            "gamma({p}) unstable: {ga} vs {gb}"
        );
    }
}

#[test]
fn facade_reexports_are_wired() {
    // Spot-check that every layer is reachable through the facade.
    let _ = collsel::netsim::ClusterModel::grisou();
    let _ = collsel::coll::BcastAlg::ALL;
    let _ = collsel::model::GammaTable::ones();
    let _ = collsel::estim::Precision::paper();
    let _ = collsel::select::OpenMpiFixedSelector;
}

#[test]
fn two_clusters_get_different_tuned_parameters() {
    // The whole point of platform-specific tuning: Grisou and Gros must
    // not produce identical parameter tables.
    let grisou = Tuner::new(
        ClusterModel::grisou().with_noise(NoiseParams::OFF),
        TunerConfig::quick(12),
    )
    .tune();
    let gros = Tuner::new(quiet_gros(), TunerConfig::quick(12)).tune();
    let diff = BcastAlg::ALL.iter().any(|alg| {
        let a = grisou.params[alg].hockney;
        let b = gros.params[alg].hockney;
        (a.alpha - b.alpha).abs() > 1e-12 || (a.beta - b.beta).abs() > 1e-15
    });
    assert!(diff, "clusters should tune differently");
    // And gamma should reflect the bandwidth-latency ratio difference.
    assert!(grisou.gamma.table.gamma(7) > gros.gamma.table.gamma(7));
}

#[test]
fn tuner_handles_oversubscribed_rack_topologies() {
    use collsel::netsim::SimSpan;
    // A fat-tree-ish platform: 32 nodes in racks of 8, 4x oversubscribed.
    let cluster = collsel::netsim::ClusterModel::builder("racked", 32)
        .bandwidth_gbps(10.0)
        .wire_latency(SimSpan::from_micros(20))
        .racks(8, 4.0, SimSpan::from_micros(5))
        .noise(NoiseParams::OFF)
        .build();
    let model = Tuner::new(cluster.clone(), TunerConfig::quick(16)).tune();
    let selector = model.selector();
    // The tuned selector must produce a valid pick and the pick must
    // actually run on the racked platform.
    let pick = selector.select(32, 256 * 1024);
    let m = 256 * 1024;
    let payload = Bytes::from(vec![9u8; m]);
    let expected = payload.clone();
    let out = simulate(&cluster, 32, 5, move |ctx| {
        let msg = (ctx.rank() == 0).then(|| payload.clone());
        bcast(ctx, pick.alg, 0, msg, m, pick.effective_seg_size(m))
    })
    .unwrap();
    assert!(out.results.iter().all(|r| r == &expected));
    // Oversubscription must slow the flat linear broadcast relative to
    // the same cluster without racks (it floods cross-rack links).
    let flat = collsel::netsim::ClusterModel::builder("flat", 32)
        .bandwidth_gbps(10.0)
        .wire_latency(SimSpan::from_micros(20))
        .noise(NoiseParams::OFF)
        .build();
    let t_racked = bcast_time(
        &cluster,
        BcastAlg::Linear,
        32,
        1 << 20,
        8 * 1024,
        &Precision::quick(),
        3,
    )
    .mean;
    let t_flat = bcast_time(
        &flat,
        BcastAlg::Linear,
        32,
        1 << 20,
        8 * 1024,
        &Precision::quick(),
        3,
    )
    .mean;
    assert!(
        t_racked > t_flat,
        "oversubscription should cost: racked {t_racked} vs flat {t_flat}"
    );
}
