//! Chaos suite: the full sim → estim → select pipeline under injected
//! faults. For every canned fault plan on both cluster presets, tuning
//! must either complete or return a typed error — never panic, never
//! hang — and the graceful selector must answer every query, reporting
//! whether the model or the Open MPI rules decided.

use collsel::coll::BcastAlg;
use collsel::estim::{Precision, RetryPolicy};
use collsel::netsim::{Brownout, ClusterModel, FaultPlan, NoiseParams, SimSpan, SimTime};
use collsel::select::DecisionSource;
use collsel::{Tuner, TunerConfig};

const TUNE_P: usize = 8;

fn presets() -> Vec<ClusterModel> {
    vec![
        ClusterModel::grisou().with_noise(NoiseParams::OFF),
        ClusterModel::gros().with_noise(NoiseParams::OFF),
    ]
}

fn canned_plans(nodes: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "degraded-link",
            FaultPlan::degraded_links(nodes, 3, 4.0, 11),
        ),
        ("straggler", FaultPlan::stragglers(TUNE_P, 2, 6.0, 12)),
        (
            "brown-out",
            FaultPlan::brownouts(
                nodes,
                2,
                SimSpan::from_millis(50),
                SimSpan::from_millis(5),
                8.0,
                13,
            ),
        ),
    ]
}

/// For each canned plan on each preset: tuning completes or returns a
/// typed error; the selector never panics; fallback is reported via the
/// decision metadata.
#[test]
fn tuning_under_faults_completes_or_reports_typed_errors() {
    for cluster in presets() {
        for (label, plan) in canned_plans(cluster.nodes()) {
            let faulted = cluster.clone().with_faults(plan);
            let tuner = Tuner::new(faulted, TunerConfig::quick(TUNE_P));
            match tuner.try_tune(&RetryPolicy::default()) {
                Ok(report) => {
                    let sel = report.model.degraded_selector();
                    // Every query must be answered without panicking,
                    // across a (P, m) grid wider than the tuning ran on.
                    for p in [2usize, 5, 16, 48] {
                        for m in [256usize, 8 * 1024, 256 * 1024, 4 << 20] {
                            let d = sel.decide(p, m);
                            match &d.source {
                                DecisionSource::Model { predicted } => {
                                    assert!(
                                        predicted.is_finite() && *predicted > 0.0,
                                        "{label}: bad prediction {predicted} at ({p}, {m})"
                                    );
                                }
                                DecisionSource::Fallback { reason } => {
                                    // The fallback path must say why.
                                    assert!(
                                        !reason.to_string().is_empty(),
                                        "{label}: empty fallback reason"
                                    );
                                }
                            }
                            assert!(d.selection.effective_seg_size(m) > 0);
                        }
                    }
                    // Skipped algorithms carry typed, printable reasons.
                    for (alg, err) in &report.skipped {
                        assert!(
                            !err.to_string().is_empty(),
                            "{label}: {alg:?} skipped without a reason"
                        );
                    }
                }
                Err(e) => {
                    // A typed, printable error is an acceptable outcome
                    // for a heavily faulted platform — a panic is not.
                    assert!(
                        !e.to_string().is_empty(),
                        "{label}: error must explain itself"
                    );
                }
            }
        }
    }
}

/// The zero-cost invariant end to end: tuning with `FaultPlan::none()`
/// attached is bit-identical to tuning with no plan at all.
#[test]
fn none_plan_tunes_bit_identically() {
    let base = ClusterModel::gros().with_noise(NoiseParams::OFF);
    let with_none = base.clone().with_faults(FaultPlan::none());
    let a = Tuner::new(base, TunerConfig::quick(TUNE_P)).tune();
    let b = Tuner::new(with_none, TunerConfig::quick(TUNE_P)).tune();
    assert_eq!(a, b);
}

/// A straggler plan hurts but does not kill: tuning completes, and the
/// fitted parameters reflect the slower platform.
#[test]
fn straggler_tuning_completes_with_inflated_parameters() {
    let base = ClusterModel::gros().with_noise(NoiseParams::OFF);
    let faulted = base
        .clone()
        .with_faults(FaultPlan::none().with_straggler(TUNE_P - 1, 10.0));
    let healthy = Tuner::new(base, TunerConfig::quick(TUNE_P)).tune();
    let report = Tuner::new(faulted, TunerConfig::quick(TUNE_P))
        .try_tune(&RetryPolicy::default())
        .expect("a single straggler cannot stall a quiet cluster");
    // Whatever fitted must predict slower broadcasts than the healthy
    // fit for at least the algorithms that funnel through the straggler.
    let mut slower = 0usize;
    for (alg, est) in &report.model.params {
        if let Some(h) = healthy.params.get(alg) {
            if est.hockney.alpha + est.hockney.beta > h.hockney.alpha + h.hockney.beta {
                slower += 1;
            }
        }
    }
    assert!(
        slower >= report.model.params.len() / 2,
        "a 10x straggler should inflate most fits: {slower}/{}",
        report.model.params.len()
    );
}

/// A run that cannot reach the precision target within the repeat
/// budget returns `PrecisionNotReached` carrying the achieved CI width.
#[test]
fn unreachable_precision_reports_achieved_width() {
    use collsel::estim::try_bcast_time;
    use collsel::mpi::SimError;
    // Heavy multiplicative noise with a tight target and a tiny budget.
    let noisy = ClusterModel::gros().with_noise(NoiseParams::new(0.4));
    let precision = Precision {
        rel_precision: 0.005,
        min_reps: 4,
        max_reps: 8,
    };
    let err = try_bcast_time(
        &noisy,
        BcastAlg::Binomial,
        8,
        64 * 1024,
        8 * 1024,
        &precision,
        1234,
        &RetryPolicy::default(),
    )
    .expect_err("sigma=0.4 cannot hit 0.5% precision in 8 reps");
    match err {
        SimError::PrecisionNotReached {
            target,
            achieved,
            samples,
        } => {
            assert_eq!(target, 0.005);
            assert!(achieved > target, "achieved width {achieved} not carried");
            assert!(samples >= 4 && samples <= 8);
        }
        other => panic!("expected PrecisionNotReached, got {other}"),
    }
}

/// Brown-outs are windowed: a transfer outside every window costs the
/// same as on a healthy fabric.
#[test]
fn brownout_only_bites_inside_its_window() {
    let plan = FaultPlan::none().with_brownout(Brownout {
        node: 0,
        start: SimTime::from_nanos(1_000_000),
        end: SimTime::from_nanos(2_000_000),
        slowdown: 10.0,
    });
    assert_eq!(plan.link_factor(0, 1, SimTime::from_nanos(0)), 1.0);
    assert_eq!(plan.link_factor(0, 1, SimTime::from_nanos(1_500_000)), 10.0);
    assert_eq!(plan.link_factor(0, 1, SimTime::from_nanos(3_000_000)), 1.0);
    // Nodes not touching the browned-out node never notice.
    assert_eq!(plan.link_factor(2, 3, SimTime::from_nanos(1_500_000)), 1.0);
}

/// The chaos spec of the CLI grammar parses against both presets and
/// produces a plan that the graceful pipeline survives.
#[test]
fn parsed_chaos_plan_is_survivable() {
    let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
    let plan = FaultPlan::parse("chaos:99", cluster.nodes()).expect("chaos parses");
    assert!(!plan.is_none());
    let tuner = Tuner::new(cluster.with_faults(plan), TunerConfig::quick(TUNE_P));
    match tuner.try_tune(&RetryPolicy::default()) {
        Ok(report) => {
            let sel = report.model.degraded_selector();
            let d = sel.decide(64, 1 << 20);
            assert!(d.selection.effective_seg_size(1 << 20) > 0);
        }
        Err(e) => assert!(!e.to_string().is_empty()),
    }
}
