//! Measured validation of the joint (algorithm, segment size)
//! selection — the paper's out-of-scope extension.

use collsel::estim::measure::bcast_time;
use collsel::estim::Precision;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::Selector;
use collsel::{Tuner, TunerConfig};

#[test]
fn swept_segment_choice_is_competitive_when_measured() {
    let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
    let p = 24;
    let tuned = Tuner::new(cluster.clone(), TunerConfig::quick(16)).tune();
    let selector = tuned.selector();
    let candidates = [2 * 1024, 8 * 1024, 32 * 1024];
    let precision = Precision::quick();

    for m in [64 * 1024, 1 << 20] {
        let fixed = selector.select(p, m);
        let swept = selector.select_with_segment_sweep(p, m, &candidates);
        let t_fixed = bcast_time(
            &cluster,
            fixed.alg,
            p,
            m,
            fixed.effective_seg_size(m),
            &precision,
            3,
        )
        .mean;
        let t_swept = bcast_time(
            &cluster,
            swept.alg,
            p,
            m,
            swept.effective_seg_size(m),
            &precision,
            3,
        )
        .mean;
        // The swept choice is model-optimal; measured, it must not be
        // meaningfully worse than the fixed-8KB choice.
        assert!(
            t_swept <= t_fixed * 1.25,
            "m={m}: swept ({}, {:?}) {t_swept} vs fixed ({}, {:?}) {t_fixed}",
            swept.alg,
            swept.seg_size,
            fixed.alg,
            fixed.seg_size
        );
    }
}
