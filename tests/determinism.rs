//! Deterministic-replay guarantees of the simulator: the virtual clock
//! and the noise stream are functions of the seed alone.

use collsel::coll::{bcast, BcastAlg};
use collsel::mpi::simulate_traced;
use collsel::netsim::{ClusterModel, Fabric, SimTime, TransferRecord};
use collsel_support::Bytes;

fn traced_bcast(seed: u64) -> Vec<TransferRecord> {
    let cluster = ClusterModel::grisou(); // default noise ON
    let len = 96 * 1024;
    let out = simulate_traced(&cluster, 12, seed, |ctx| {
        let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![0xA5u8; len]));
        let _ = bcast(ctx, BcastAlg::SplitBinary, 0, msg, len, 8 * 1024);
        ctx.wtime()
    })
    .expect("no deadlock");
    assert!(!out.report.trace.is_empty());
    out.report.trace
}

#[test]
fn same_seed_replays_an_identical_event_trace() {
    // Bit-for-bit: every transfer record (src, dst, bytes, all four
    // timestamps, shm flag) must match across runs, noise included.
    let a = traced_bcast(2021);
    let b = traced_bcast(2021);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_draw_different_noise() {
    let a = traced_bcast(1);
    let b = traced_bcast(2);
    // Same program, same cluster: the traffic (as a multiset — noise
    // reorders the event log) is identical...
    let key = |t: &[TransferRecord]| {
        let mut k: Vec<_> = t.iter().map(|r| (r.src, r.dst, r.bytes, r.shm)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(key(&a), key(&b));
    // ...but the noise stream is not, so the timestamps move.
    let times = |t: &[TransferRecord]| {
        let mut k: Vec<_> = t.iter().map(|r| r.delivered).collect();
        k.sort_unstable();
        k
    };
    assert_ne!(
        times(&a),
        times(&b),
        "noise draws did not change with the seed"
    );
}

#[test]
fn fabric_noise_stream_is_seed_keyed() {
    let cluster = ClusterModel::grisou();
    let plan = |seed: u64| {
        Fabric::new(cluster.clone(), seed)
            .plan_transfer(0, 1, 1 << 20, SimTime::ZERO)
            .delivered
    };
    assert_eq!(plan(7), plan(7));
    assert_ne!(plan(7), plan(8));
}
