//! Chaos soak gate for the fault-tolerant decision server (`ci.sh`
//! re-runs this at `COLLSEL_THREADS=2` as the soak smoke gate).
//!
//! One full-size seeded soak under an active fault plan must show:
//! ≥ 10 000 mixed queries served across ≥ 3 installed hot swaps with
//! zero invariant violations (no torn or dropped answers, bounded
//! staleness, exact cause accounting), the health gate demonstrably
//! rejecting a poisoned refit while the live generation keeps serving,
//! and the brown-out windows demonstrably tripping the watchdog into
//! attributed fallbacks.

use collsel::netsim::{Brownout, FaultPlan};
use collsel_expt::soak::{run_soak, SoakConfig};

#[test]
fn full_soak_under_faults_holds_every_invariant() {
    let config = SoakConfig::quick();
    // The acceptance shape of the quick soak, spelled out so a future
    // edit to the preset cannot silently weaken this gate.
    assert!(config.queries >= 10_000);
    assert!(config.refits - config.refits / config.poison_every >= 3);
    assert!(config.poison_every <= config.refits);
    let report = run_soak(&config);

    assert!(
        report.passed(),
        "soak invariant violations: {:#?}",
        report.violations
    );
    assert_eq!(
        report.queries as usize, config.queries,
        "no dropped answers"
    );
    assert!(
        report.swaps >= 3,
        "need >= 3 hot swaps mid-traffic, got {}",
        report.swaps
    );
    assert!(
        report.rejected_refits >= 1,
        "the health gate must reject the poisoned refit"
    );
    assert_eq!(
        report.swaps + report.rejected_refits,
        config.refits as u64,
        "every refit either installed or was rejected with a cause"
    );
    assert!(
        report.fallbacks > 0,
        "the brown-out windows must trip the watchdog"
    );
    assert_eq!(
        report.fallbacks,
        report.stats.served_previous_timeout
            + report.stats.served_rules_timeout
            + report.stats.served_rules_uncovered,
        "every fallback carries exactly one recorded cause"
    );
    assert!(report.qps > 0.0 && report.qps.is_finite());
    assert!(report.swap_nanos_max > 0, "swap latency was measured");
}

/// Without a fault plan the watchdog never trips: the same soak serves
/// every covered query from a generation, and the only rule-path
/// answers are attributed uncovered collectives (none, since every
/// collective is compiled).
#[test]
fn calm_soak_never_falls_back() {
    let mut config = SoakConfig::quick();
    config.queries = 4_000;
    config.threads = 2;
    config.refits = 2;
    config.poison_every = 0;
    config.server.faults = FaultPlan::none();
    let report = run_soak(&config);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert_eq!(report.fallbacks, 0, "no faults, no fallbacks");
    assert_eq!(report.swaps, 2);
}

/// The staleness bound is tight because the watchdog's retry tier
/// reaches exactly one generation back: a soak whose fault plan brackets
/// a swap shows previous-generation answers but never older ones.
#[test]
fn soak_staleness_is_bounded_by_one_generation() {
    let mut config = SoakConfig::quick();
    config.queries = 6_000;
    config.threads = 3;
    config.refits = 4;
    config.poison_every = 0;
    // One wide window covering most of the virtual horizon. Faulted
    // queries advance the virtual clock 50× faster, so the window must
    // be wide enough to still be live once the first swaps install
    // (checkpoint 1 releases after 2 000 queries ≈ 0.5 ms healthy +
    // ~75 ms faulted of virtual time).
    config.server.faults = FaultPlan::none()
        .try_with_brownout(Brownout::try_new(0, 0.0005, 0.2, 50.0).expect("static window"))
        .expect("single window");
    let report = run_soak(&config);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(
        report.stats.served_previous_timeout > 0,
        "swaps inside the window must exercise the previous-generation tier"
    );
}
