//! Property-based tests over the whole stack: random platforms, random
//! collective configurations, random measurement data.

use collsel::coll::{bcast, gather_linear, scatter_binomial, Alg, BcastAlg, Collective, Topology};
use collsel::estim::{huber_default, ols};
use collsel::model::{derived, GammaTable, Hockney};
use collsel::mpi::simulate;
use collsel::netsim::{ClusterModel, NoiseParams, SimSpan};
use collsel::select::{
    fixed_selection, CollectiveModelSelector, CollectiveSelector, GracefulCollectiveSelector,
};
use collsel_support::prelude::*;
use collsel_support::Bytes;
use std::collections::BTreeMap;

/// A random small-but-plausible cluster.
fn arb_cluster() -> impl Strategy<Value = ClusterModel> {
    (
        2usize..24, // nodes
        1usize..3,  // cpus per node
        1u64..100,  // bandwidth (Gbps * 10 is too wide; use 1..100 Gbps)
        1u64..200,  // wire latency us
        0usize..2,  // mapping choice
    )
        .prop_map(|(nodes, cpus, gbps, lat_us, mapping)| {
            let b = ClusterModel::builder("prop", nodes)
                .cpus_per_node(cpus)
                .bandwidth_gbps(gbps as f64)
                .wire_latency(SimSpan::from_micros(lat_us))
                .noise(NoiseParams::OFF);
            let c = b.build();
            if mapping == 0 {
                c
            } else {
                c.with_mapping(collsel::netsim::RankMapping::Block)
            }
        })
}

fn arb_alg() -> impl Strategy<Value = BcastAlg> {
    prop::sample::select(BcastAlg::ALL.to_vec())
}

fn arb_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(Collective::ALL.to_vec())
}

/// Hockney fits for every algorithm of every collective, scaled so the
/// property harness varies the decision boundaries between cases.
fn all_family_params(a_scale: f64, b_scale: f64) -> BTreeMap<Alg, Hockney> {
    Collective::ALL
        .iter()
        .flat_map(|c| c.algorithms())
        .enumerate()
        .map(|(i, &alg)| {
            (
                alg,
                Hockney::new(1e-6 * a_scale * (i + 1) as f64, 1e-9 * b_scale),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every broadcast algorithm delivers the exact payload on every
    /// rank, on arbitrary platforms, roots, sizes and segment sizes.
    #[test]
    fn broadcast_always_delivers(
        cluster in arb_cluster(),
        alg in arb_alg(),
        ranks_frac in 0.0f64..1.0,
        root_frac in 0.0f64..1.0,
        len in 0usize..20_000,
        seg in 1usize..4096,
    ) {
        let max = cluster.max_ranks();
        let p = 1 + (ranks_frac * (max.min(16) - 1) as f64).round() as usize;
        let root = (root_frac * (p - 1) as f64).round() as usize;
        let payload = Bytes::from((0..len).map(|i| (i % 253) as u8).collect::<Vec<_>>());
        let expected = payload.clone();
        let out = simulate(&cluster, p, 0, move |ctx| {
            let msg = (ctx.rank() == root).then(|| payload.clone());
            bcast(ctx, alg, root, msg, len, seg)
        }).unwrap();
        for got in &out.results {
            prop_assert_eq!(got, &expected);
        }
    }

    /// Gather then scatter round-trips every rank's contribution.
    #[test]
    fn gather_scatter_round_trip(
        cluster in arb_cluster(),
        root_frac in 0.0f64..1.0,
        item_len in 1usize..256,
    ) {
        let p = cluster.max_ranks().min(12);
        let root = (root_frac * (p - 1) as f64).round() as usize;
        let out = simulate(&cluster, p, 0, move |ctx| {
            let mine = Bytes::from(vec![ctx.rank() as u8; item_len]);
            let gathered = gather_linear(ctx, root, mine);
            let blocks = gathered.map(|g| g.to_vec());
            scatter_binomial(ctx, root, blocks)
        }).unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            let expected = vec![rank as u8; item_len];
            prop_assert_eq!(got.as_ref(), expected.as_slice());
        }
    }

    /// Same seed, same program => identical virtual timings, even with
    /// noise enabled.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        len in 1usize..50_000,
    ) {
        let cluster = ClusterModel::grisou(); // noise on
        let run = || {
            simulate(&cluster, 8, seed, |ctx| {
                let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![7u8; len]));
                let _ = bcast(ctx, BcastAlg::Binary, 0, msg, len, 2048);
                ctx.wtime()
            }).unwrap().results
        };
        prop_assert_eq!(run(), run());
    }

    /// Every topology builder yields a spanning tree for any (p, root).
    #[test]
    fn topologies_are_spanning_trees(p in 1usize..200, root_frac in 0.0f64..1.0, k in 1usize..8) {
        let root = (root_frac * (p - 1) as f64).round() as usize;
        for t in [
            Topology::linear(p, root),
            Topology::chain(p, root),
            Topology::k_chain(k, p, root),
            Topology::binary(p, root),
            Topology::in_order_binary(p, root),
            Topology::binomial(p, root),
        ] {
            let mut seen = 0usize;
            for r in 0..p {
                let mut cur = r;
                let mut hops = 0;
                while let Some(parent) = t.parent(cur) {
                    prop_assert!(t.children(parent).contains(&cur));
                    cur = parent;
                    hops += 1;
                    prop_assert!(hops <= p, "cycle at rank {}", r);
                }
                prop_assert_eq!(cur, root);
                seen += 1;
            }
            prop_assert_eq!(seen, p);
        }
    }

    /// Model coefficients are finite, non-negative, and monotone in
    /// message size for fixed (p, seg).
    #[test]
    fn model_costs_monotone_in_message_size(
        alg in arb_alg(),
        p in 2usize..160,
        m in 1usize..(1 << 22),
    ) {
        let gamma = GammaTable::from_pairs([(3, 1.1), (5, 1.3), (7, 1.5)]);
        let h = Hockney::new(1e-5, 1e-9);
        let seg = 8192;
        let t1 = derived::predict_bcast(alg, p, m, seg, &gamma, &h);
        let t2 = derived::predict_bcast(alg, p, m * 2, seg, &gamma, &h);
        prop_assert!(t1.is_finite() && t1 >= 0.0);
        prop_assert!(t2 >= t1 * 0.999, "{} vs {}", t1, t2);
    }

    /// Multi-collective selection is total and well-typed: for random
    /// (collective, P, m) and arbitrary model scales, neither the fixed
    /// rules nor the model-based selector panics, and both always
    /// return an algorithm of the queried collective.
    #[test]
    fn multi_selection_never_panics_and_is_well_typed(
        c in arb_collective(),
        p in 1usize..300,
        m in 0usize..(16 << 20),
        a_scale in 1.0f64..50.0,
        b_scale in 1.0f64..50.0,
        seg_exp in 10u32..18,
    ) {
        let fixed = fixed_selection(c, p, m);
        prop_assert_eq!(fixed.alg.collective(), c);

        let gamma = GammaTable::from_pairs([(3, 1.1), (5, 1.3), (7, 1.5)]);
        let model = CollectiveModelSelector::new(
            gamma,
            all_family_params(a_scale, b_scale),
            1usize << seg_exp,
        );
        let pick = model.select_for(c, p, m);
        prop_assert_eq!(pick.alg.collective(), c);
        let ranking = model.ranking(c, p, m);
        prop_assert_eq!(ranking.len(), c.algorithms().len());
        prop_assert_eq!(ranking[0].0, pick.alg);
        for (alg, t) in &ranking {
            prop_assert_eq!(alg.collective(), c);
            prop_assert!(t.is_finite() && *t >= 0.0);
        }
    }

    /// Graceful degradation across collectives: when every fit of the
    /// queried collective is invalid (or missing entirely), the
    /// graceful selector falls back to the fixed rules — same
    /// selection, fallback source, no panic.
    #[test]
    fn graceful_multi_falls_back_when_fits_are_invalid(
        c in arb_collective(),
        p in 1usize..300,
        m in 0usize..(16 << 20),
        missing in 0usize..2,
    ) {
        let gamma = GammaTable::from_pairs([(3, 1.1), (5, 1.3), (7, 1.5)]);
        let (params, validity) = if missing == 1 {
            (BTreeMap::new(), BTreeMap::new())
        } else {
            let params = all_family_params(1.0, 1.0);
            let validity: BTreeMap<Alg, collsel::model::FitValidity> = params
                .keys()
                .map(|&alg| (alg, collsel::model::FitValidity::NonFinite))
                .collect();
            (params, validity)
        };
        let graceful = GracefulCollectiveSelector::new(gamma, params, validity, 8192);
        let d = graceful.decide_for(c, p, m);
        prop_assert!(!d.source.is_model(), "invalid fits must not decide");
        prop_assert_eq!(d.selection, fixed_selection(c, p, m));
        prop_assert_eq!(d.selection.alg.collective(), c);
    }

    /// OLS and Huber agree on outlier-free affine data.
    #[test]
    fn regressions_recover_clean_lines(
        intercept in -1.0f64..1.0,
        slope in -2.0f64..2.0,
        n in 4usize..40,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let o = ols(&xs, &ys);
        let h = huber_default(&xs, &ys);
        prop_assert!((o.intercept - intercept).abs() < 1e-6);
        prop_assert!((o.slope - slope).abs() < 1e-7);
        prop_assert!((h.intercept - intercept).abs() < 1e-6);
        prop_assert!((h.slope - slope).abs() < 1e-7);
    }
}
