//! Property-based tests over the whole stack: random platforms, random
//! collective configurations, random measurement data.

use collsel::coll::{bcast, gather_linear, scatter_binomial, BcastAlg, Topology};
use collsel::estim::{huber_default, ols};
use collsel::model::{derived, GammaTable, Hockney};
use collsel::mpi::simulate;
use collsel::netsim::{ClusterModel, NoiseParams, SimSpan};
use collsel_support::prelude::*;
use collsel_support::Bytes;

/// A random small-but-plausible cluster.
fn arb_cluster() -> impl Strategy<Value = ClusterModel> {
    (
        2usize..24, // nodes
        1usize..3,  // cpus per node
        1u64..100,  // bandwidth (Gbps * 10 is too wide; use 1..100 Gbps)
        1u64..200,  // wire latency us
        0usize..2,  // mapping choice
    )
        .prop_map(|(nodes, cpus, gbps, lat_us, mapping)| {
            let b = ClusterModel::builder("prop", nodes)
                .cpus_per_node(cpus)
                .bandwidth_gbps(gbps as f64)
                .wire_latency(SimSpan::from_micros(lat_us))
                .noise(NoiseParams::OFF);
            let c = b.build();
            if mapping == 0 {
                c
            } else {
                c.with_mapping(collsel::netsim::RankMapping::Block)
            }
        })
}

fn arb_alg() -> impl Strategy<Value = BcastAlg> {
    prop::sample::select(BcastAlg::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every broadcast algorithm delivers the exact payload on every
    /// rank, on arbitrary platforms, roots, sizes and segment sizes.
    #[test]
    fn broadcast_always_delivers(
        cluster in arb_cluster(),
        alg in arb_alg(),
        ranks_frac in 0.0f64..1.0,
        root_frac in 0.0f64..1.0,
        len in 0usize..20_000,
        seg in 1usize..4096,
    ) {
        let max = cluster.max_ranks();
        let p = 1 + (ranks_frac * (max.min(16) - 1) as f64).round() as usize;
        let root = (root_frac * (p - 1) as f64).round() as usize;
        let payload = Bytes::from((0..len).map(|i| (i % 253) as u8).collect::<Vec<_>>());
        let expected = payload.clone();
        let out = simulate(&cluster, p, 0, move |ctx| {
            let msg = (ctx.rank() == root).then(|| payload.clone());
            bcast(ctx, alg, root, msg, len, seg)
        }).unwrap();
        for got in &out.results {
            prop_assert_eq!(got, &expected);
        }
    }

    /// Gather then scatter round-trips every rank's contribution.
    #[test]
    fn gather_scatter_round_trip(
        cluster in arb_cluster(),
        root_frac in 0.0f64..1.0,
        item_len in 1usize..256,
    ) {
        let p = cluster.max_ranks().min(12);
        let root = (root_frac * (p - 1) as f64).round() as usize;
        let out = simulate(&cluster, p, 0, move |ctx| {
            let mine = Bytes::from(vec![ctx.rank() as u8; item_len]);
            let gathered = gather_linear(ctx, root, mine);
            let blocks = gathered.map(|g| g.to_vec());
            scatter_binomial(ctx, root, blocks)
        }).unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            let expected = vec![rank as u8; item_len];
            prop_assert_eq!(got.as_ref(), expected.as_slice());
        }
    }

    /// Same seed, same program => identical virtual timings, even with
    /// noise enabled.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        len in 1usize..50_000,
    ) {
        let cluster = ClusterModel::grisou(); // noise on
        let run = || {
            simulate(&cluster, 8, seed, |ctx| {
                let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![7u8; len]));
                let _ = bcast(ctx, BcastAlg::Binary, 0, msg, len, 2048);
                ctx.wtime()
            }).unwrap().results
        };
        prop_assert_eq!(run(), run());
    }

    /// Every topology builder yields a spanning tree for any (p, root).
    #[test]
    fn topologies_are_spanning_trees(p in 1usize..200, root_frac in 0.0f64..1.0, k in 1usize..8) {
        let root = (root_frac * (p - 1) as f64).round() as usize;
        for t in [
            Topology::linear(p, root),
            Topology::chain(p, root),
            Topology::k_chain(k, p, root),
            Topology::binary(p, root),
            Topology::in_order_binary(p, root),
            Topology::binomial(p, root),
        ] {
            let mut seen = 0usize;
            for r in 0..p {
                let mut cur = r;
                let mut hops = 0;
                while let Some(parent) = t.parent(cur) {
                    prop_assert!(t.children(parent).contains(&cur));
                    cur = parent;
                    hops += 1;
                    prop_assert!(hops <= p, "cycle at rank {}", r);
                }
                prop_assert_eq!(cur, root);
                seen += 1;
            }
            prop_assert_eq!(seen, p);
        }
    }

    /// Model coefficients are finite, non-negative, and monotone in
    /// message size for fixed (p, seg).
    #[test]
    fn model_costs_monotone_in_message_size(
        alg in arb_alg(),
        p in 2usize..160,
        m in 1usize..(1 << 22),
    ) {
        let gamma = GammaTable::from_pairs([(3, 1.1), (5, 1.3), (7, 1.5)]);
        let h = Hockney::new(1e-5, 1e-9);
        let seg = 8192;
        let t1 = derived::predict_bcast(alg, p, m, seg, &gamma, &h);
        let t2 = derived::predict_bcast(alg, p, m * 2, seg, &gamma, &h);
        prop_assert!(t1.is_finite() && t1 >= 0.0);
        prop_assert!(t2 >= t1 * 0.999, "{} vs {}", t1, t2);
    }

    /// OLS and Huber agree on outlier-free affine data.
    #[test]
    fn regressions_recover_clean_lines(
        intercept in -1.0f64..1.0,
        slope in -2.0f64..2.0,
        n in 4usize..40,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let o = ols(&xs, &ys);
        let h = huber_default(&xs, &ys);
        prop_assert!((o.intercept - intercept).abs() < 1e-6);
        prop_assert!((o.slope - slope).abs() < 1e-7);
        prop_assert!((h.intercept - intercept).abs() < 1e-6);
        prop_assert!((h.slope - slope).abs() < 1e-7);
    }
}
