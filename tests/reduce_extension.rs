//! Extension validation: the reduce models (paper future-work
//! direction) must rank the reduce algorithms consistently with
//! simulated measurements, after the same tuning treatment the
//! broadcast models get.

use collsel::coll::{reduce, ReduceAlg, ReduceOp};
use collsel::estim::{estimate_gamma, huber_default, GammaConfig, Precision};
use collsel::model::reduce_ext::{predict_reduce, reduce_coefficients};
use collsel::model::{GammaTable, Hockney};
use collsel::mpi::simulate;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel_support::Bytes;

const SEG: usize = 8 * 1024;

fn cluster() -> ClusterModel {
    ClusterModel::gros().with_noise(NoiseParams::OFF)
}

fn lanes(rank: usize, bytes: usize) -> Bytes {
    let mut v = Vec::with_capacity(bytes);
    for i in 0..bytes / 8 {
        v.extend_from_slice(&((rank + i) as u64).to_le_bytes());
    }
    Bytes::from(v)
}

/// Measured time of one reduce configuration (barrier-framed, root
/// clock).
fn measure(cluster: &ClusterModel, alg: ReduceAlg, p: usize, m: usize) -> f64 {
    let out = simulate(cluster, p, 1, move |ctx| {
        ctx.barrier();
        let t0 = ctx.wtime();
        let _ = reduce(ctx, alg, 0, ReduceOp::Sum, lanes(ctx.rank(), m), SEG);
        ctx.barrier();
        (ctx.wtime() - t0).as_secs_f64()
    })
    .unwrap();
    out.results[0]
}

/// Fit per-algorithm (alpha, beta) for a reduce algorithm with the same
/// canonicalised-system approach as the broadcast estimation.
fn fit(cluster: &ClusterModel, alg: ReduceAlg, p: usize, gamma: &GammaTable) -> Hockney {
    let sizes = [8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024, 2 << 20];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &m in &sizes {
        let t = measure(cluster, alg, p, m);
        let c = reduce_coefficients(alg, p, m, SEG, gamma);
        let (x, y) = c.canonicalise(t);
        xs.push(x);
        ys.push(y);
    }
    let f = huber_default(&xs, &ys);
    Hockney::new(f.intercept.max(0.0), f.slope.max(0.0))
}

#[test]
fn tuned_reduce_models_select_near_optimal() {
    let cluster = cluster();
    let p = 24;
    let gamma = estimate_gamma(
        &cluster,
        &GammaConfig {
            max_width: 6,
            precision: Precision::quick(),
            ..GammaConfig::quick()
        },
        3,
    )
    .table;

    // Tune each reduce algorithm in its own execution context.
    let params: Vec<(ReduceAlg, Hockney)> = ReduceAlg::ALL
        .iter()
        .map(|&alg| (alg, fit(&cluster, alg, p, &gamma)))
        .collect();

    // Evaluate the selection quality on held-out sizes.
    for m in [16 * 1024, 256 * 1024, 1 << 20] {
        let measured: Vec<(ReduceAlg, f64)> = ReduceAlg::ALL
            .iter()
            .map(|&alg| (alg, measure(&cluster, alg, p, m)))
            .collect();
        let best = measured
            .iter()
            .cloned()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let pick = params
            .iter()
            .map(|&(alg, h)| (alg, predict_reduce(alg, p, m, SEG, &gamma, &h)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        let pick_time = measured.iter().find(|&&(a, _)| a == pick).unwrap().1;
        let degradation = 100.0 * (pick_time - best.1) / best.1;
        assert!(
            degradation < 50.0,
            "m={m}: picked {pick} at +{degradation:.0}% vs best {}",
            best.0
        );
    }
}

#[test]
fn reduce_measurements_have_broadcast_like_structure() {
    // Flat reduction must lose to trees at scale for large messages
    // (the root drains P-1 full contributions), and the chain pipeline
    // must beat the flat reduction for large m at moderate P.
    let cluster = cluster();
    let p = 24;
    let m = 2 << 20;
    let linear = measure(&cluster, ReduceAlg::Linear, p, m);
    let chain = measure(&cluster, ReduceAlg::Chain, p, m);
    let binomial = measure(&cluster, ReduceAlg::Binomial, p, m);
    assert!(chain < linear, "chain {chain} vs linear {linear}");
    assert!(binomial < linear, "binomial {binomial} vs linear {linear}");
}
