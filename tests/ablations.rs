//! Ablations of the paper's two innovations, as selection-quality
//! assertions:
//!
//! 1. **Implementation-derived vs traditional models** (innovation #1):
//!    replacing the derived models with textbook models + network-level
//!    parameters must not *improve* selection quality;
//! 2. **Per-algorithm vs shared parameters** (innovation #2): giving
//!    every algorithm the same point-to-point-measured Hockney pair
//!    must not improve selection quality either.
//!
//! Quality is total measured time of the picks across a size sweep (a
//! lower-variance criterion than per-point degradation percentages).

use collsel::coll::BcastAlg;
use collsel::estim::measure::bcast_time;
use collsel::estim::{estimate_network_hockney, Precision};
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::{ModelBasedSelector, Selector, TraditionalModelSelector};
use collsel::{Tuner, TunerConfig};
use std::collections::BTreeMap;

const SEG: usize = 8 * 1024;
const P: usize = 32;
const SIZES: [usize; 4] = [8 * 1024, 64 * 1024, 512 * 1024, 2 << 20];

struct Bench {
    cluster: ClusterModel,
    times: BTreeMap<(usize, BcastAlg), f64>,
}

impl Bench {
    fn new() -> Self {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let precision = Precision::quick();
        let mut times = BTreeMap::new();
        for &m in &SIZES {
            for alg in BcastAlg::ALL {
                let t = bcast_time(&cluster, alg, P, m, SEG, &precision, 5).mean;
                times.insert((m, alg), t);
            }
        }
        Bench { cluster, times }
    }

    /// Total measured time of a selector's picks across the sweep.
    fn total_time(&self, selector: &dyn Selector) -> f64 {
        SIZES
            .iter()
            .map(|&m| self.times[&(m, selector.select(P, m).alg)])
            .sum()
    }

    /// Total time of the per-point best picks (the oracle floor).
    fn oracle_time(&self) -> f64 {
        SIZES
            .iter()
            .map(|&m| {
                BcastAlg::ALL
                    .iter()
                    .map(|&alg| self.times[&(m, alg)])
                    .fold(f64::MAX, f64::min)
            })
            .sum()
    }
}

#[test]
fn full_method_close_to_oracle_and_ablations_not_better() {
    let bench = Bench::new();

    // The full method: derived models + per-algorithm parameters.
    let tuned = Tuner::new(bench.cluster.clone(), TunerConfig::quick(16)).tune();
    let full = tuned.selector();

    // Ablation A (innovation #1 removed): traditional models +
    // network-level parameters.
    let network = estimate_network_hockney(
        &bench.cluster,
        &[1024, 8 * 1024, 64 * 1024, 512 * 1024],
        &Precision::quick(),
        2,
    )
    .hockney;
    let traditional = TraditionalModelSelector::new(network, SEG);

    // Ablation B (innovation #2 removed): derived models but a single
    // shared network-level pair for every algorithm.
    let shared_params: BTreeMap<BcastAlg, _> =
        BcastAlg::ALL.iter().map(|&a| (a, network)).collect();
    let shared = ModelBasedSelector::new(tuned.gamma.table.clone(), shared_params, SEG);

    let oracle = bench.oracle_time();
    let t_full = bench.total_time(&full);
    let t_trad = bench.total_time(&traditional);
    let t_shared = bench.total_time(&shared);

    // The full method must be near the oracle...
    assert!(
        t_full <= oracle * 1.35,
        "full method {t_full:.6}s vs oracle {oracle:.6}s"
    );
    // ...and neither ablation may beat it meaningfully.
    assert!(
        t_full <= t_trad * 1.05,
        "traditional-models ablation unexpectedly better: {t_trad:.6}s vs {t_full:.6}s"
    );
    assert!(
        t_full <= t_shared * 1.05,
        "shared-parameters ablation unexpectedly better: {t_shared:.6}s vs {t_full:.6}s"
    );
}

#[test]
fn gamma_matters_for_model_quality() {
    // Replacing the measured gamma table with gamma = 1 changes the
    // predicted times of multi-child stages; the resulting predictions
    // must differ (the factor is load-bearing, not decorative).
    let bench = Bench::new();
    let tuned = Tuner::new(bench.cluster.clone(), TunerConfig::quick(16)).tune();
    let with_gamma = tuned.selector();
    let ones = ModelBasedSelector::new(
        collsel::model::GammaTable::ones(),
        tuned.hockney_table(),
        SEG,
    );
    let m = 1 << 20;
    let a: Vec<_> = with_gamma.ranking(P, m).into_iter().collect();
    let b: Vec<_> = ones.ranking(P, m).into_iter().collect();
    let moved = a
        .iter()
        .zip(&b)
        .any(|((alg_a, t_a), (alg_b, t_b))| alg_a != alg_b || (t_a - t_b).abs() > 1e-12);
    assert!(moved, "gamma table should influence predictions");
}
