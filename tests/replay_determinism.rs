//! Trace replay is deterministic end-to-end: traces round-trip through
//! JSON, generation is a pure function of its seed, and the job
//! completion time of a replay is **bit-identical** across all three
//! execution backends and any worker thread count — the property that
//! lets ci.sh gate replay results without golden files.
//!
//! The thread override is process-global state, so all thread-count
//! comparisons live in a single `#[test]` (same discipline as
//! `parallel_determinism.rs`).

use collsel::mpi::Backend;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::{Tuner, TunerConfig};
use collsel_expt::replay::{degradation_pct, replay_trace, score_policies, ReplayPolicy};
use collsel_expt::workload::{canned_dp, canned_pp, Trace, TraceGen, TracePreset};
use collsel_support::{pool, FromJson, Json, ToJson};

fn quiet_gros() -> ClusterModel {
    ClusterModel::gros().with_noise(NoiseParams::OFF)
}

#[test]
fn traces_round_trip_through_json() {
    for trace in [
        canned_dp(),
        canned_pp(),
        TraceGen {
            preset: TracePreset::DataParallel,
            world: 7, // odd world: tp_width 1, dp group only
            steps: 3,
            seed: 99,
        }
        .generate(),
    ] {
        let text = trace.to_json().to_string_pretty();
        let back = Trace::from_json(&Json::parse(&text).expect("parses")).expect("deserialises");
        assert_eq!(trace, back, "{} changed across JSON round-trip", trace.name);
        back.validate().expect("round-tripped trace validates");
    }
}

#[test]
fn trace_generation_is_a_pure_function_of_its_seed() {
    for preset in [TracePreset::DataParallel, TracePreset::Pipeline] {
        let gen = |seed| {
            TraceGen {
                preset,
                world: 8,
                steps: 6,
                seed,
            }
            .generate()
        };
        assert_eq!(gen(5), gen(5), "{} regeneration diverged", preset.name());
        assert_ne!(
            gen(5),
            gen(6),
            "{} ignores its seed entirely",
            preset.name()
        );
    }
}

#[test]
fn jct_is_bit_identical_across_backends_and_thread_counts() {
    let gros = quiet_gros();
    let grisou = ClusterModel::grisou().with_noise(NoiseParams::OFF);
    for (cluster, trace) in [(&gros, canned_dp()), (&grisou, canned_pp())] {
        let reference = replay_trace(cluster, &trace, &ReplayPolicy::Fixed, Backend::Dag, 17)
            .expect("dag replay");
        assert!(reference.jct_ns > 0, "{}: empty replay", trace.name);
        let events = replay_trace(cluster, &trace, &ReplayPolicy::Fixed, Backend::Events, 17)
            .expect("events replay");
        assert_eq!(
            reference.jct_ns, events.jct_ns,
            "{}: dag vs events JCT",
            trace.name
        );
        assert_eq!(reference.step_ns, events.step_ns);
        // The threads backend is the only one that schedules work on a
        // pool, so it alone can depend on the worker count — pin it to
        // several counts and require the same bits as the DAG tier.
        for threads in [1, 2, 8] {
            pool::set_thread_override(threads);
            let out = replay_trace(cluster, &trace, &ReplayPolicy::Fixed, Backend::Threads, 17)
                .expect("threads replay");
            pool::clear_thread_override();
            assert_eq!(
                reference.jct_ns, out.jct_ns,
                "{}: JCT diverged at {threads} threads",
                trace.name
            );
            assert_eq!(reference.step_ns, out.step_ns);
            assert_eq!(reference.messages, out.messages);
            assert_eq!(reference.bytes, out.bytes);
        }
    }
}

#[test]
fn tuned_policy_is_never_beaten_by_the_model_worst() {
    // The adversarial bound from the paper's degradation framing: on a
    // tuned model, picking each call's model-worst algorithm must not
    // produce a faster job than picking the model-best.
    let cluster = quiet_gros();
    let model = Tuner::new(cluster.clone(), TunerConfig::quick(8)).tune_all();
    let selector = model.multi_selector();
    let trace = canned_dp();
    let outs = score_policies(
        &cluster,
        &trace,
        &[
            ReplayPolicy::Tuned(&selector),
            ReplayPolicy::Fixed,
            ReplayPolicy::Worst(&selector),
        ],
        Backend::Dag,
        23,
    )
    .expect("replays");
    let (tuned, fixed, worst) = (&outs[0], &outs[1], &outs[2]);
    assert!(
        tuned.jct_ns <= worst.jct_ns,
        "model-worst beat model-best: {} vs {} ns",
        worst.jct_ns,
        tuned.jct_ns
    );
    assert!(degradation_pct(worst, tuned) >= 0.0);
    assert_eq!(tuned.lookups, trace.total_calls() as u64);
    assert_eq!(fixed.steps, trace.steps.len());
}
