//! Differential gates for the adaptive campaign planner: crossover
//! bisection plus leader-settled repetitions must produce the
//! byte-identical decision tables of the exhaustive sweep, at a
//! fraction of the simulated cells, invariantly across thread counts,
//! backends and warm starts.

use collsel::coll::Collective;
use collsel::estim::{log_spaced_sizes, measure_family_cell, Precision};
use collsel::mpi::Backend;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::{CampaignPlan, Tuner, TunerConfig};
use collsel_support::pool;
use collsel_support::rng::StdRng;

fn tuner_for(cluster: ClusterModel) -> Tuner {
    Tuner::new(cluster, TunerConfig::quick(8))
}

/// The table-equality gates run on quiet presets: with noise on, the
/// measured winner dithers between near-equal algorithms on *adjacent*
/// grid cells, which no interpolating planner can reconstruct without
/// measuring every cell. The noisy regime is covered by
/// `early_stopped_means_fall_within_full_precision_ci` below.
fn quiet(cluster: ClusterModel) -> ClusterModel {
    cluster.with_noise(NoiseParams::OFF)
}

fn msg_grid(count: usize) -> Vec<usize> {
    let mut sizes = log_spaced_sizes(1024, 1024 * 1024, count);
    sizes.dedup();
    sizes
}

/// Adaptive and exhaustive plans differing only in strategy.
fn plan_pair(comms: &[usize], msgs: &[usize], anchor_step: usize) -> (CampaignPlan, CampaignPlan) {
    let exhaustive =
        CampaignPlan::exhaustive(Collective::ALL.to_vec(), comms.to_vec(), msgs.to_vec());
    let adaptive = CampaignPlan::adaptive(
        Collective::ALL.to_vec(),
        comms.to_vec(),
        msgs.to_vec(),
        anchor_step,
    );
    (exhaustive, adaptive)
}

fn assert_adaptive_matches_exhaustive(cluster: ClusterModel) {
    let name = cluster.name().to_owned();
    let tuner = tuner_for(cluster);
    let msgs = msg_grid(24);
    let (exhaustive, adaptive) = plan_pair(&[4, 8, 16], &msgs, 6);
    let full = tuner.run_campaign(&exhaustive, None);
    let fast = tuner.run_campaign(&adaptive, None);
    assert_eq!(
        full.tables, fast.tables,
        "{name}: adaptive tables must be byte-identical to the exhaustive sweep"
    );
    assert!(
        fast.measured_cells() < full.measured_cells(),
        "{name}: adaptive must measure fewer cells"
    );
    assert!(
        fast.cell_reduction() >= 2.0,
        "{name}: expected at least 2x fewer cells on this small grid, got {:.2}x",
        fast.cell_reduction()
    );
    assert!(
        fast.simulated_batches() < full.simulated_batches(),
        "{name}: leader-settled repetitions must also save batches"
    );
    assert!(!fast.budget_exhausted);
}

#[test]
fn adaptive_matches_exhaustive_on_gros() {
    assert_adaptive_matches_exhaustive(quiet(ClusterModel::gros()));
}

#[test]
fn adaptive_matches_exhaustive_on_grisou() {
    assert_adaptive_matches_exhaustive(quiet(ClusterModel::grisou()));
}

#[test]
fn adaptive_campaign_is_thread_count_invariant() {
    let tuner = tuner_for(ClusterModel::gros());
    let msgs = msg_grid(16);
    let plan = CampaignPlan::adaptive(
        vec![Collective::Bcast, Collective::Reduce, Collective::Alltoall],
        vec![4, 8],
        msgs,
        4,
    );
    pool::set_thread_override(1);
    let serial = tuner.run_campaign(&plan, None);
    pool::set_thread_override(3);
    let threaded = tuner.run_campaign(&plan, None);
    pool::clear_thread_override();
    assert_eq!(
        serial, threaded,
        "campaigns must not depend on the pool size"
    );
}

#[test]
fn adaptive_campaign_is_backend_invariant() {
    let tuner = tuner_for(ClusterModel::grisou());
    let msgs = msg_grid(12);
    let mut events = CampaignPlan::adaptive(
        vec![Collective::Scatter, Collective::Allreduce],
        vec![4, 8],
        msgs,
        4,
    );
    events.backend = Backend::Events;
    let mut threads = events.clone();
    threads.backend = Backend::Threads;
    assert_eq!(
        tuner.run_campaign(&events, None),
        tuner.run_campaign(&threads, None),
        "both execution backends must resolve identical campaigns"
    );
}

/// Satellite property test: on seeded random sub-grids of a base grid,
/// the adaptive campaign still matches the exhaustive decision table.
///
/// Sub-grids are contiguous windows of the base grid (random extent,
/// random comm subsets, random seeds), not random decimations: the
/// planner's contract is a grid fine enough that a winner island's
/// near-tie flanks are on-grid (see `plan_crossover_fill`), and
/// deleting interior points breaks exactly that adjacency for the
/// exhaustive oracle too.
#[test]
fn adaptive_matches_exhaustive_on_seeded_random_subgrids() {
    let tuner = tuner_for(quiet(ClusterModel::gros()));
    let base_msgs = msg_grid(32);
    let base_comms = [2usize, 4, 6, 8, 12, 16];
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..4 {
        let lo = (rng.next_u64() as usize) % (base_msgs.len() - 8);
        let hi = lo + 8 + (rng.next_u64() as usize) % (base_msgs.len() - lo - 8);
        let msgs: Vec<usize> = base_msgs[lo..=hi].to_vec();
        let comms: Vec<usize> = base_comms
            .iter()
            .copied()
            .filter(|_| rng.next_u64() % 2 == 0)
            .collect();
        if comms.is_empty() {
            continue;
        }
        let collective = Collective::ALL[case % Collective::ALL.len()];
        let mut exhaustive =
            CampaignPlan::exhaustive(vec![collective], comms.clone(), msgs.clone());
        exhaustive.seed = 0xB0B + case as u64;
        let mut adaptive = CampaignPlan::adaptive(vec![collective], comms, msgs, 5);
        adaptive.seed = exhaustive.seed;
        assert_eq!(
            tuner.run_campaign(&exhaustive, None).tables,
            tuner.run_campaign(&adaptive, None).tables,
            "case {case} ({collective})"
        );
    }
}

/// Satellite property test: a leader-settled (early-stopped) cell's
/// per-algorithm means stay inside the full-precision 95% CI.
#[test]
fn early_stopped_means_fall_within_full_precision_ci() {
    let cluster = ClusterModel::gros(); // noise ON: early stop engages
    let precision = Precision {
        rel_precision: 0.05,
        min_reps: 4,
        max_reps: 40,
    };
    for (i, &(c, p, m)) in [
        (Collective::Bcast, 12usize, 128 * 1024usize),
        (Collective::Reduce, 8, 512 * 1024),
        (Collective::Allgather, 6, 64 * 1024),
    ]
    .iter()
    .enumerate()
    {
        let seg = if c == Collective::Bcast {
            8 * 1024
        } else {
            64 * 1024
        };
        let seed = 0xCAFE + ((i as u64) << 8);
        let full = measure_family_cell(
            &cluster,
            c,
            p,
            m,
            seg,
            &precision,
            seed,
            Backend::Events,
            false,
        );
        let early = measure_family_cell(
            &cluster,
            c,
            p,
            m,
            seg,
            &precision,
            seed,
            Backend::Events,
            true,
        );
        assert_eq!(
            early.winner, full.winner,
            "{c}: early stop must not flip the winner"
        );
        assert!(early.batches <= full.batches, "{c}");
        for (a, (e, f)) in early.stats.iter().zip(&full.stats).enumerate() {
            assert!(
                (e.mean - f.mean).abs() <= f.ci_half_width.max(f.mean * 1e-12),
                "{c} alg {a}: early mean {} outside full-precision CI {} ± {}",
                e.mean,
                f.mean,
                f.ci_half_width
            );
        }
    }
}

#[test]
fn warm_start_from_own_model_matches_exhaustive_with_fewer_cells() {
    let tuner = tuner_for(quiet(ClusterModel::gros()));
    let model = tuner.tune_all();
    let msgs = msg_grid(24);
    let (exhaustive, adaptive) = plan_pair(&[4, 8, 16], &msgs, 6);
    let full = tuner.run_campaign(&exhaustive, None);
    let cold = tuner.run_campaign(&adaptive, None);
    let warm = tuner.run_campaign(&adaptive, Some(&model));
    assert_eq!(full.tables, warm.tables, "warm start must stay correct");
    assert!(
        warm.measured_cells() < full.measured_cells(),
        "warm start must beat the exhaustive sweep"
    );
    // The model's predictions concentrate anchors near true crossovers;
    // a decent model should not cost more than the cold anchor grid.
    assert!(
        warm.measured_cells() <= cold.measured_cells() * 2,
        "warm {} vs cold {}",
        warm.measured_cells(),
        cold.measured_cells()
    );
}

#[test]
fn warm_start_from_wrong_neighbor_stays_correct() {
    // Warm-starting gros from grisou's model: predictions are off, so
    // the planner must verify its way back to the exhaustive table.
    let gros = tuner_for(quiet(ClusterModel::gros()));
    let grisou_model = tuner_for(quiet(ClusterModel::grisou())).tune_all();
    let msgs = msg_grid(16);
    let exhaustive = CampaignPlan::exhaustive(
        vec![Collective::Bcast, Collective::Reduce],
        vec![4, 8],
        msgs.clone(),
    );
    let adaptive = CampaignPlan::adaptive(
        vec![Collective::Bcast, Collective::Reduce],
        vec![4, 8],
        msgs,
        4,
    );
    assert_eq!(
        gros.run_campaign(&exhaustive, None).tables,
        gros.run_campaign(&adaptive, Some(&grisou_model)).tables,
        "a wrong warm start may cost cells but never correctness"
    );
}

#[test]
fn budget_caps_measured_cells_and_flags_exhaustion() {
    let tuner = tuner_for(quiet(ClusterModel::gros()));
    let msgs = msg_grid(24);
    let mut plan = CampaignPlan::adaptive(vec![Collective::Reduce], vec![8], msgs.clone(), 4);
    plan.budget = Some(3);
    let report = tuner.run_campaign(&plan, None);
    // 3 budgeted probes + the two budget-exempt endpoints.
    assert!(report.measured_cells() <= 5, "{}", report.measured_cells());
    assert!(report.budget_exhausted);
    // The table still covers the whole grid.
    let table = &report.tables[&Collective::Reduce];
    assert!(table.lookup(8, *msgs.last().unwrap()).is_some());
}
