//! Golden regression tests pinning the estimation pipeline against the
//! paper's published numbers (`collsel_expt::paper_ref`) and against the
//! committed paper-fidelity artifact `results/table2.json`.
//!
//! What each layer can honestly pin:
//!
//! * γ(P) is a dimensionless ratio of measured times, so the simulator
//!   reproduces the paper's Table 1 closely — we hold it to 5%.
//! * The fitted (α, β) depend on absolute hardware timings. The paper's
//!   α values (~1e-12 s) come from real-cluster fits whose intercepts
//!   collapse to numerical zero; the simulator's virtual clock yields
//!   α in the microsecond range instead. β (per-byte cost) is
//!   comparable in magnitude, so we hold nonzero β to an
//!   order-of-magnitude band of Table 2 and sanity-bound α.
//! * Exact current behaviour is pinned against `results/table2.json`,
//!   which was produced by a paper-fidelity run of the `repro` binary —
//!   parsing it also exercises the internal JSON reader on an artifact
//!   originally written by `serde_json`.

use collsel::estim::{estimate_all_alpha_beta, estimate_gamma, AlphaBetaConfig, GammaConfig};
use collsel::netsim::ClusterModel;
use collsel::TunedModel;
use collsel_expt::paper_ref::{TABLE1_GAMMA, TABLE2_GRISOU, TABLE2_GROS};
use collsel_support::{FromJson, Json};

const GAMMA_SEED: u64 = 42;
const AB_SEED: u64 = 7;

#[test]
fn gamma_matches_paper_table1_within_5_percent() {
    let clusters = [
        (ClusterModel::grisou(), 1usize),
        (ClusterModel::gros(), 2usize),
    ];
    for (cluster, col) in clusters {
        let est = estimate_gamma(&cluster, &GammaConfig::paper(), GAMMA_SEED);
        for &row in &TABLE1_GAMMA {
            let (p, paper) = (row.0, if col == 1 { row.1 } else { row.2 });
            let ours = est.table.gamma(p);
            let rel = (ours - paper).abs() / paper;
            assert!(
                rel <= 0.05,
                "{} gamma({p}) = {ours:.3}, paper {paper:.3}, off by {:.1}%",
                cluster.name(),
                100.0 * rel
            );
        }
    }
}

#[test]
fn alpha_beta_within_paper_band() {
    let cases = [
        (ClusterModel::grisou(), 40usize, &TABLE2_GRISOU),
        (ClusterModel::gros(), 124, &TABLE2_GROS),
    ];
    for (cluster, p, paper) in cases {
        let gamma = estimate_gamma(&cluster, &GammaConfig::paper(), GAMMA_SEED).table;
        let fits = estimate_all_alpha_beta(&cluster, &AlphaBetaConfig::quick(p), &gamma, AB_SEED);
        for &(alg, _paper_alpha, paper_beta) in paper.iter() {
            let h = fits[&alg].hockney;
            assert!(
                h.alpha.is_finite() && h.alpha >= 0.0 && h.alpha < 1e-4,
                "{} {alg:?}: implausible alpha {:.3e}",
                cluster.name(),
                h.alpha
            );
            assert!(h.beta.is_finite() && h.beta >= 0.0);
            if h.beta > 0.0 {
                let ratio = h.beta / paper_beta;
                assert!(
                    (0.02..=50.0).contains(&ratio),
                    "{} {alg:?}: beta {:.3e} vs paper {paper_beta:.3e} (x{ratio:.3})",
                    cluster.name(),
                    h.beta
                );
            } else {
                // A zero β means the Huber fit pushed the whole cost
                // into the intercept (the Chain fit does this); the
                // startup term must then be carrying the cost.
                assert!(
                    h.alpha > 0.0,
                    "{} {alg:?}: degenerate fit with alpha = beta = 0",
                    cluster.name()
                );
            }
        }
    }
}

#[test]
fn estimates_track_the_committed_table2_artifact() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/table2.json"))
        .expect("committed results/table2.json");
    let value = Json::parse(&text).expect("artifact parses with the internal reader");
    let models: Vec<TunedModel> = FromJson::from_json(value.field("models").expect("models field"))
        .expect("artifact decodes into TunedModel");
    assert_eq!(models.len(), 2);
    assert_eq!(models[0].cluster_name, "grisou");
    assert_eq!(models[1].cluster_name, "gros");

    for model in &models {
        let cluster = match model.cluster_name.as_str() {
            "grisou" => ClusterModel::grisou(),
            _ => ClusterModel::gros(),
        };
        // γ: the artifact's paper-fidelity estimate and a fresh one must
        // agree closely — the measurement is a ratio, robust to config.
        let fresh = estimate_gamma(&cluster, &GammaConfig::paper(), GAMMA_SEED).table;
        for p in 3..=7 {
            let (a, b) = (model.gamma.table.gamma(p), fresh.gamma(p));
            assert!(
                (a - b).abs() / b < 0.05,
                "{} gamma({p}) drifted: artifact {a:.3} vs fresh {b:.3}",
                model.cluster_name
            );
        }
        // (α, β): a quick-config fit must stay within an order of
        // magnitude of the committed paper-fidelity fit wherever both
        // are nonzero. (The configs measure different sizes, so the
        // intercepts genuinely move by a few x; 10x catches structural
        // regressions without chasing config noise.)
        let p = if model.cluster_name == "grisou" {
            40
        } else {
            124
        };
        let fits = estimate_all_alpha_beta(&cluster, &AlphaBetaConfig::quick(p), &fresh, AB_SEED);
        for (alg, committed) in &model.params {
            let (hc, hf) = (committed.hockney, fits[alg].hockney);
            for (name, c, f) in [("alpha", hc.alpha, hf.alpha), ("beta", hc.beta, hf.beta)] {
                if c > 0.0 && f > 0.0 {
                    let ratio = f / c;
                    assert!(
                        (0.1..=10.0).contains(&ratio),
                        "{} {alg:?} {name}: fresh {f:.3e} vs artifact {c:.3e} (x{ratio:.2})",
                        model.cluster_name
                    );
                } else {
                    assert_eq!(
                        c == 0.0,
                        f == 0.0,
                        "{} {alg:?} {name}: zero/nonzero disagreement ({c:.3e} vs {f:.3e})",
                        model.cluster_name
                    );
                }
            }
        }
    }
}
