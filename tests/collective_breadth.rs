//! Differential suite for the full-collective tuning breadth: per
//! collective, the compiled decision tables must be indistinguishable
//! from the live model ranking (on- and off-grid), the two simulation
//! backends must agree bit-for-bit on the new per-collective
//! measurement programs, and batched multi-collective serving must be
//! invariant to the thread count. The reduce crossover golden test pins
//! the fitted models to the osu_reduce winner ordering on the gros
//! preset. `ci.sh` re-runs this suite at `COLLSEL_THREADS=2` as the
//! breadth equivalence gate.

use collsel::coll::{Collective, ReduceAlg};
use collsel::estim::measure::collective_time_with;
use collsel::estim::{log_spaced_sizes, Precision};
use collsel::mpi::Backend;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::{CollectiveDecisionService, CollectiveSelector};
use collsel::{TunedModel, Tuner, TunerConfig};
use collsel_support::pool::Pool;
use collsel_support::rng::splitmix64;
use std::sync::OnceLock;

/// One shared breadth tuning campaign on a quiet gros: every test in
/// this binary differentiates against the same fitted model.
fn tuned() -> &'static TunedModel {
    static MODEL: OnceLock<TunedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        Tuner::new(cluster, TunerConfig::quick(12)).tune_all()
    })
}

const COMM_GRID: [usize; 4] = [2, 8, 32, 128];

fn msg_grid() -> Vec<usize> {
    log_spaced_sizes(1024, 8 * 1024 * 1024, 10)
}

/// Compiled per-collective tables == the live selector on every grid
/// point, and == the materialised `CollDecisionTable` on arbitrary
/// off-grid queries — for all seven collectives.
#[test]
fn compiled_tables_match_live_ranking_on_and_off_grid() {
    let model = tuned();
    let live = model.multi_selector();
    let msg_grid = msg_grid();
    let compiled = model.compiled_multi_selector(&COMM_GRID, &msg_grid);
    assert_eq!(compiled.collectives(), Collective::ALL.to_vec());
    for c in Collective::ALL {
        // On-grid: the compiled lookup reproduces the live argmin.
        for &p in &COMM_GRID {
            for &m in &msg_grid {
                assert_eq!(
                    compiled.lookup(c, p, m),
                    live.select_for(c, p, m),
                    "{} diverged from live at grid point p={p} m={m}",
                    c.name()
                );
            }
        }
        // Off-grid: the compiled lookup == the decision table's
        // floor/clamp semantics on a randomized query stream.
        let table = model.decision_table(c, &COMM_GRID, &msg_grid);
        let mut state = 0xB5EAD ^ (c.index() as u64);
        for _ in 0..200 {
            let p = 1 + (splitmix64(&mut state) % 300) as usize;
            let m = (splitmix64(&mut state) % (16 << 20)) as usize;
            assert_eq!(
                Some(compiled.lookup(c, p, m)),
                table.lookup(p, m),
                "{} diverged from its table at p={p} m={m}",
                c.name()
            );
        }
    }
}

/// The event-driven backend replays every collective's measurement
/// program bit-identically to the thread-per-rank oracle — first and
/// last algorithm of each family, noise on.
#[test]
fn backends_agree_on_every_collective_measurement_program() {
    let cluster = ClusterModel::gros(); // noise on: the harder case
    let precision = Precision::quick();
    for c in Collective::ALL {
        let family = c.algorithms();
        for &alg in [family[0], family[family.len() - 1]].iter() {
            let seed = 0xD1FF ^ ((c.index() as u64) << 16);
            let events = collective_time_with(
                &cluster,
                alg,
                6,
                16 * 1024,
                8 * 1024,
                &precision,
                seed,
                Backend::Events,
            );
            let threads = collective_time_with(
                &cluster,
                alg,
                6,
                16 * 1024,
                8 * 1024,
                &precision,
                seed,
                Backend::Threads,
            );
            assert_eq!(
                events,
                threads,
                "backends diverged on {}",
                alg.qualified_name()
            );
        }
    }
}

/// Batched multi-collective decisions equal per-query serial decides,
/// in order, at any thread count — with the cache on.
#[test]
fn decide_batch_is_thread_count_invariant_across_collectives() {
    let model = tuned();
    let msg_grid = msg_grid();
    let compiled = model.compiled_multi_selector(&COMM_GRID, &msg_grid);
    let mut state = 0x5EED_CAFEu64;
    let queries: Vec<(Collective, usize, usize)> = (0..600)
        .map(|_| {
            let c = Collective::ALL[(splitmix64(&mut state) % 7) as usize];
            let p = 1 + (splitmix64(&mut state) % 256) as usize;
            let m = (splitmix64(&mut state) % (16 << 20)) as usize;
            (c, p, m)
        })
        .collect();
    let reference: Vec<_> = queries
        .iter()
        .map(|&(c, p, m)| compiled.lookup(c, p, m))
        .collect();
    for threads in [1usize, 2, 5] {
        let svc = CollectiveDecisionService::compiled(compiled.clone()).with_cache(64, 0xFEED);
        let got = svc.decide_batch(&queries, &Pool::with_threads(threads));
        assert_eq!(got, reference, "threads = {threads}");
        assert_eq!(svc.stats().queries(), queries.len() as u64);
    }
}

/// Crossover-shape golden test: the fitted reduce models on the gros
/// preset reproduce the osu_reduce winner ordering — a low-latency tree
/// (linear/binomial) for small vectors, a pipelined shape
/// (pipeline/in-order-binary) for large ones. The exact crossover byte
/// count is platform-dependent and deliberately not pinned; only the
/// small-m/large-m winner families are.
#[test]
fn reduce_crossover_matches_osu_reduce_ordering() {
    let model = tuned();
    let selector = model.multi_selector();
    let p = 16;

    let winner = |m: usize| match selector.select_for(Collective::Reduce, p, m).alg {
        collsel::coll::Alg::Reduce(r) => r,
        other => panic!("reduce query answered with {}", other.qualified_name()),
    };

    let small = [1024usize, 4 * 1024, 8 * 1024];
    let mid = [512 * 1024, 2 << 20];
    let large = [8 << 20, 16 << 20];
    for &m in &small {
        let w = winner(m);
        assert!(
            matches!(w, ReduceAlg::Linear | ReduceAlg::Binomial),
            "small m={m}: expected linear/binomial, got {w}"
        );
    }
    // Between the regimes a segmented tree takes over (which of the
    // pipelined trees wins first is platform noise, flat never is).
    for &m in &mid {
        let w = winner(m);
        assert!(
            w.is_segmented(),
            "mid m={m}: expected a segmented tree, got {w}"
        );
    }
    for &m in &large {
        let w = winner(m);
        assert!(
            matches!(w, ReduceAlg::Pipeline | ReduceAlg::InOrderBinary),
            "large m={m}: expected pipeline/in_order_binary, got {w}"
        );
    }
    // The crossover exists: the two regimes pick different shapes.
    assert_ne!(winner(small[0]), winner(large[1]));
}

/// Every collective is tunable end-to-end: fit → decision table →
/// compiled lookup, with β > 0 everywhere the family conditions it.
#[test]
fn every_collective_serves_from_its_own_fits() {
    let model = tuned();
    assert_eq!(model.tuned_collectives(), Collective::ALL.to_vec());
    let live = model.multi_selector();
    for c in Collective::ALL {
        // The live selector decides from the model path (not the fixed
        // rules): its ranking over this collective is non-empty and its
        // head matches the selection.
        let ranking = live.ranking(c, 16, 64 * 1024);
        assert!(
            !ranking.is_empty(),
            "{} has no fitted models to rank",
            c.name()
        );
        let pick = live.select_for(c, 16, 64 * 1024);
        assert_eq!(
            pick.alg,
            ranking[0].0,
            "{} selection disagrees with its own ranking",
            c.name()
        );
        assert_eq!(pick.alg.collective(), c);
    }
}
