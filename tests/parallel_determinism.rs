//! Parallel campaigns are an optimisation, never a semantic change:
//! the same tuning campaign (and the same measurement sweep) must
//! produce bit-identical results at every thread count.
//!
//! The thread override is process-global state, so all thread-count
//! comparisons live in a single `#[test]` — Rust runs tests in the
//! same binary concurrently, and two tests racing on the override
//! would measure each other's setting.

use collsel::netsim::NoiseParams;
use collsel::{TunedModel, Tuner, TunerConfig};
use collsel_expt::sweep::{sweep_panel, SweepPanel};
use collsel_expt::{scenarios, Fidelity};
use collsel_support::pool;
use collsel_support::ToJson;

fn campaign(threads: usize) -> (TunedModel, SweepPanel) {
    pool::set_thread_override(threads);
    let mut sc = scenarios(Fidelity::Quick).remove(1); // gros
    sc.cluster = sc.cluster.with_noise(NoiseParams::OFF);
    sc.msg_sizes = vec![8 * 1024, 128 * 1024];
    let tuned = Tuner::new(sc.cluster.clone(), TunerConfig::quick(12)).tune();
    let panel = sweep_panel(&sc, &tuned, 16, 9);
    pool::clear_thread_override();
    (tuned, panel)
}

#[test]
fn campaigns_are_bit_identical_at_any_thread_count() {
    let (model_1, panel_1) = campaign(1);
    for threads in [2, 8] {
        let (model_n, panel_n) = campaign(threads);
        // Structural equality covers every float bit-for-bit...
        assert_eq!(
            model_1, model_n,
            "tuned model diverged at {threads} threads"
        );
        assert_eq!(
            panel_1, panel_n,
            "sweep panel diverged at {threads} threads"
        );
        // ...and the persisted artifact must be byte-identical too, so
        // committed results/*.json never depend on the host.
        assert_eq!(
            model_1.to_json().to_string_pretty(),
            model_n.to_json().to_string_pretty(),
            "serialised model diverged at {threads} threads"
        );
    }
}
