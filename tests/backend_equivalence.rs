//! Differential suite for the two execution backends: every simulation
//! must be **bit-identical** between the thread-per-rank oracle
//! (`simulate_with`) and the event-driven replay of the compiled
//! schedule (`record_schedule` + `simulate_scheduled`) — virtual
//! finish times, makespan, message/byte counts, and the full transfer
//! trace. Fault plans and virtual-time deadlines must agree too,
//! down to equal [`SimError`] values.

use collsel::coll::compile::compile_bcast;
use collsel::coll::{bcast, BcastAlg};
use collsel::mpi::{simulate_scheduled, simulate_with, SimError, SimOptions};
use collsel::netsim::{Brownout, ClusterModel, FaultPlan, SimSpan, SimTime};
use collsel_support::Bytes;

const SEG_SIZE: usize = 8 * 1024;

const TRACED: SimOptions = SimOptions {
    traced: true,
    deadline: None,
};

/// Same deterministic filler the schedule compiler uses.
fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

/// Runs the broadcast live on the threaded backend and as a schedule
/// replay on `cluster`, asserting the two reports are bit-identical.
/// The schedule is recorded on `recording`, which may differ from
/// `cluster` only in its fault plan (recording ignores timing, so the
/// op stream is fault-independent).
fn assert_identical_reports(
    recording: &ClusterModel,
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seed: u64,
) {
    let root = 0;
    let sched = compile_bcast(recording, alg, p, root, m, SEG_SIZE).expect("broadcast records");
    let msg = payload(m);
    let threaded = simulate_with(cluster, p, seed, TRACED, move |ctx| {
        let data = (ctx.rank() == root).then(|| msg.clone());
        bcast(ctx, alg, root, data, m, SEG_SIZE);
    })
    .expect("threaded run completes");
    let replay = simulate_scheduled(cluster, &sched, seed, TRACED).expect("replay completes");

    let ctx = format!("{} {} p={p} m={m} seed={seed}", cluster.name(), alg.name());
    assert_eq!(
        threaded.report.finish_times, replay.report.finish_times,
        "finish times diverged: {ctx}"
    );
    assert_eq!(
        threaded.report.makespan, replay.report.makespan,
        "makespan diverged: {ctx}"
    );
    assert_eq!(
        threaded.report.messages, replay.report.messages,
        "message count diverged: {ctx}"
    );
    assert_eq!(
        threaded.report.bytes, replay.report.bytes,
        "byte count diverged: {ctx}"
    );
    assert_eq!(
        threaded.report.trace, replay.report.trace,
        "transfer trace diverged: {ctx}"
    );
}

/// The full grid: both presets (noise ON), all six broadcast
/// algorithms, several process counts and message sizes, two seeds.
#[test]
fn all_algorithms_bit_identical_across_backends() {
    for cluster in [ClusterModel::grisou(), ClusterModel::gros()] {
        for alg in BcastAlg::ALL {
            for p in [4usize, 9, 16] {
                for m in [1024usize, 256 * 1024] {
                    for seed in [1u64, 42] {
                        assert_identical_reports(&cluster, &cluster, alg, p, m, seed);
                    }
                }
            }
        }
    }
}

fn fault_plans(nodes: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "straggler",
            FaultPlan::none()
                .with_straggler(1, 7.5)
                .with_straggler(3, 2.0),
        ),
        (
            "degraded-link",
            FaultPlan::none().with_degraded_link(0, 1 % nodes.max(2), 5.0),
        ),
        (
            "brown-out",
            FaultPlan::none().with_brownout(Brownout {
                node: 0,
                start: SimTime::ZERO + SimSpan::from_micros(10),
                end: SimTime::ZERO + SimSpan::from_millis(400),
                slowdown: 9.0,
            }),
        ),
    ]
}

/// Fault plans perturb virtual timing, not the op stream: the recorded
/// schedule comes from the fault-free cluster, replays on the faulted
/// one, and must still match the threaded run bit for bit.
#[test]
fn fault_plans_bit_identical_across_backends() {
    for cluster in [ClusterModel::grisou(), ClusterModel::gros()] {
        for (label, plan) in fault_plans(cluster.nodes()) {
            let faulted = cluster.clone().with_faults(plan);
            for seed in [5u64, 77] {
                // One algorithm per plan keeps the suite fast; the
                // fault machinery is algorithm-independent.
                let alg = match label {
                    "straggler" => BcastAlg::Binomial,
                    "degraded-link" => BcastAlg::Chain,
                    _ => BcastAlg::SplitBinary,
                };
                assert_identical_reports(&cluster, &faulted, alg, 8, 64 * 1024, seed);
            }
        }
    }
}

/// Under a virtual-time deadline both backends must reach the same
/// verdict: the identical `Ok` report when the budget suffices, and an
/// **equal** `SimError::Timeout` value when it does not — including
/// under a brown-out plan that stretches the run past the deadline.
#[test]
fn deadlines_agree_including_timeout_errors() {
    let cluster = ClusterModel::gros();
    let brownout = cluster
        .clone()
        .with_faults(FaultPlan::none().with_brownout(Brownout {
            node: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimSpan::from_secs_f64(1000.0),
            slowdown: 50.0,
        }));
    let (alg, p, m, root) = (BcastAlg::Binomial, 8, 128 * 1024, 0);
    let sched = compile_bcast(&cluster, alg, p, root, m, SEG_SIZE).expect("records");

    for (label, target, deadline) in [
        ("hopeless budget", &cluster, SimSpan::from_nanos(1)),
        (
            "brown-out past budget",
            &brownout,
            SimSpan::from_micros(200),
        ),
        ("ample budget", &cluster, SimSpan::from_secs_f64(1000.0)),
        (
            "ample budget, brown-out",
            &brownout,
            SimSpan::from_secs_f64(100_000.0),
        ),
    ] {
        let opts = SimOptions::with_deadline(deadline);
        for seed in [2u64, 13] {
            let msg = payload(m);
            let threaded = simulate_with(target, p, seed, opts, move |ctx| {
                let data = (ctx.rank() == root).then(|| msg.clone());
                bcast(ctx, alg, root, data, m, SEG_SIZE);
            });
            let replay = simulate_scheduled(target, &sched, seed, opts);
            match (threaded, replay) {
                (Ok(t), Ok(r)) => {
                    assert_eq!(
                        t.report.finish_times, r.report.finish_times,
                        "{label}: finish times diverged (seed {seed})"
                    );
                    assert_eq!(
                        t.report.makespan, r.report.makespan,
                        "{label}: makespan diverged (seed {seed})"
                    );
                }
                (Err(t), Err(r)) => {
                    assert!(
                        matches!(t, SimError::Timeout { .. }),
                        "{label}: expected timeout, got {t} (seed {seed})"
                    );
                    assert_eq!(t, r, "{label}: error values diverged (seed {seed})");
                }
                (t, r) => panic!(
                    "{label}: backends disagree on outcome (seed {seed}): \
                     threaded {t:?} vs replay {r:?}"
                ),
            }
        }
    }
}
