//! Differential suite for the decision-serving layer: the compiled
//! selector must be indistinguishable from its source on every grid
//! point, from `DecisionTable::lookup` everywhere else, and the
//! exact-query cache must be transparent — for all four selector types,
//! under randomized grids and query streams. `ci.sh` re-runs this suite
//! at `COLLSEL_THREADS=2` as the compiled-vs-live equivalence gate.

use collsel::coll::BcastAlg;
use collsel::model::{GammaTable, Hockney};
use collsel::select::rules::DecisionTable;
use collsel::select::{
    CompiledSelector, DecisionService, MeasuredTableSelector, ModelBasedSelector,
    OpenMpiFixedSelector, Selection, Selector, TraditionalModelSelector,
};
use collsel_support::pool::Pool;
use collsel_support::prelude::*;
use collsel_support::rng::{splitmix64, StdRng};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn gamma() -> GammaTable {
    GammaTable::from_pairs([(3, 1.11), (4, 1.22), (5, 1.28), (6, 1.45), (7, 1.54)])
}

/// All four selector kinds, parameterised so the property harness can
/// vary the model-based decision boundaries between cases.
fn all_selectors(a_scale: f64, b_scale: f64) -> Vec<Box<dyn Selector + Send + Sync>> {
    let params: BTreeMap<BcastAlg, Hockney> = BcastAlg::ALL
        .iter()
        .enumerate()
        .map(|(i, &alg)| {
            (
                alg,
                Hockney::new(1e-6 * a_scale * (i + 1) as f64, 1e-9 * b_scale),
            )
        })
        .collect();
    let mut oracle = BTreeMap::new();
    for (i, &p) in [4usize, 16, 64, 128].iter().enumerate() {
        for (j, &m) in [1024usize, 64 * 1024, 1 << 20].iter().enumerate() {
            oracle.insert((p, m), BcastAlg::ALL[(i + j) % BcastAlg::ALL.len()]);
        }
    }
    vec![
        Box::new(ModelBasedSelector::new(gamma(), params, 8192)),
        Box::new(TraditionalModelSelector::new(
            Hockney::new(1e-6 * a_scale, 1e-9 * b_scale),
            8192,
        )),
        Box::new(OpenMpiFixedSelector),
        Box::new(MeasuredTableSelector::new(oracle, 8192)),
    ]
}

fn grids(comms: &BTreeSet<usize>, msgs: &BTreeSet<usize>) -> (Vec<usize>, Vec<usize>) {
    (
        comms.iter().copied().collect(),
        msgs.iter().copied().collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CompiledSelector == source selector on every grid point, and ==
    /// DecisionTable::lookup on arbitrary (incl. off-grid) queries, for
    /// all four selector types.
    #[test]
    fn compiled_is_differential_twin_of_table_and_source(
        comms in prop::collection::btree_set(2usize..200, 2..6),
        msgs in prop::collection::btree_set(1usize..(4 << 20), 2..8),
        queries in prop::collection::vec((1usize..256, 0usize..(8 << 20)), 1..40),
        a_scale in 1.0f64..40.0,
        b_scale in 1.0f64..40.0,
    ) {
        let (comm_grid, msg_grid) = grids(&comms, &msgs);
        for sel in all_selectors(a_scale, b_scale) {
            let table = DecisionTable::generate(sel.as_ref(), &comm_grid, &msg_grid);
            let compiled = CompiledSelector::compile(sel.as_ref(), &comm_grid, &msg_grid);
            for &p in &comm_grid {
                for &m in &msg_grid {
                    prop_assert_eq!(
                        compiled.lookup(p, m),
                        sel.select(p, m),
                        "{} diverged from its source at grid point p={} m={}",
                        sel.name(), p, m
                    );
                }
            }
            for &(p, m) in &queries {
                prop_assert_eq!(
                    Some(compiled.lookup(p, m)),
                    table.lookup(p, m),
                    "{} diverged from DecisionTable::lookup at p={} m={}",
                    sel.name(), p, m
                );
            }
        }
    }

    /// Cache transparency: under a randomized query stream (with
    /// repeats, small capacities, arbitrary eviction seeds), a cached
    /// service answers bit-identically to an uncached one and to the
    /// bare compiled table — for all four selector types.
    #[test]
    fn cache_is_transparent_for_every_selector_type(
        comms in prop::collection::btree_set(2usize..200, 2..5),
        msgs in prop::collection::btree_set(1usize..(4 << 20), 2..6),
        queries in prop::collection::vec((1usize..256, 0usize..(8 << 20)), 1..60),
        capacity in 1usize..24,
        seed in prop::any::<u64>(),
        a_scale in 1.0f64..40.0,
    ) {
        let (comm_grid, msg_grid) = grids(&comms, &msgs);
        for sel in all_selectors(a_scale, 3.0) {
            let compiled = CompiledSelector::compile(sel.as_ref(), &comm_grid, &msg_grid);
            let cached = DecisionService::compiled(compiled.clone()).with_cache(capacity, seed);
            let uncached = DecisionService::compiled(compiled.clone());
            // Replay the stream twice so later passes hit warm entries.
            for &(p, m) in queries.iter().chain(queries.iter()) {
                let hot = cached.decide(p, m);
                prop_assert_eq!(hot, uncached.decide(p, m), "{} cached != uncached", sel.name());
                prop_assert_eq!(hot, compiled.lookup(p, m), "{} cached != compiled", sel.name());
            }
            let stats = cached.stats();
            prop_assert_eq!(stats.queries(), 2 * queries.len() as u64);
            prop_assert_eq!(stats.fallbacks, 0);
            prop_assert!(
                cached.cached_entries() <= capacity,
                "cache overflowed: {} > {}", cached.cached_entries(), capacity
            );
        }
    }

    /// Batched queries equal per-query decides, in order, at any thread
    /// count — the PR 3 determinism guarantee extended to serving.
    #[test]
    fn decide_batch_is_bit_identical_at_any_thread_count(
        queries in prop::collection::vec((1usize..256, 0usize..(8 << 20)), 1..300),
        capacity in 1usize..64,
        seed in prop::any::<u64>(),
    ) {
        let compiled = CompiledSelector::compile(
            &OpenMpiFixedSelector,
            &[2, 8, 32, 128],
            &[1024, 8 * 1024, 512 * 1024, 4 << 20],
        );
        let reference: Vec<Selection> =
            queries.iter().map(|&(p, m)| compiled.lookup(p, m)).collect();
        for threads in [1usize, 2, 5] {
            let svc = DecisionService::compiled(compiled.clone()).with_cache(capacity, seed);
            let got = svc.decide_batch(&queries, &Pool::with_threads(threads));
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
            prop_assert_eq!(svc.stats().queries(), queries.len() as u64);
        }
    }
}

/// A live (uncompiled) service over the model ranking must agree with
/// the selector it wraps, cached or not — the serving layer never
/// changes decisions, only their cost.
#[test]
fn live_service_matches_wrapped_selector() {
    let params: BTreeMap<BcastAlg, Hockney> = BcastAlg::ALL
        .iter()
        .map(|&a| (a, Hockney::new(1e-6, 1e-9)))
        .collect();
    let selector = ModelBasedSelector::new(gamma(), params.clone(), 8192);
    let svc = DecisionService::live(ModelBasedSelector::new(gamma(), params, 8192))
        .with_cache(64, 0xFEED);
    let mut state = 0x5EEDu64;
    let queries: Vec<(usize, usize)> = (0..500)
        .map(|_| {
            (
                2 + (splitmix64(&mut state) % 160) as usize,
                (splitmix64(&mut state) % (4 << 20)) as usize,
            )
        })
        .collect();
    let batched = svc.decide_batch(&queries, &Pool::with_threads(3));
    for (&(p, m), got) in queries.iter().zip(&batched) {
        assert_eq!(*got, selector.select(p, m), "p={p} m={m}");
    }
}

/// The seeded eviction stream is reproducible: same seed, same
/// insertion order → same resident set and the same serial counters.
#[test]
fn seeded_eviction_is_reproducible() {
    let compiled = CompiledSelector::compile(
        &OpenMpiFixedSelector,
        &[2, 16, 128],
        &[1024, 64 * 1024, 4 << 20],
    );
    let run = |seed: u64| {
        let svc = DecisionService::compiled(compiled.clone()).with_cache(8, seed);
        let mut rng = StdRng::seed_from_u64(99);
        let mut picks = Vec::new();
        for _ in 0..400 {
            let p = 2 + rng.gen_range(0usize..180);
            let m = rng.gen_range(0usize..(8 << 20));
            picks.push(svc.decide(p, m));
        }
        (picks, svc.stats())
    };
    assert_eq!(run(41), run(41), "same seed must replay identically");
    // Different seeds may cache differently, but answers never change.
    assert_eq!(run(41).0, run(42).0, "answers are eviction-independent");
}
