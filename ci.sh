#!/usr/bin/env sh
# Hermetic CI gate: build, test, and lint the workspace with no network
# access. The workspace has zero external crate dependencies (see
# DESIGN.md), so --offline must always succeed from a clean checkout.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (offline, warnings are errors)"
RUSTFLAGS='-D warnings' cargo build --offline --release --workspace

echo "==> cargo test (offline, warnings are errors)"
RUSTFLAGS='-D warnings' cargo test --offline --workspace -q

echo "==> determinism gate: integration tests again at COLLSEL_THREADS=2"
# Campaigns must be bit-identical at any thread count; running the
# workspace-level integration tests once more with a threaded pool
# catches any seed-derivation or ordering regression.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro

echo "==> backend-equivalence gate: differential suite at COLLSEL_THREADS=2"
# The event-driven replay backend must stay bit-identical to the
# thread-per-rank oracle (times, traces, and error values) even when
# the surrounding pool is threaded.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro --test backend_equivalence

echo "==> compiled-vs-live equivalence gate: decision-serving suite at COLLSEL_THREADS=2"
# A compiled selector must be indistinguishable from its source on grid
# points and from DecisionTable::lookup everywhere else, and the query
# cache must be transparent — for all four selector types, with batched
# queries bit-identical under a threaded pool.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro --test service

echo "==> collective-breadth gate: per-collective differential suite at COLLSEL_THREADS=2"
# The compiled per-collective tables must match the live multi-collective
# ranking on- and off-grid, both backends must agree bit-for-bit on every
# collective's measurement program, and batched multi-collective serving
# must be thread-count invariant; the reduce crossover golden test pins
# the fitted models to the osu_reduce winner ordering.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro --test collective_breadth

echo "==> dag-vs-events gate: timing-DAG differential suite at COLLSEL_THREADS=2"
# The compiled timing-DAG backend must stay bit-identical to the
# event-driven schedule replay — reports, traces, wtimes and error
# values — for all seven collectives, on and off the tuning grid,
# under fault plans and watchdog deadlines, at any thread budget.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-coll --test dag_equivalence

echo "==> replay determinism gate: trace-replay suite at COLLSEL_THREADS=2"
# Whole-trace replay (mixed collectives on overlapping rank groups)
# must produce bit-identical job completion times across all three
# execution backends and any worker thread count, and the model-worst
# policy must never beat the tuned one.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro --test replay_determinism

echo "==> adaptive-campaign gate: differential suite at COLLSEL_THREADS=2"
# The adaptive planner (crossover bisection + leader-settled
# repetitions + warm-started hints) must produce the byte-identical
# decision table of the exhaustive sweep on both presets, stay
# bit-identical across thread counts and both simulation backends,
# and keep early-stopped means inside the full-precision 95% CI.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro --test adaptive_campaign

echo "==> campaign bench (smoke): serial vs threaded tuning campaign"
COLLSEL_BENCH_SMOKE=1 RUSTFLAGS='-D warnings' \
    cargo bench --offline -p collsel-bench --bench campaign
test -f BENCH_tune.json || { echo "ci.sh: BENCH_tune.json missing" >&2; exit 1; }

echo "==> simrate bench (smoke): dag >= events >= threads in every cell"
# The smoke run asserts internally that the compiled timing-DAG tier is
# not slower than schedule replay and replay not slower than the
# threaded oracle, after checking all three agree bit-for-bit.
COLLSEL_BENCH_SMOKE=1 RUSTFLAGS='-D warnings' \
    cargo bench --offline -p collsel-bench --bench simrate
test -f BENCH_sim.json || { echo "ci.sh: BENCH_sim.json missing" >&2; exit 1; }

echo "==> selrate bench (smoke): compiled lookup must not be slower than live ranking"
# The smoke run asserts internally that compiled >= live in every cell.
COLLSEL_BENCH_SMOKE=1 RUSTFLAGS='-D warnings' \
    cargo bench --offline -p collsel-bench --bench selrate
test -f BENCH_select.json || { echo "ci.sh: BENCH_select.json missing" >&2; exit 1; }

echo "==> replayrate bench (smoke): dag >= events on whole-trace replay"
# The smoke run asserts internally that the DAG tier is not slower than
# events on whole-trace replay (the step memo amortising across steps)
# and that the model-worst policy never beats the tuned one; it records
# the tuned-vs-fixed JCT gap on both presets.
COLLSEL_BENCH_SMOKE=1 RUSTFLAGS='-D warnings' \
    cargo bench --offline -p collsel-bench --bench replayrate
test -f BENCH_replay.json || { echo "ci.sh: BENCH_replay.json missing" >&2; exit 1; }

echo "==> soak gate: decision-server chaos suite at COLLSEL_THREADS=2"
# The full-size seeded soak under an active fault plan: >= 10k mixed
# queries across >= 3 hot swaps with zero invariant violations, the
# health gate rejecting a poisoned refit, and every fallback attributed.
COLLSEL_THREADS=2 RUSTFLAGS='-D warnings' \
    cargo test --offline -q -p collsel-repro --test soak

echo "==> serve bench (smoke): fallbacks appear exactly under faults"
# The smoke run asserts internally that the calm cell never falls back
# and the brown-out cell does; every cell's invariants are validated
# before its numbers are reported.
COLLSEL_BENCH_SMOKE=1 RUSTFLAGS='-D warnings' \
    cargo bench --offline -p collsel-bench --bench serve
test -f BENCH_serve.json || { echo "ci.sh: BENCH_serve.json missing" >&2; exit 1; }

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> unwrap/expect ratchet (estim + expt)"
# Fallible library paths must propagate errors or carry a documented
# invariant comment. This ratchet only ever goes DOWN: if you add an
# unwrap()/expect() to these crates, justify it as an invariant and
# bump consciously; if you removed some, lower the ceiling.
# 44 = 40 + the breadth additions: one documented invariant in
# expt::breadth (every collective has >= 1 algorithm) and three in
# test code.
# 50 = 44 + the soak harness: the documented boot-tune panic contract
# of expt::soak::run_soak, three lock/join poisoning propagations in
# the same function (a panicked soak thread must fail the soak), and
# two in test code.
# 54 = 50 + the adaptive campaign planner: two documented invariants in
# estim::campaign (a measurement program cannot deadlock; plan endpoints
# are always measured before interior fill) and two in test code.
# 60 = 54 + the timing-DAG tier: two lock-poisoning propagations in the
# estim::memo compiled-DAG store (a panicked recorder must fail the
# run, not serve a half-built cache), two recording invariants on the
# DAG fast paths (a measurement program cannot deadlock), and two in
# test code.
# 59 = 60 - 1: the replay step memo shares one lock-poisoning
# propagation helper with the cell memo instead of repeating the
# expect at every lock site.
UNWRAP_CEILING=59
count=$(grep -rc 'unwrap()\|\.expect(' crates/estim/src crates/expt/src \
    --include='*.rs' | awk -F: '{s+=$2} END {print s}')
if [ "$count" -gt "$UNWRAP_CEILING" ]; then
    echo "ci.sh: unwrap/expect count $count exceeds ceiling $UNWRAP_CEILING" >&2
    exit 1
fi
echo "    $count occurrences (ceiling $UNWRAP_CEILING)"

echo "==> colltune fault-injection smoke run"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/colltune tune --preset gros --tune-p 8 \
    --faults chaos:7 --out "$smoke_dir/model.json"
./target/release/colltune query --model "$smoke_dir/model.json" \
    --p 64 --m 8192 --m 1048576 --degraded

echo "==> colltune collective-breadth smoke run (reduce, under faults)"
./target/release/colltune tune --preset gros --tune-p 8 \
    --collective reduce --faults chaos:7 --out "$smoke_dir/breadth.json"
./target/release/colltune query --model "$smoke_dir/breadth.json" \
    --collective reduce --p 64 --m 8192 --m 1048576 --degraded

echo "==> colltune adaptive-campaign smoke run (budget-capped, warm-started)"
# The adaptive campaign embeds measured decision tables and coverage
# accounting in the model JSON; a budget cap keeps this CI-sized.
COLLSEL_THREADS=2 ./target/release/colltune tune --preset gros --tune-p 8 \
    --collective bcast --adaptive --budget 6 --out "$smoke_dir/adaptive.json"
grep -q '"campaign"' "$smoke_dir/adaptive.json" || {
    echo "ci.sh: adaptive model JSON missing campaign accounting" >&2; exit 1;
}

echo "==> colltune replay smoke run (generated trace, JCT policy comparison)"
# A seeded data-parallel trace replayed under all four policies (the
# server policy drives a live DecisionServer lookup per call); the CSV
# must carry one row per policy plus the header.
COLLSEL_THREADS=2 ./target/release/colltune tune --preset gros --tune-p 8 \
    --collective all --out "$smoke_dir/replay-model.json"
COLLSEL_THREADS=2 ./target/release/colltune replay --gen dp --steps 4 \
    --model "$smoke_dir/replay-model.json" --selector all \
    --json "$smoke_dir/replay.json" --csv "$smoke_dir/replay.csv"
[ "$(wc -l < "$smoke_dir/replay.csv")" -eq 5 ] || {
    echo "ci.sh: replay CSV must have 4 policy rows" >&2; exit 1;
}

echo "==> colltune serve smoke run (short soak with journal recovery)"
# A short seeded soak with hot swaps, a poisoned refit, and the fault
# plan's brown-outs; the command exits non-zero on any invariant
# violation and verifies crash-only recovery from the journal.
COLLSEL_THREADS=2 ./target/release/colltune serve \
    --queries 4000 --threads 2 --refits 3 \
    --journal "$smoke_dir/serve-journal.json" --json "$smoke_dir/serve-report.json"
test -f "$smoke_dir/serve-journal.json" || {
    echo "ci.sh: serve journal missing" >&2; exit 1;
}

echo "ci.sh: all green"
