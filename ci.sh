#!/usr/bin/env sh
# Hermetic CI gate: build, test, and lint the workspace with no network
# access. The workspace has zero external crate dependencies (see
# DESIGN.md), so --offline must always succeed from a clean checkout.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (offline)"
cargo build --offline --release --workspace

echo "==> cargo test (offline)"
cargo test --offline --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
