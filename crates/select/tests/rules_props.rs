//! Property tests: a generated decision table must agree with its
//! source selector on every grid point and behave sanely off-grid.

use collsel_select::rules::DecisionTable;
use collsel_select::{OpenMpiFixedSelector, Selector};
use collsel_support::prelude::*;

fn grids() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::btree_set(2usize..200, 1..6),
        prop::collection::btree_set(1usize..(8 << 20), 1..10),
    )
        .prop_map(|(ps, ms)| (ps.into_iter().collect(), ms.into_iter().collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On-grid lookups reproduce the source selector exactly.
    #[test]
    fn table_matches_selector_on_grid((comms, msgs) in grids()) {
        let sel = OpenMpiFixedSelector;
        let table = DecisionTable::generate(&sel, &comms, &msgs);
        for &p in &comms {
            for &m in &msgs {
                prop_assert_eq!(table.lookup(p, m), Some(sel.select(p, m)));
            }
        }
    }

    /// Off-grid lookups always return something from the table, and the
    /// rules file renders with one block per communicator size.
    #[test]
    fn table_is_total_and_renders((comms, msgs) in grids(), p in 1usize..300, m in 0usize..(16 << 20)) {
        let sel = OpenMpiFixedSelector;
        let table = DecisionTable::generate(&sel, &comms, &msgs);
        prop_assert!(table.lookup(p, m).is_some());
        let rendered = table.to_ompi_rules();
        prop_assert_eq!(
            rendered.matches("# comm size").count(),
            comms.len()
        );
    }

    /// Rule thresholds are strictly increasing within each block.
    #[test]
    fn rule_thresholds_strictly_increase((comms, msgs) in grids()) {
        let table = DecisionTable::generate(&OpenMpiFixedSelector, &comms, &msgs);
        for block in &table.comms {
            prop_assert!(!block.rules.is_empty());
            prop_assert_eq!(block.rules[0].min_msg_size, 0);
            for w in block.rules.windows(2) {
                prop_assert!(w[0].min_msg_size < w[1].min_msg_size);
            }
        }
    }
}
