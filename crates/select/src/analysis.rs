//! Selection-accuracy analysis: the machinery behind the paper's
//! Table 3 and Fig. 5 comparisons.
//!
//! Given measured execution times of every algorithm at a `(p, m)`
//! point, [`ComparisonPoint`] records who actually won, what each
//! decision function picked, and the percentage degradation of each
//! pick against the best — exactly the quantities reported in Table 3.

use collsel_coll::BcastAlg;
use std::collections::BTreeMap;

/// Measured times of every candidate algorithm at one `(p, m)` point,
/// in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Process count.
    pub p: usize,
    /// Message size in bytes.
    pub m: usize,
    /// Measured mean time per algorithm.
    pub times: BTreeMap<BcastAlg, f64>,
}

impl MeasuredPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty or contains non-positive values.
    pub fn new(p: usize, m: usize, times: BTreeMap<BcastAlg, f64>) -> Self {
        assert!(!times.is_empty(), "need at least one measured algorithm");
        assert!(
            times.values().all(|&t| t.is_finite() && t > 0.0),
            "measured times must be positive"
        );
        MeasuredPoint { p, m, times }
    }

    /// The measured best algorithm and its time.
    pub fn best(&self) -> (BcastAlg, f64) {
        let (&alg, &t) = self
            .times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("non-empty");
        (alg, t)
    }

    /// Percentage degradation of `alg` versus the best (0 for the best
    /// itself), i.e. `100·(T_alg − T_best)/T_best` — the bracketed
    /// numbers of Table 3.
    ///
    /// Returns `None` if `alg` was not measured at this point.
    pub fn degradation_pct(&self, alg: BcastAlg) -> Option<f64> {
        let t = *self.times.get(&alg)?;
        let (_, best) = self.best();
        Some(100.0 * (t - best) / best)
    }
}

/// One row of a Table 3-style comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonPoint {
    /// Process count.
    pub p: usize,
    /// Message size in bytes.
    pub m: usize,
    /// The measured best algorithm.
    pub best: BcastAlg,
    /// The measured best time in seconds.
    pub best_time: f64,
    /// What the model-based decision picked.
    pub model_pick: BcastAlg,
    /// Degradation of the model-based pick vs best, in percent.
    pub model_degradation_pct: f64,
    /// What the native Open MPI decision picked.
    pub openmpi_pick: BcastAlg,
    /// Degradation of the Open MPI pick vs best, in percent.
    pub openmpi_degradation_pct: f64,
    /// Measured time of the model-based pick.
    pub model_time: f64,
    /// Measured time of the Open MPI pick (with its own segment size).
    pub openmpi_time: f64,
}

impl ComparisonPoint {
    /// Assembles a comparison row.
    ///
    /// `point` holds the per-algorithm times at the paper's fixed 8 KB
    /// segment size; `openmpi_time` is measured separately because Open
    /// MPI's decision function also chooses its own segment size.
    pub fn build(
        point: &MeasuredPoint,
        model_pick: BcastAlg,
        openmpi_pick: BcastAlg,
        openmpi_time: f64,
    ) -> Self {
        let (best, best_time) = point.best();
        let model_time = point
            .times
            .get(&model_pick)
            .copied()
            .expect("model pick was measured");
        ComparisonPoint {
            p: point.p,
            m: point.m,
            best,
            best_time,
            model_pick,
            model_degradation_pct: 100.0 * (model_time - best_time) / best_time,
            openmpi_pick,
            openmpi_degradation_pct: 100.0 * (openmpi_time - best_time) / best_time,
            model_time,
            openmpi_time,
        }
    }
}

/// Summary statistics over a set of comparison rows (used in the
/// paper's prose: "near optimal in 50% cases, up to 160% degradation in
/// the remaining").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorSummary {
    /// Fraction of points within 10% of the best (the paper's "near
    /// optimal" yardstick).
    pub near_optimal_fraction: f64,
    /// Worst-case degradation in percent.
    pub max_degradation_pct: f64,
    /// Mean degradation in percent.
    pub mean_degradation_pct: f64,
}

/// Summarises degradations (percent values).
///
/// # Panics
///
/// Panics if `degradations` is empty.
pub fn summarise(degradations: &[f64]) -> SelectorSummary {
    assert!(!degradations.is_empty(), "no comparison points");
    let n = degradations.len() as f64;
    let near = degradations.iter().filter(|&&d| d <= 10.0).count() as f64;
    SelectorSummary {
        near_optimal_fraction: near / n,
        max_degradation_pct: degradations.iter().copied().fold(f64::MIN, f64::max),
        mean_degradation_pct: degradations.iter().sum::<f64>() / n,
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(MeasuredPoint { p, m, times });
collsel_support::json_struct!(SelectorSummary {
    near_optimal_fraction,
    max_degradation_pct,
    mean_degradation_pct
});

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> MeasuredPoint {
        let mut times = BTreeMap::new();
        times.insert(BcastAlg::Binomial, 1.0e-3);
        times.insert(BcastAlg::Binary, 1.1e-3);
        times.insert(BcastAlg::Chain, 2.0e-3);
        MeasuredPoint::new(90, 8192, times)
    }

    #[test]
    fn best_is_minimum() {
        let (alg, t) = point().best();
        assert_eq!(alg, BcastAlg::Binomial);
        assert_eq!(t, 1.0e-3);
    }

    #[test]
    fn degradation_percentages() {
        let p = point();
        assert_eq!(p.degradation_pct(BcastAlg::Binomial), Some(0.0));
        let d = p.degradation_pct(BcastAlg::Binary).unwrap();
        assert!((d - 10.0).abs() < 1e-9);
        let d = p.degradation_pct(BcastAlg::Chain).unwrap();
        assert!((d - 100.0).abs() < 1e-9);
        assert_eq!(p.degradation_pct(BcastAlg::Linear), None);
    }

    #[test]
    fn comparison_point_computes_both_sides() {
        let p = point();
        let row = ComparisonPoint::build(&p, BcastAlg::Binary, BcastAlg::Chain, 2.6e-3);
        assert_eq!(row.best, BcastAlg::Binomial);
        assert!((row.model_degradation_pct - 10.0).abs() < 1e-9);
        assert!((row.openmpi_degradation_pct - 160.0).abs() < 1e-9);
    }

    #[test]
    fn summary_counts_near_optimal() {
        let s = summarise(&[0.0, 3.0, 10.0, 55.0]);
        assert!((s.near_optimal_fraction - 0.75).abs() < 1e-9);
        assert_eq!(s.max_degradation_pct, 55.0);
        assert!((s.mean_degradation_pct - 17.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_times() {
        let mut times = BTreeMap::new();
        times.insert(BcastAlg::Binomial, 0.0);
        let _ = MeasuredPoint::new(2, 2, times);
    }
}
