//! Decision functions: map `(process count, message size)` to a
//! broadcast algorithm (and segment size).
//!
//! Three selectors are provided, matching the three curves of the
//! paper's Fig. 5:
//!
//! * [`ModelBasedSelector`] — the paper's contribution: evaluate every
//!   implementation-derived model with its per-algorithm parameters and
//!   pick the fastest;
//! * [`OpenMpiFixedSelector`] — the native Open MPI 3.1 decision
//!   function (`ompi_coll_tuned_bcast_intra_dec_fixed`), the paper's
//!   baseline;
//! * [`MeasuredTableSelector`] — the oracle "best" line, built from
//!   exhaustive measurements.

use collsel_coll::BcastAlg;
use collsel_model::{derived, GammaTable, Hockney};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// The outcome of a selection: an algorithm plus the segment size it
/// should run with (`None` means unsegmented — the whole message is one
/// segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Selection {
    /// The selected broadcast algorithm.
    pub alg: BcastAlg,
    /// Pipeline segment size in bytes; `None` for unsegmented.
    pub seg_size: Option<usize>,
}

impl Selection {
    /// Creates a segmented selection.
    pub fn segmented(alg: BcastAlg, seg_size: usize) -> Self {
        Selection {
            alg,
            seg_size: Some(seg_size),
        }
    }

    /// Creates an unsegmented selection.
    pub fn unsegmented(alg: BcastAlg) -> Self {
        Selection {
            alg,
            seg_size: None,
        }
    }

    /// The segment size to actually run with for an `m`-byte message
    /// (unsegmented ⇒ one segment spanning the message).
    pub fn effective_seg_size(&self, m: usize) -> usize {
        self.seg_size.unwrap_or_else(|| m.max(1))
    }
}

/// Sorts a ranking ascending by predicted time, **finite predictions
/// first**: a poisoned fit (NaN/∞ prediction) sinks to the end of the
/// ranking in a deterministic total order instead of panicking the
/// sort.
fn sort_ranking(v: &mut [(BcastAlg, f64)]) {
    v.sort_by(|a, b| match (a.1.is_finite(), b.1.is_finite()) {
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        _ => a.1.total_cmp(&b.1),
    });
}

/// A runtime decision function for `MPI_Bcast`.
pub trait Selector: Debug {
    /// Selects the algorithm for broadcasting `m` bytes among `p`
    /// processes.
    fn select(&self, p: usize, m: usize) -> Selection;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// The paper's model-based runtime selection: evaluates the
/// implementation-derived model of every algorithm with its own fitted
/// `(α, β)` and the shared γ table, returning the predicted-fastest.
///
/// The paper fixes the segment size of all segmented algorithms to
/// 8 KB; the selector is parameterised on it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBasedSelector {
    gamma: GammaTable,
    params: BTreeMap<BcastAlg, Hockney>,
    seg_size: usize,
}

impl ModelBasedSelector {
    /// Builds the selector from estimated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty or `seg_size` is zero.
    pub fn new(gamma: GammaTable, params: BTreeMap<BcastAlg, Hockney>, seg_size: usize) -> Self {
        assert!(
            !params.is_empty(),
            "need at least one algorithm's parameters"
        );
        assert!(seg_size > 0, "segment size must be positive");
        ModelBasedSelector {
            gamma,
            params,
            seg_size,
        }
    }

    /// The γ table in use.
    pub fn gamma(&self) -> &GammaTable {
        &self.gamma
    }

    /// The per-algorithm Hockney parameters.
    pub fn params(&self) -> &BTreeMap<BcastAlg, Hockney> {
        &self.params
    }

    /// Predicted times of every modelled algorithm, ascending, with any
    /// non-finite predictions (poisoned fits) sorted last.
    pub fn ranking(&self, p: usize, m: usize) -> Vec<(BcastAlg, f64)> {
        let mut v: Vec<(BcastAlg, f64)> = self
            .params
            .iter()
            .map(|(&alg, h)| {
                (
                    alg,
                    derived::predict_bcast(alg, p, m, self.seg_size, &self.gamma, h),
                )
            })
            .collect();
        sort_ranking(&mut v);
        v
    }

    /// Joint algorithm **and segment size** selection — the extension
    /// the paper marks out of scope ("Selection of optimal segment size
    /// is out of the scope of this paper"): since the derived models
    /// are parameterised on the segment size, minimising over a
    /// candidate segment grid comes for free.
    ///
    /// Returns the predicted-fastest `(algorithm, segment size)` pair
    /// over `seg_candidates` (the tuned default is always included, so
    /// this never does worse than [`Selector::select`] in model terms).
    ///
    /// # Panics
    ///
    /// Panics if any candidate is zero.
    pub fn select_with_segment_sweep(
        &self,
        p: usize,
        m: usize,
        seg_candidates: &[usize],
    ) -> Selection {
        let mut best: Option<(f64, Selection)> = None;
        for &seg in seg_candidates.iter().chain(std::iter::once(&self.seg_size)) {
            assert!(seg > 0, "segment size candidates must be positive");
            for (&alg, h) in &self.params {
                let t = derived::predict_bcast(alg, p, m, seg, &self.gamma, h);
                if t.is_finite() && best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                    best = Some((t, Selection::segmented(alg, seg)));
                }
            }
        }
        best.expect("every (algorithm, segment) prediction was non-finite")
            .1
    }
}

impl Selector for ModelBasedSelector {
    /// Allocation-free argmin over the finite predictions: an algorithm
    /// whose model evaluates to NaN/∞ for this `(p, m)` is skipped
    /// rather than poisoning the comparison.
    ///
    /// # Panics
    ///
    /// Panics only when *every* prediction is non-finite — a selector
    /// with no usable model at all (use
    /// [`GracefulSelector`](crate::GracefulSelector) to degrade to the
    /// Open MPI rules instead).
    fn select(&self, p: usize, m: usize) -> Selection {
        let mut best: Option<(BcastAlg, f64)> = None;
        for (&alg, h) in &self.params {
            let t = derived::predict_bcast(alg, p, m, self.seg_size, &self.gamma, h);
            if t.is_finite() && best.is_none_or(|(_, bt)| t < bt) {
                best = Some((alg, t));
            }
        }
        let (alg, _) = best.expect("every model prediction was non-finite");
        Selection::segmented(alg, self.seg_size)
    }

    fn name(&self) -> &str {
        "model-based"
    }
}

/// Ablation selector: ranks algorithms with the **traditional**
/// (textbook) models and a single *network-level* Hockney pair — i.e.
/// the prior-work approach the paper improves on (both innovations
/// removed). Kept for the model-ablation experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct TraditionalModelSelector {
    hockney: Hockney,
    seg_size: usize,
}

impl TraditionalModelSelector {
    /// Builds the selector from a network-level Hockney pair.
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is zero.
    pub fn new(hockney: Hockney, seg_size: usize) -> Self {
        assert!(seg_size > 0, "segment size must be positive");
        TraditionalModelSelector { hockney, seg_size }
    }

    /// Predicted times of every algorithm under the textbook models,
    /// ascending.
    pub fn ranking(&self, p: usize, m: usize) -> Vec<(BcastAlg, f64)> {
        let mut v: Vec<(BcastAlg, f64)> = BcastAlg::ALL
            .iter()
            .map(|&alg| {
                (
                    alg,
                    collsel_model::traditional::predict_bcast(
                        alg,
                        p,
                        m,
                        self.seg_size,
                        &self.hockney,
                    ),
                )
            })
            .collect();
        sort_ranking(&mut v);
        v
    }
}

impl Selector for TraditionalModelSelector {
    fn select(&self, p: usize, m: usize) -> Selection {
        let (alg, _) = self.ranking(p, m)[0];
        Selection::segmented(alg, self.seg_size)
    }

    fn name(&self) -> &str {
        "traditional-models"
    }
}

/// Port of Open MPI 3.1's fixed decision function for `MPI_Bcast`
/// (`ompi_coll_tuned_bcast_intra_dec_fixed` in
/// `coll/tuned/coll_tuned_decision_fixed.c`), including its empirical
/// constants and per-choice segment sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenMpiFixedSelector;

impl OpenMpiFixedSelector {
    /// Messages below this use the unsegmented binomial tree.
    pub const SMALL_MESSAGE_SIZE: usize = 2048;
    /// Messages below this (and above small) use split-binary with 1 KB
    /// segments.
    pub const INTERMEDIATE_MESSAGE_SIZE: usize = 370_728;

    const A_P16: f64 = 3.2118e-6;
    const B_P16: f64 = 8.7936;
    const A_P64: f64 = 2.3679e-6;
    const B_P64: f64 = 1.1787;
    const A_P128: f64 = 1.6134e-6;
    const B_P128: f64 = 2.1102;
}

impl Selector for OpenMpiFixedSelector {
    fn select(&self, p: usize, m: usize) -> Selection {
        let comm = p as f64;
        let msg = m as f64;
        if m < Self::SMALL_MESSAGE_SIZE {
            Selection::unsegmented(BcastAlg::Binomial)
        } else if m < Self::INTERMEDIATE_MESSAGE_SIZE {
            Selection::segmented(BcastAlg::SplitBinary, 1024)
        } else if comm < Self::A_P128 * msg + Self::B_P128 {
            Selection::segmented(BcastAlg::Chain, 128 * 1024)
        } else if p < 13 {
            Selection::segmented(BcastAlg::SplitBinary, 64 * 1024)
        } else if comm < Self::A_P64 * msg + Self::B_P64 {
            Selection::segmented(BcastAlg::Chain, 64 * 1024)
        } else if comm < Self::A_P16 * msg + Self::B_P16 {
            Selection::segmented(BcastAlg::Chain, 16 * 1024)
        } else {
            Selection::segmented(BcastAlg::Chain, 8 * 1024)
        }
    }

    fn name(&self) -> &str {
        "open-mpi-fixed"
    }
}

/// Oracle selector backed by a table of measured best algorithms (the
/// green "best" line of Fig. 5). Queries between measured message sizes
/// snap to the nearest measured size in log space; `p` must match a
/// measured process count exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredTableSelector {
    /// `(p, m) -> selection` measured winners.
    table: BTreeMap<(usize, usize), Selection>,
    seg_size: usize,
}

impl MeasuredTableSelector {
    /// Builds the oracle from measured winners (all entries use
    /// `seg_size` segments).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn new(table: BTreeMap<(usize, usize), BcastAlg>, seg_size: usize) -> Self {
        assert!(!table.is_empty(), "oracle needs at least one measurement");
        MeasuredTableSelector {
            table: table
                .into_iter()
                .map(|(k, alg)| (k, Selection::segmented(alg, seg_size)))
                .collect(),
            seg_size,
        }
    }

    /// The measured `(p, m)` grid.
    pub fn keys(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.table.keys().copied()
    }
}

/// Log-space distance between two positive sizes (counts clamped to 1
/// so `m = 0` queries stay finite).
fn log_distance(a: usize, b: usize) -> f64 {
    ((a.max(1) as f64).ln() - (b.max(1) as f64).ln()).abs()
}

impl Selector for MeasuredTableSelector {
    fn select(&self, p: usize, m: usize) -> Selection {
        if let Some(&sel) = self.table.get(&(p, m)) {
            return sel;
        }
        // Snap to the nearest measured process count (log distance),
        // then to the nearest measured message size within it — the
        // same rule in both dimensions. `min_by` keeps the *first* of
        // equally distant candidates and the table iterates ascending,
        // so ties deterministically snap to the smaller value.
        let nearest_p = self
            .table
            .keys()
            .map(|&(tp, _)| tp)
            .min_by(|&a, &b| log_distance(a, p).total_cmp(&log_distance(b, p)));
        let best = nearest_p.and_then(|tp| {
            self.table
                .range((tp, 0)..=(tp, usize::MAX))
                .min_by(|((_, m1), _), ((_, m2), _)| {
                    log_distance(*m1, m).total_cmp(&log_distance(*m2, m))
                })
        });
        match best {
            Some((_, &sel)) => sel,
            // Unreachable through the public constructor (the table is
            // never empty); kept as the documented degenerate fallback.
            None => Selection::segmented(BcastAlg::Binomial, self.seg_size),
        }
    }

    fn name(&self) -> &str {
        "best-measured"
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Selection { alg, seg_size });

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.11), (4, 1.22), (5, 1.28), (6, 1.45), (7, 1.54)])
    }

    fn uniform_params(alpha: f64, beta: f64) -> BTreeMap<BcastAlg, Hockney> {
        BcastAlg::ALL
            .iter()
            .map(|&a| (a, Hockney::new(alpha, beta)))
            .collect()
    }

    #[test]
    fn model_based_picks_argmin_of_ranking() {
        let sel = ModelBasedSelector::new(gamma(), uniform_params(1e-6, 1e-9), 8192);
        for &(p, m) in &[(16usize, 1024usize), (90, 1 << 20), (124, 8192)] {
            let ranking = sel.ranking(p, m);
            assert_eq!(sel.select(p, m).alg, ranking[0].0);
            for w in ranking.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn model_based_prefers_shallow_trees_for_small_messages() {
        let sel = ModelBasedSelector::new(gamma(), uniform_params(1e-5, 1e-9), 8192);
        let pick = sel.select(90, 256).alg;
        assert!(
            matches!(
                pick,
                BcastAlg::Binomial | BcastAlg::Binary | BcastAlg::SplitBinary
            ),
            "small messages should avoid deep chains, got {pick}"
        );
    }

    #[test]
    fn model_based_avoids_linear_for_large_messages_many_ranks() {
        let sel = ModelBasedSelector::new(gamma(), uniform_params(1e-6, 1e-9), 8192);
        let pick = sel.select(90, 4 << 20).alg;
        assert_ne!(pick, BcastAlg::Linear);
    }

    #[test]
    fn open_mpi_matches_published_thresholds() {
        let sel = OpenMpiFixedSelector;
        // < 2 KB: unsegmented binomial.
        assert_eq!(
            sel.select(90, 1024),
            Selection::unsegmented(BcastAlg::Binomial)
        );
        // 8 KB..256 KB: split-binary with 1 KB segments.
        for m in [8 * 1024, 64 * 1024, 256 * 1024] {
            assert_eq!(
                sel.select(90, m),
                Selection::segmented(BcastAlg::SplitBinary, 1024),
                "m = {m}"
            );
        }
        // >= 512 KB at 90 or 100 ranks: chain (pipeline), 8 KB segments.
        for (p, m) in [(90usize, 512 * 1024usize), (100, 4 << 20), (90, 1 << 20)] {
            let s = sel.select(p, m);
            assert_eq!(s.alg, BcastAlg::Chain, "p={p} m={m}");
            assert_eq!(s.seg_size, Some(8 * 1024), "p={p} m={m}");
        }
    }

    #[test]
    fn open_mpi_large_message_small_world_uses_bigger_segments() {
        let sel = OpenMpiFixedSelector;
        // Few processes, huge message: the P-vs-size laws pick larger
        // segment pipelines or split-binary.
        let s = sel.select(4, 4 << 20);
        assert_eq!(s.alg, BcastAlg::Chain);
        assert_eq!(s.seg_size, Some(128 * 1024));
        let s = sel.select(12, 1 << 20);
        assert_eq!(s.alg, BcastAlg::SplitBinary);
        assert_eq!(s.seg_size, Some(64 * 1024));
    }

    #[test]
    fn selection_effective_seg_size() {
        assert_eq!(
            Selection::unsegmented(BcastAlg::Binomial).effective_seg_size(500),
            500
        );
        assert_eq!(
            Selection::segmented(BcastAlg::Chain, 8192).effective_seg_size(500),
            8192
        );
        assert_eq!(
            Selection::unsegmented(BcastAlg::Linear).effective_seg_size(0),
            1
        );
    }

    #[test]
    fn oracle_returns_exact_and_nearest() {
        let mut t = BTreeMap::new();
        t.insert((90, 8192), BcastAlg::Binomial);
        t.insert((90, 1 << 20), BcastAlg::SplitBinary);
        let sel = MeasuredTableSelector::new(t, 8192);
        assert_eq!(sel.select(90, 8192).alg, BcastAlg::Binomial);
        assert_eq!(sel.select(90, 9000).alg, BcastAlg::Binomial);
        assert_eq!(sel.select(90, 900_000).alg, BcastAlg::SplitBinary);
        // Unknown p: snaps to the only measured process count.
        assert_eq!(sel.select(64, 8192).alg, BcastAlg::Binomial);
        assert_eq!(sel.select(64, 900_000).alg, BcastAlg::SplitBinary);
    }

    #[test]
    fn oracle_snaps_to_nearest_process_count() {
        let mut t = BTreeMap::new();
        t.insert((32, 8192), BcastAlg::Chain);
        t.insert((32, 1 << 20), BcastAlg::SplitBinary);
        t.insert((128, 8192), BcastAlg::Binary);
        let sel = MeasuredTableSelector::new(t, 8192);
        // p = 24 is nearest 32 in log space; the measured winner there
        // must be returned, not a hardcoded default.
        assert_eq!(sel.select(24, 8192).alg, BcastAlg::Chain);
        assert_eq!(sel.select(24, 2 << 20).alg, BcastAlg::SplitBinary);
        // p = 200 is nearest 128.
        assert_eq!(sel.select(200, 4096).alg, BcastAlg::Binary);
        // p = 64 is equidistant from 32 and 128 in log space; ties snap
        // to the smaller measured count deterministically.
        assert_eq!(sel.select(64, 8192).alg, BcastAlg::Chain);
        // The old code silently answered Binomial for every unmeasured
        // p — an algorithm this table never once measured as best.
        for &(p, m) in &[(5usize, 8192usize), (24, 8192), (200, 1 << 20)] {
            assert_ne!(sel.select(p, m).alg, BcastAlg::Binomial, "p={p} m={m}");
        }
    }

    #[test]
    fn nan_prediction_excludes_algorithm_instead_of_panicking() {
        // A poisoned Hockney fit (NaN alpha) makes one algorithm's
        // prediction NaN — the exact situation graceful degradation
        // exists to survive. select must skip it, ranking must sort it
        // last.
        let mut params = uniform_params(1e-6, 1e-9);
        params.insert(
            BcastAlg::Binomial,
            Hockney {
                alpha: f64::NAN,
                beta: 1e-9,
            },
        );
        let sel = ModelBasedSelector::new(gamma(), params, 8192);
        for &(p, m) in &[(16usize, 1024usize), (90, 1 << 20), (124, 8192)] {
            let pick = sel.select(p, m);
            assert_ne!(pick.alg, BcastAlg::Binomial, "p={p} m={m}");
            let ranking = sel.ranking(p, m);
            assert_eq!(ranking.len(), BcastAlg::ALL.len());
            let (last_alg, last_t) = ranking[ranking.len() - 1];
            assert_eq!(last_alg, BcastAlg::Binomial, "poisoned fit sorts last");
            assert!(last_t.is_nan());
            for w in ranking[..ranking.len() - 1].windows(2) {
                assert!(w[0].1 <= w[1].1, "finite prefix stays sorted");
            }
            assert_eq!(pick.alg, ranking[0].0, "select still agrees with ranking");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn all_non_finite_predictions_still_panic() {
        let params: BTreeMap<BcastAlg, Hockney> = BcastAlg::ALL
            .iter()
            .map(|&a| {
                (
                    a,
                    Hockney {
                        alpha: f64::NAN,
                        beta: 1e-9,
                    },
                )
            })
            .collect();
        let sel = ModelBasedSelector::new(gamma(), params, 8192);
        let _ = sel.select(90, 1 << 20);
    }

    #[test]
    fn segment_sweep_never_worse_than_fixed_in_model_terms() {
        let sel = ModelBasedSelector::new(gamma(), uniform_params(1e-5, 1e-9), 8192);
        let candidates = [1024, 4096, 8192, 16 * 1024, 64 * 1024];
        for &(p, m) in &[(24usize, 8192usize), (90, 1 << 20), (124, 4 << 20)] {
            let fixed = sel.ranking(p, m)[0].1;
            let swept = sel.select_with_segment_sweep(p, m, &candidates);
            let swept_t = collsel_model::derived::predict_bcast(
                swept.alg,
                p,
                m,
                swept.seg_size.expect("sweep always segments"),
                sel.gamma(),
                &sel.params()[&swept.alg],
            );
            assert!(swept_t <= fixed + 1e-15, "p={p} m={m}");
        }
    }

    #[test]
    fn segment_sweep_avoids_extremes_for_large_messages() {
        // With a startup cost per segment, tiny segments lose; with no
        // pipelining, huge segments lose. The optimum is interior.
        let sel = ModelBasedSelector::new(gamma(), uniform_params(2e-5, 1e-9), 8192);
        let candidates: Vec<usize> = (0..12).map(|i| 256 << i).collect(); // 256 B .. 512 KB
        let pick = sel.select_with_segment_sweep(64, 4 << 20, &candidates);
        let seg = pick.seg_size.unwrap();
        assert!(seg > 256, "tiny segments pay too many startups: {seg}");
        assert!(seg < 4 << 20, "one giant segment kills pipelining: {seg}");
    }

    #[test]
    fn selector_names() {
        assert_eq!(OpenMpiFixedSelector.name(), "open-mpi-fixed");
        let m = ModelBasedSelector::new(gamma(), uniform_params(1e-6, 1e-9), 8192);
        assert_eq!(m.name(), "model-based");
    }
}
