//! The **fault-tolerant decision server**: a long-running front end
//! over epoch-versioned [`CompiledCollectiveSelector`] generations with
//! hot swap, a per-request virtual-time watchdog, a health gate for
//! online refits, and a crash-only recovery journal.
//!
//! The paper's selection function ultimately lives inside an MPI
//! library that must answer every collective call site for weeks — it
//! cannot restart to pick up a refit, cannot serve a torn table during
//! one, and must keep answering (with *attributed* degradation) when a
//! refit goes bad or the serving path itself browns out. This module is
//! that shape:
//!
//! * **Generations** — each installed fit is an immutable [`Generation`]
//!   (compiled tables + the decision tables they came from + the
//!   graceful selector that produced them). The current generation
//!   lives in an [`EpochSwap`]: readers pin it wait-free, swaps are
//!   atomic, and a superseded generation is reclaimed only after its
//!   last reader drains.
//! * **Watchdog** — every request is charged a deterministic
//!   virtual-time cost: the configured base lookup cost scaled by the
//!   [`FaultPlan`]'s link/CPU factors at the server's virtual clock
//!   (the plan models serving-node brown-outs and stragglers, e.g. a
//!   refit thrashing the table cache mid-install). A request whose cost
//!   exceeds the [`RetryPolicy`] budget retries on the **previous**
//!   generation (resident and warm, charged the uninflated base cost)
//!   under the backoff-multiplied budget, and falls back to the fixed
//!   rules when that fails too. Every fallback carries its cause as a
//!   [`ServeSource`] variant and bumps the matching counter — no
//!   fallback without a recorded cause.
//! * **Health gate** — [`submit_refit`](DecisionServer::submit_refit)
//!   rejects a candidate whose fits include any [`FitValidity`] failure
//!   and shadow-scores the rest: on a canary query grid, every decision
//!   where the candidate disagrees with the live generation is priced
//!   with the *live* generation's models; a candidate predicted to
//!   regress beyond the configured tolerance on more than the allowed
//!   number of canaries is rejected. The live generation keeps serving
//!   either way — a bad refit can never flip decisions for the worse.
//! * **Journal** — every installed generation is journalled (decision
//!   tables + version) with a temp-file + rename write, and
//!   [`DecisionServer::recover`] replays the last-good generation after
//!   a crash. Recovery is *crash-only*: there is no clean-shutdown
//!   path to get wrong.

use crate::multi::{
    fixed_selection, CollDecisionTable, CollSelection, CompiledCollectiveSelector,
    GracefulCollectiveSelector,
};
use collsel_coll::{Alg, Collective};
use collsel_estim::RetryPolicy;
use collsel_model::FitValidity;
use collsel_netsim::{FaultPlan, SimSpan, SimTime};
use collsel_support::epoch::EpochSwap;
use collsel_support::{FromJson, Json, ToJson};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of a [`DecisionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-request watchdog: budget for the current generation,
    /// backoff multiplier for the previous-generation retry,
    /// `max_attempts < 2` disables the retry tier.
    pub policy: RetryPolicy,
    /// Virtual-time cost of one healthy table lookup.
    pub base_cost: SimSpan,
    /// Fault schedule applied to the serving path (node 0 hosts the
    /// server, link 0–1 is its table-fetch path): brown-outs and
    /// degraded links inflate the lookup cost inside their windows,
    /// stragglers inflate it permanently. [`FaultPlan::none`] keeps
    /// every lookup at `base_cost`.
    pub faults: FaultPlan,
    /// Communicator-size grid used to compile generations.
    pub comm_sizes: Vec<usize>,
    /// Message-size grid used to compile generations.
    pub msg_sizes: Vec<usize>,
    /// Canary queries for the health gate; empty derives the full
    /// `collectives × comm_sizes × msg_sizes` grid.
    pub canaries: Vec<(Collective, usize, usize)>,
    /// Allowed relative regression per canary before it counts against
    /// the candidate (0.25 = 25 % predicted slowdown).
    pub tolerance: f64,
    /// Number of regressing canaries a candidate may have and still be
    /// installed.
    pub max_regressions: usize,
    /// Journal file for crash-only recovery; `None` disables
    /// journalling.
    pub journal: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            policy: RetryPolicy::for_serving(),
            base_cost: SimSpan::from_nanos(1_000),
            faults: FaultPlan::none(),
            comm_sizes: vec![2, 4, 8, 16, 32, 64, 128],
            msg_sizes: collsel_estim::log_spaced_sizes(1024, 8 * 1024 * 1024, 14),
            canaries: Vec::new(),
            tolerance: 0.25,
            max_regressions: 0,
            journal: None,
        }
    }
}

impl ServerConfig {
    /// The canary grid the health gate scores on (the explicit list, or
    /// the full compile grid across all collectives).
    fn canary_points(&self) -> Vec<(Collective, usize, usize)> {
        if !self.canaries.is_empty() {
            return self.canaries.clone();
        }
        let mut points = Vec::new();
        for c in Collective::ALL {
            for &p in &self.comm_sizes {
                for &m in &self.msg_sizes {
                    points.push((c, p, m));
                }
            }
        }
        points
    }
}

/// One immutable installed generation.
#[derive(Debug)]
struct Generation {
    /// Server-assigned version, monotonically increasing from 1.
    version: u64,
    /// Human-readable origin ("boot", "refit 3", "journal").
    label: String,
    /// Cluster the generation was tuned for.
    cluster: String,
    /// The compiled serving tables.
    tables: Arc<CompiledCollectiveSelector>,
    /// The decision tables the CSR was compiled from (journal payload).
    source: Arc<Vec<CollDecisionTable>>,
    /// The graceful selector that produced the tables; prices the
    /// health gate's shadow scores. `None` after journal recovery.
    referee: Option<Arc<GracefulCollectiveSelector>>,
    /// The immediately preceding generation's version and tables — the
    /// watchdog's retry target. Only one step of history is kept.
    prev: Option<(u64, Arc<CompiledCollectiveSelector>)>,
}

/// Which path answered a query — and, for every fallback, why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServeSource {
    /// The pinned (current) generation answered within budget.
    Current,
    /// The current generation exceeded the watchdog budget; the
    /// previous generation answered within the backoff budget.
    PreviousAfterTimeout,
    /// Current and previous generations both exceeded their budgets
    /// (or no previous generation exists); the fixed rules answered.
    RulesAfterTimeout,
    /// The queried collective is not compiled into the current
    /// generation; the fixed rules answered.
    RulesUncovered,
}

collsel_support::json_enum!(ServeSource {
    Current,
    PreviousAfterTimeout,
    RulesAfterTimeout,
    RulesUncovered,
});

impl ServeSource {
    /// Whether this answer came from anywhere but the current
    /// generation.
    pub fn is_fallback(&self) -> bool {
        !matches!(self, ServeSource::Current)
    }
}

/// One served answer: the selection, the generation that produced it
/// (0 for the fixed rules), and the attributed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedAnswer {
    /// The selected algorithm and segment size.
    pub selection: CollSelection,
    /// Version of the generation that answered; 0 when the fixed rules
    /// answered.
    pub epoch: u64,
    /// Which path answered, with the fallback cause when applicable.
    pub source: ServeSource,
}

/// Outcome of [`DecisionServer::submit_refit`].
#[derive(Debug)]
pub enum RefitOutcome {
    /// The candidate passed the health gate and now serves.
    Installed {
        /// The new generation's version.
        epoch: u64,
        /// The installed tables (for external verification, e.g. the
        /// soak harness's per-generation answer oracle).
        tables: Arc<CompiledCollectiveSelector>,
    },
    /// Rejected: at least one fit failed validation.
    RejectedInvalidFit {
        /// The algorithms whose fits failed, with their verdicts.
        invalid: Vec<(Alg, FitValidity)>,
    },
    /// Rejected: the shadow score predicts regressions beyond the
    /// configured tolerance on too many canaries.
    RejectedRegression {
        /// Canaries predicted to regress beyond tolerance.
        regressions: usize,
        /// Total canaries scored.
        canaries: usize,
    },
}

impl RefitOutcome {
    /// Whether the candidate was installed.
    pub fn is_installed(&self) -> bool {
        matches!(self, RefitOutcome::Installed { .. })
    }
}

/// Counter snapshot of a [`DecisionServer`]. The four `served_*`
/// fields partition every answer by its [`ServeSource`], so each
/// fallback is attributed to exactly one recorded cause.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Answers served by the current generation.
    pub served_current: u64,
    /// Fallbacks to the previous generation after a watchdog timeout.
    pub served_previous_timeout: u64,
    /// Fallbacks to the fixed rules after timeouts exhausted the retry
    /// tier.
    pub served_rules_timeout: u64,
    /// Fallbacks to the fixed rules for uncompiled collectives.
    pub served_rules_uncovered: u64,
    /// Completed hot swaps (installed refits; boot not counted).
    pub swaps: u64,
    /// Refits rejected for fit-validity failures.
    pub rejected_invalid: u64,
    /// Refits rejected by the shadow-score regression gate.
    pub rejected_regression: u64,
    /// Successful journal writes.
    pub journal_writes: u64,
    /// Failed journal writes (serving continues; recovery degrades).
    pub journal_errors: u64,
    /// Mean wall-clock swap latency in nanoseconds (0 before the first
    /// swap).
    pub swap_nanos_mean: f64,
    /// Worst wall-clock swap latency in nanoseconds.
    pub swap_nanos_max: u64,
}

collsel_support::json_struct!(ServerStats {
    served_current,
    served_previous_timeout,
    served_rules_timeout,
    served_rules_uncovered,
    swaps,
    rejected_invalid,
    rejected_regression,
    journal_writes,
    journal_errors,
    swap_nanos_mean,
    swap_nanos_max
});

impl ServerStats {
    /// Total answers served.
    pub fn queries(&self) -> u64 {
        self.served_current
            + self.served_previous_timeout
            + self.served_rules_timeout
            + self.served_rules_uncovered
    }

    /// Answers not served by the current generation.
    pub fn fallbacks(&self) -> u64 {
        self.served_previous_timeout + self.served_rules_timeout + self.served_rules_uncovered
    }

    /// Fraction of answers that fell back (0 when idle).
    pub fn fallback_rate(&self) -> f64 {
        let q = self.queries();
        if q == 0 {
            0.0
        } else {
            self.fallbacks() as f64 / q as f64
        }
    }
}

/// The journal record: everything needed to rebuild the last-good
/// generation after a crash.
struct JournalRecord {
    version: u64,
    label: String,
    cluster: String,
    tables: Vec<CollDecisionTable>,
}

collsel_support::json_struct!(JournalRecord {
    version,
    label,
    cluster,
    tables
});

/// The long-running decision server (see the module docs).
///
/// All methods take `&self`; the server is `Sync` and meant to be
/// shared across however many serving threads the host runs.
#[derive(Debug)]
pub struct DecisionServer {
    config: ServerConfig,
    generations: EpochSwap<Generation>,
    /// Serialises refits/installs (readers never take it).
    install_lock: Mutex<()>,
    /// Virtual serving clock in nanoseconds; advanced by each request's
    /// charged cost. The fault schedule is evaluated against it.
    clock: AtomicU64,
    served_current: AtomicU64,
    served_previous_timeout: AtomicU64,
    served_rules_timeout: AtomicU64,
    served_rules_uncovered: AtomicU64,
    swaps: AtomicU64,
    rejected_invalid: AtomicU64,
    rejected_regression: AtomicU64,
    journal_writes: AtomicU64,
    journal_errors: AtomicU64,
    swap_nanos_total: AtomicU64,
    swap_nanos_max: AtomicU64,
}

impl DecisionServer {
    /// Boots the server with generation 1 compiled from `initial` (a
    /// graceful selector, typically `TuneReport::degraded_multi_selector`
    /// output) and journals it if a journal path is configured.
    pub fn new(initial: &GracefulCollectiveSelector, cluster: &str, config: ServerConfig) -> Self {
        let (tables, source) = Self::compile_generation(initial, &config);
        let generation = Generation {
            version: 1,
            label: "boot".to_string(),
            cluster: cluster.to_string(),
            tables,
            source,
            referee: Some(Arc::new(initial.clone())),
            prev: None,
        };
        let server = Self::with_boot_generation(generation, config);
        server.journal_current();
        server
    }

    /// Rebuilds the server from the journalled last-good generation.
    ///
    /// The recovered generation serves exactly the journalled decision
    /// tables under its original version; it has no referee, so the
    /// first refit after recovery skips the shadow score (fit validity
    /// is still enforced) and restores one.
    pub fn recover(config: ServerConfig) -> Result<DecisionServer, String> {
        let path = config
            .journal
            .as_ref()
            .ok_or_else(|| "recovery needs a configured journal path".to_string())?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        let json = Json::parse(&text)
            .map_err(|e| format!("journal {} is corrupt: {e}", path.display()))?;
        let record = JournalRecord::from_json(&json)
            .map_err(|e| format!("journal {} is corrupt: {e}", path.display()))?;
        if record.tables.is_empty() {
            return Err(format!("journal {} holds no tables", path.display()));
        }
        let tables = Arc::new(CompiledCollectiveSelector::from_tables(
            &record.tables,
            "recovered",
        ));
        let generation = Generation {
            version: record.version,
            label: format!("journal({})", record.label),
            cluster: record.cluster,
            tables,
            source: Arc::new(record.tables),
            referee: None,
            prev: None,
        };
        Ok(Self::with_boot_generation(generation, config))
    }

    fn with_boot_generation(generation: Generation, config: ServerConfig) -> Self {
        DecisionServer {
            config,
            generations: EpochSwap::new(generation),
            install_lock: Mutex::new(()),
            clock: AtomicU64::new(0),
            served_current: AtomicU64::new(0),
            served_previous_timeout: AtomicU64::new(0),
            served_rules_timeout: AtomicU64::new(0),
            served_rules_uncovered: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            rejected_regression: AtomicU64::new(0),
            journal_writes: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
            swap_nanos_total: AtomicU64::new(0),
            swap_nanos_max: AtomicU64::new(0),
        }
    }

    fn compile_generation(
        selector: &GracefulCollectiveSelector,
        config: &ServerConfig,
    ) -> (Arc<CompiledCollectiveSelector>, Arc<Vec<CollDecisionTable>>) {
        let source: Vec<CollDecisionTable> = Collective::ALL
            .into_iter()
            .map(|c| {
                CollDecisionTable::generate(selector, c, &config.comm_sizes, &config.msg_sizes)
            })
            .collect();
        let tables = CompiledCollectiveSelector::from_tables(&source, "generation");
        (Arc::new(tables), Arc::new(source))
    }

    /// The current generation's version (1 at boot, +1 per installed
    /// refit; a recovered server resumes from the journalled version).
    pub fn version(&self) -> u64 {
        self.generations.read(|g| g.version)
    }

    /// The cluster name the current generation was tuned for.
    pub fn cluster(&self) -> String {
        self.generations.read(|g| g.cluster.clone())
    }

    /// The current generation's compiled tables (an answer oracle for
    /// external verification).
    pub fn current_tables(&self) -> Arc<CompiledCollectiveSelector> {
        self.generations.read(|g| Arc::clone(&g.tables))
    }

    /// The server's virtual clock.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.load(Ordering::Relaxed))
    }

    /// Answers one query under the watchdog (see the module docs for
    /// the cost model). Never panics and never blocks on a swap.
    pub fn decide(&self, collective: Collective, p: usize, m: usize) -> ServedAnswer {
        let gen = self.generations.pin();
        // Deterministic virtual cost of serving from the current
        // generation right now.
        let now = SimTime::from_nanos(self.clock.load(Ordering::Relaxed));
        let factor = self.config.faults.link_factor(0, 1, now) * self.config.faults.cpu_factor(0);
        let cost_ns = (self.config.base_cost.as_nanos() as f64 * factor).round() as u64;
        self.clock.fetch_add(cost_ns, Ordering::Relaxed);
        if !gen.tables.covers(collective) {
            self.served_rules_uncovered.fetch_add(1, Ordering::Relaxed);
            return ServedAnswer {
                selection: fixed_selection(collective, p, m),
                epoch: 0,
                source: ServeSource::RulesUncovered,
            };
        }
        let within_budget = match self.config.policy.budget {
            None => true,
            Some(b) => cost_ns <= b.as_nanos(),
        };
        if within_budget {
            self.served_current.fetch_add(1, Ordering::Relaxed);
            return ServedAnswer {
                selection: gen.tables.lookup(collective, p, m),
                epoch: gen.version,
                source: ServeSource::Current,
            };
        }
        // Watchdog tripped: back off onto the previous generation. It
        // has been resident and serving for a while, so it is charged
        // the uninflated base cost against the backoff-multiplied
        // budget (the fault window models pressure on the freshly
        // installed tables, not on long-resident ones).
        if self.config.policy.max_attempts >= 2 {
            if let Some((prev_version, prev_tables)) = &gen.prev {
                if prev_tables.covers(collective) {
                    let retry_budget = self.config.policy.budget.map(|b| {
                        b.as_nanos()
                            .saturating_mul(self.config.policy.backoff.max(1))
                    });
                    let retry_cost = self.config.base_cost.as_nanos();
                    if retry_budget.is_none_or(|b| retry_cost <= b) {
                        self.served_previous_timeout.fetch_add(1, Ordering::Relaxed);
                        return ServedAnswer {
                            selection: prev_tables.lookup(collective, p, m),
                            epoch: *prev_version,
                            source: ServeSource::PreviousAfterTimeout,
                        };
                    }
                }
            }
        }
        self.served_rules_timeout.fetch_add(1, Ordering::Relaxed);
        ServedAnswer {
            selection: fixed_selection(collective, p, m),
            epoch: 0,
            source: ServeSource::RulesAfterTimeout,
        }
    }

    /// Health-gates `candidate` against the live generation and
    /// installs it if it passes. The live generation keeps serving
    /// throughout (and keeps serving on rejection).
    ///
    /// The gate, in order:
    /// 1. **Fit validity** — any non-`Valid` verdict among the
    ///    candidate's judged fits rejects it outright.
    /// 2. **Shadow score** — on every canary query where the candidate
    ///    picks a different algorithm than the live generation, both
    ///    picks are priced with the live generation's models; a
    ///    predicted slowdown beyond `tolerance` counts against the
    ///    candidate, and more than `max_regressions` such canaries
    ///    reject it. (Skipped when the live generation has no referee,
    ///    i.e. right after journal recovery.)
    pub fn submit_refit(
        &self,
        candidate: &GracefulCollectiveSelector,
        label: &str,
    ) -> RefitOutcome {
        // Gate 1: fit validity.
        let invalid: Vec<(Alg, FitValidity)> = candidate
            .validity()
            .iter()
            .filter(|(_, v)| !v.is_valid())
            .map(|(&a, &v)| (a, v))
            .collect();
        if !invalid.is_empty() {
            self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return RefitOutcome::RejectedInvalidFit { invalid };
        }
        // Gate 2: shadow score against the live referee.
        let referee = self.generations.read(|g| g.referee.clone());
        if let Some(referee) = referee {
            let canaries = self.config.canary_points();
            let mut regressions = 0usize;
            for &(c, p, m) in &canaries {
                let cand_pick = candidate.decide_for(c, p, m).selection.alg;
                let live_pick = referee.decide_for(c, p, m).selection.alg;
                if cand_pick == live_pick {
                    continue;
                }
                let (Some(t_cand), Some(t_live)) = (
                    referee.predicted_time(cand_pick, p, m),
                    referee.predicted_time(live_pick, p, m),
                ) else {
                    // The live models cannot price one of the picks
                    // (e.g. an algorithm the live fit skipped): the
                    // disagreement is unscoreable, not a regression.
                    continue;
                };
                if t_cand > t_live * (1.0 + self.config.tolerance) {
                    regressions += 1;
                }
            }
            if regressions > self.config.max_regressions {
                self.rejected_regression.fetch_add(1, Ordering::Relaxed);
                return RefitOutcome::RejectedRegression {
                    regressions,
                    canaries: canaries.len(),
                };
            }
        }
        // Passed: compile and install.
        let (tables, source) = Self::compile_generation(candidate, &self.config);
        let installed = Arc::clone(&tables);
        let epoch = {
            let _guard = self.install_lock.lock().expect("install lock");
            let (version, cluster, prev) = self.generations.read(|g| {
                (
                    g.version + 1,
                    g.cluster.clone(),
                    Some((g.version, Arc::clone(&g.tables))),
                )
            });
            let generation = Generation {
                version,
                label: label.to_string(),
                cluster,
                tables,
                source,
                referee: Some(Arc::new(candidate.clone())),
                prev,
            };
            let started = std::time::Instant::now();
            self.generations.swap(generation);
            let nanos = started.elapsed().as_nanos() as u64;
            self.swap_nanos_total.fetch_add(nanos, Ordering::Relaxed);
            self.swap_nanos_max.fetch_max(nanos, Ordering::Relaxed);
            self.swaps.fetch_add(1, Ordering::Relaxed);
            version
        };
        self.journal_current();
        RefitOutcome::Installed {
            epoch,
            tables: installed,
        }
    }

    /// Journals the current generation (temp file + rename, so a crash
    /// mid-write can never corrupt the previous journal). Failures are
    /// counted, not propagated: a lost journal degrades recovery, not
    /// serving.
    fn journal_current(&self) {
        let Some(path) = &self.config.journal else {
            return;
        };
        let record = self.generations.read(|g| JournalRecord {
            version: g.version,
            label: g.label.clone(),
            cluster: g.cluster.clone(),
            tables: (*g.source).clone(),
        });
        let text = record.to_json().to_string_pretty();
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "journal.json".to_string())
        ));
        let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
        match result {
            Ok(()) => {
                self.journal_writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let swaps = self.swaps.load(Ordering::Relaxed);
        let total = self.swap_nanos_total.load(Ordering::Relaxed);
        ServerStats {
            served_current: self.served_current.load(Ordering::Relaxed),
            served_previous_timeout: self.served_previous_timeout.load(Ordering::Relaxed),
            served_rules_timeout: self.served_rules_timeout.load(Ordering::Relaxed),
            served_rules_uncovered: self.served_rules_uncovered.load(Ordering::Relaxed),
            swaps,
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            rejected_regression: self.rejected_regression.load(Ordering::Relaxed),
            journal_writes: self.journal_writes.load(Ordering::Relaxed),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
            swap_nanos_mean: if swaps == 0 {
                0.0
            } else {
                total as f64 / swaps as f64
            },
            swap_nanos_max: self.swap_nanos_max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_model::{GammaTable, Hockney};
    use collsel_netsim::Brownout;
    use std::collections::BTreeMap;

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.11), (4, 1.22), (5, 1.28), (6, 1.45), (7, 1.54)])
    }

    /// A graceful selector whose per-algorithm betas follow `order`:
    /// the i-th algorithm of each collective gets `beta * (1 + i)` in
    /// the given enumeration order, so different orders prefer
    /// different algorithms.
    fn selector_with(order_rev: bool) -> GracefulCollectiveSelector {
        let mut params: BTreeMap<Alg, Hockney> = BTreeMap::new();
        for c in Collective::ALL {
            let algs = c.algorithms();
            for (i, &a) in algs.iter().enumerate() {
                let rank = if order_rev { algs.len() - 1 - i } else { i };
                params.insert(a, Hockney::new(1e-6, 1e-9 * (1.0 + rank as f64)));
            }
        }
        let validity = params.keys().map(|&a| (a, FitValidity::Valid)).collect();
        GracefulCollectiveSelector::new(gamma(), params, validity, 8192)
    }

    fn small_config() -> ServerConfig {
        ServerConfig {
            comm_sizes: vec![4, 16, 64],
            msg_sizes: vec![1024, 64 * 1024, 1 << 20],
            ..ServerConfig::default()
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!(
            "collsel-server-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    #[test]
    fn boot_generation_serves_current() {
        let server = DecisionServer::new(&selector_with(false), "test", small_config());
        assert_eq!(server.version(), 1);
        let tables = server.current_tables();
        let a = server.decide(Collective::Reduce, 16, 64 * 1024);
        assert_eq!(a.source, ServeSource::Current);
        assert_eq!(a.epoch, 1);
        assert_eq!(
            a.selection,
            tables.lookup(Collective::Reduce, 16, 64 * 1024)
        );
    }

    #[test]
    fn healthy_refit_installs_and_swaps() {
        let server = DecisionServer::new(&selector_with(false), "test", small_config());
        // A "refit" with slightly perturbed but order-preserving fits.
        let outcome = server.submit_refit(&selector_with(false), "refit 1");
        assert!(outcome.is_installed(), "{outcome:?}");
        assert_eq!(server.version(), 2);
        let stats = server.stats();
        assert_eq!(stats.swaps, 1);
        assert!(stats.swap_nanos_max > 0);
        let a = server.decide(Collective::Bcast, 16, 1024);
        assert_eq!(a.epoch, 2);
    }

    #[test]
    fn health_gate_rejects_invalid_fits() {
        let server = DecisionServer::new(&selector_with(false), "test", small_config());
        let mut params: BTreeMap<Alg, Hockney> = BTreeMap::new();
        let mut validity: BTreeMap<Alg, FitValidity> = BTreeMap::new();
        for c in Collective::ALL {
            for &a in c.algorithms() {
                params.insert(a, Hockney::new(1e-6, 1e-9));
                validity.insert(a, FitValidity::Valid);
            }
        }
        // Poison one fit's verdict.
        let poisoned_alg = *validity.keys().next().unwrap();
        validity.insert(poisoned_alg, FitValidity::NonFinite);
        let poisoned = GracefulCollectiveSelector::new(gamma(), params, validity, 8192);
        match server.submit_refit(&poisoned, "poisoned") {
            RefitOutcome::RejectedInvalidFit { invalid } => {
                assert_eq!(invalid.len(), 1);
                assert_eq!(invalid[0].0, poisoned_alg);
            }
            other => panic!("expected invalid-fit rejection, got {other:?}"),
        }
        assert_eq!(server.version(), 1, "live generation keeps serving");
        assert_eq!(server.stats().rejected_invalid, 1);
    }

    #[test]
    fn health_gate_rejects_decision_flipping_regression() {
        let server = DecisionServer::new(&selector_with(false), "test", small_config());
        // Valid-looking fits whose betas are reversed: the candidate
        // prefers exactly the algorithms the live models price worst.
        match server.submit_refit(&selector_with(true), "flipped") {
            RefitOutcome::RejectedRegression {
                regressions,
                canaries,
            } => {
                assert!(regressions > 0, "flipped fits must regress");
                assert!(canaries >= regressions);
            }
            other => panic!("expected regression rejection, got {other:?}"),
        }
        assert_eq!(server.version(), 1);
        assert_eq!(server.stats().rejected_regression, 1);
    }

    #[test]
    fn watchdog_backs_off_onto_previous_generation() {
        // Brown-out on the serving node from t=0 for 1 ms, 50× slowdown:
        // with a 1 µs base cost and a 10 µs budget, lookups inside the
        // window cost 50 µs — over budget — and must fall back.
        let mut config = small_config();
        config.faults = FaultPlan::none()
            .try_with_brownout(Brownout::try_new(0, 0.0, 0.001, 50.0).unwrap())
            .unwrap();
        let server = DecisionServer::new(&selector_with(false), "test", config);
        // No previous generation yet: rules fallback, cause recorded.
        let a = server.decide(Collective::Reduce, 16, 1 << 20);
        assert_eq!(a.source, ServeSource::RulesAfterTimeout);
        assert_eq!(a.epoch, 0);
        assert_eq!(
            a.selection,
            fixed_selection(Collective::Reduce, 16, 1 << 20)
        );
        // Install generation 2; the previous generation (1) now backs
        // the watchdog.
        let gen1 = server.current_tables();
        assert!(server
            .submit_refit(&selector_with(false), "refit")
            .is_installed());
        let a = server.decide(Collective::Reduce, 16, 1 << 20);
        assert_eq!(a.source, ServeSource::PreviousAfterTimeout);
        assert_eq!(a.epoch, 1);
        assert_eq!(a.selection, gen1.lookup(Collective::Reduce, 16, 1 << 20));
        // Once the virtual clock leaves the window, service returns to
        // the current generation.
        while server.now() < SimTime::from_nanos(1_000_000) {
            server.decide(Collective::Bcast, 4, 1024);
        }
        let a = server.decide(Collective::Reduce, 16, 1 << 20);
        assert_eq!(a.source, ServeSource::Current);
        assert_eq!(a.epoch, 2);
        let stats = server.stats();
        assert!(stats.served_previous_timeout > 0);
        assert!(stats.served_rules_timeout > 0);
        assert_eq!(
            stats.fallbacks(),
            stats.served_previous_timeout + stats.served_rules_timeout,
            "every fallback attributed"
        );
    }

    #[test]
    fn journal_round_trips_through_recovery() {
        let path = temp_journal("recover");
        let _ = std::fs::remove_file(&path);
        let mut config = small_config();
        config.journal = Some(path.clone());
        let server = DecisionServer::new(&selector_with(false), "grisou", config.clone());
        assert!(server
            .submit_refit(&selector_with(false), "refit 1")
            .is_installed());
        assert_eq!(server.stats().journal_writes, 2, "boot + refit journalled");
        let tables = server.current_tables();
        let version = server.version();
        drop(server);
        // Crash-only: no shutdown handshake, just re-read the journal.
        let recovered = DecisionServer::recover(config).expect("recovery");
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.cluster(), "grisou");
        for c in Collective::ALL {
            for (p, m) in [
                (4usize, 1024usize),
                (16, 64 * 1024),
                (64, 1 << 20),
                (90, 123),
            ] {
                let a = recovered.decide(c, p, m);
                assert_eq!(a.selection, tables.lookup(c, p, m), "{c} p={p} m={m}");
                assert_eq!(a.epoch, version);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_without_journal_is_a_typed_error() {
        assert!(DecisionServer::recover(small_config()).is_err());
        let mut config = small_config();
        config.journal = Some(temp_journal("missing"));
        let _ = std::fs::remove_file(config.journal.as_ref().unwrap());
        assert!(DecisionServer::recover(config).is_err());
    }

    #[test]
    fn refit_after_recovery_restores_the_referee() {
        let path = temp_journal("refit-after");
        let _ = std::fs::remove_file(&path);
        let mut config = small_config();
        config.journal = Some(path.clone());
        let server = DecisionServer::new(&selector_with(false), "test", config.clone());
        drop(server);
        let recovered = DecisionServer::recover(config).expect("recovery");
        // No referee: the shadow score is skipped, validity still holds.
        assert!(recovered
            .submit_refit(&selector_with(true), "post-recovery")
            .is_installed());
        // The referee is back: a flipped candidate is rejected again.
        assert!(!recovered
            .submit_refit(&selector_with(false), "flip-back")
            .is_installed());
        let _ = std::fs::remove_file(&path);
    }
}
