//! # collsel-select
//!
//! Runtime **decision functions** for MPI broadcast algorithm selection
//! and the analysis tooling that compares them — the paper's Sect. 5.3.
//!
//! * [`ModelBasedSelector`] — the paper's contribution: argmin over the
//!   implementation-derived models with per-algorithm parameters;
//! * [`OpenMpiFixedSelector`] — faithful port of the native Open MPI 3.1
//!   fixed decision function (the baseline whose mis-selections reach
//!   7297% degradation in the paper);
//! * [`MeasuredTableSelector`] — the measured-best oracle;
//! * [`analysis`] — Table 3-style degradation accounting;
//! * [`service`] — production decision serving: [`CompiledSelector`]
//!   (allocation-free compiled lookup) and [`DecisionService`]
//!   (thread-safe cached front end with batch queries);
//! * [`multi`] — the same serving stack widened to all seven
//!   collectives, keyed by `(collective, P, m)`:
//!   [`CollectiveModelSelector`], [`GracefulCollectiveSelector`],
//!   [`CompiledCollectiveSelector`], [`CollectiveDecisionService`];
//! * [`server`] — the fault-tolerant decision server:
//!   [`DecisionServer`] with epoch-versioned hot swap, a per-request
//!   watchdog, a health-gated online refit path, and a crash-only
//!   recovery journal.
//!
//! ```
//! use collsel_select::{OpenMpiFixedSelector, Selector};
//!
//! let sel = OpenMpiFixedSelector;
//! let s = sel.select(90, 1 << 20); // 1 MB on 90 processes
//! assert_eq!(s.alg.name(), "chain"); // the native choice the paper criticises
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod graceful;
pub mod multi;
pub mod rules;
mod selector;
pub mod server;
pub mod service;

pub use graceful::{Decision, DecisionSource, FallbackReason, GracefulSelector};
pub use multi::{
    fixed_selection, to_ompi_rules_multi, CollDecision, CollDecisionTable, CollSelection,
    CollectiveDecisionService, CollectiveModelSelector, CollectiveSelector,
    CompiledCollectiveSelector, GracefulCollectiveSelector, OpenMpiCollectiveSelector,
};
pub use selector::{
    MeasuredTableSelector, ModelBasedSelector, OpenMpiFixedSelector, Selection, Selector,
    TraditionalModelSelector,
};
pub use server::{
    DecisionServer, RefitOutcome, ServeSource, ServedAnswer, ServerConfig, ServerStats,
};
pub use service::{CompiledSelector, DecisionService, ServiceStats};
