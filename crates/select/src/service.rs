//! Production-shaped **decision serving**: compile a [`Selector`] into a
//! flat, allocation-free lookup structure, share it across threads, and
//! cache hot queries.
//!
//! The paper's end product is a *runtime decision function* queried at
//! every `MPI_Bcast` call site, so the query path must cost as little
//! as the hardware allows. Re-evaluating six analytical models (γ
//! lookups, powers, a sort) per call is the tuning-time shape of the
//! problem, not the serving-time shape. This module provides the
//! serving-time shape:
//!
//! * [`CompiledSelector`] — any selector materialised over a grid into
//!   the same rule structure as [`DecisionTable`], flattened into four
//!   parallel arrays and answered with two binary searches: O(log n),
//!   no allocation, no per-query `Vec` or sort. Off-grid queries snap
//!   exactly like [`DecisionTable::lookup`] (floor block / floor
//!   threshold, clamped to the first entry below the grid) — the
//!   differential suite in `tests/service.rs` enforces the equivalence
//!   for every selector type.
//! * [`DecisionService`] — a thread-safe front end (`&self` queries,
//!   shareable across [`Pool`] workers) wrapping a compiled table, a
//!   live selector, or a [`GracefulSelector`], with an optional
//!   seeded-eviction exact-query cache and hit/miss/fallback counters
//!   for reports.
//! * [`DecisionService::decide_batch`] — fan a query stream across the
//!   pool with the same bit-identical-at-any-thread-count guarantee as
//!   the tuning campaigns: selection is pure and the cache is
//!   transparent, so only wall-clock depends on the thread count.

use crate::graceful::GracefulSelector;
use crate::rules::DecisionTable;
use crate::selector::{Selection, Selector};
use collsel_support::epoch::EpochSwap;
use collsel_support::pool::Pool;
use collsel_support::rng::splitmix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A [`Selector`] compiled to a flat decision table with allocation-free
/// O(log n) lookup.
///
/// The structure is [`DecisionTable`]'s rule blocks flattened into
/// parallel arrays: `comm_sizes[b]` is block `b`'s communicator size,
/// its rules occupy `thresholds[block_starts[b]..block_starts[b + 1]]`
/// (message-size thresholds, ascending) with the decided selection at
/// the same index of `selections`. A lookup is one binary search over
/// the comm blocks and one over the block's thresholds.
///
/// # Snapping semantics (provably equal to [`DecisionTable::lookup`])
///
/// * `p` below the smallest block → the smallest block (clamp);
///   otherwise the highest block not above `p` (floor).
/// * `m` below the block's first threshold → the first rule (clamp;
///   tables from [`DecisionTable::generate`] start every block at
///   threshold 0, so this arm only fires for hand-built tables);
///   otherwise the highest threshold not above `m` (floor).
///
/// Both follow from `partition_point(x <= q)`: the partition index is
/// one past the floor entry, and `saturating_sub(1)` turns "no entry
/// below the query" into the clamp-to-first rule that
/// `DecisionTable::lookup` implements with `rfind(..).or_else(first)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSelector {
    name: String,
    comm_sizes: Vec<usize>,
    block_starts: Vec<usize>,
    thresholds: Vec<usize>,
    selections: Vec<Selection>,
}

impl CompiledSelector {
    /// Materialises `selector` over the given grids (via
    /// [`DecisionTable::generate`], so identical selections on
    /// consecutive message sizes merge into one rule) and compiles the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if either grid is empty or unsorted (the
    /// [`DecisionTable::generate`] contract).
    pub fn compile(selector: &dyn Selector, comm_sizes: &[usize], msg_sizes: &[usize]) -> Self {
        let table = DecisionTable::generate(selector, comm_sizes, msg_sizes);
        Self::from_table(&table, &format!("compiled({})", selector.name()))
    }

    /// Flattens an existing decision table.
    ///
    /// # Panics
    ///
    /// Panics if the table has no blocks, a block has no rules, or the
    /// blocks/thresholds are not strictly ascending (lookup's binary
    /// searches require sortedness).
    pub fn from_table(table: &DecisionTable, name: &str) -> Self {
        assert!(
            !table.comms.is_empty(),
            "cannot compile an empty decision table"
        );
        let mut comm_sizes = Vec::with_capacity(table.comms.len());
        let mut block_starts = Vec::with_capacity(table.comms.len() + 1);
        let mut thresholds = Vec::new();
        let mut selections = Vec::new();
        block_starts.push(0);
        for block in &table.comms {
            assert!(
                !block.rules.is_empty(),
                "comm block {} has no rules",
                block.comm_size
            );
            assert!(
                comm_sizes.last().is_none_or(|&c| c < block.comm_size),
                "comm blocks must be strictly ascending"
            );
            assert!(
                block
                    .rules
                    .windows(2)
                    .all(|w| w[0].min_msg_size < w[1].min_msg_size),
                "rule thresholds must be strictly ascending"
            );
            comm_sizes.push(block.comm_size);
            for rule in &block.rules {
                thresholds.push(rule.min_msg_size);
                selections.push(rule.selection);
            }
            block_starts.push(thresholds.len());
        }
        CompiledSelector {
            name: name.to_owned(),
            comm_sizes,
            block_starts,
            thresholds,
            selections,
        }
    }

    /// Answers a query with two binary searches; no allocation.
    pub fn lookup(&self, p: usize, m: usize) -> Selection {
        let b = self
            .comm_sizes
            .partition_point(|&c| c <= p)
            .saturating_sub(1);
        let start = self.block_starts[b];
        let rules = &self.thresholds[start..self.block_starts[b + 1]];
        let r = rules.partition_point(|&t| t <= m).saturating_sub(1);
        self.selections[start + r]
    }

    /// Number of compiled comm blocks.
    pub fn comm_block_count(&self) -> usize {
        self.comm_sizes.len()
    }

    /// Total number of compiled rules across all blocks.
    pub fn rule_count(&self) -> usize {
        self.selections.len()
    }
}

impl Selector for CompiledSelector {
    fn select(&self, p: usize, m: usize) -> Selection {
        self.lookup(p, m)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Fixed-capacity exact-query cache with **seeded random eviction**,
/// generic over the query key.
///
/// Random replacement needs no per-hit bookkeeping (an LRU would
/// serialise every *read* through list surgery under the lock), has no
/// pathological scan pattern, and — seeded through [`splitmix64`] — its
/// eviction sequence is reproducible for a given seed and insertion
/// order.
///
/// The key type is a parameter because the key must carry *the whole
/// query identity*: the broadcast-only service keys by `(p, m)`, while
/// the multi-collective service keys by `(collective, p, m)` — two
/// collectives share every `(p, m)` point, so a key that omitted the
/// collective would silently serve one collective's algorithm for
/// another (the regression pinned in `multi`'s tests).
#[derive(Debug)]
pub(crate) struct QueryCache<K, V> {
    capacity: usize,
    map: HashMap<K, V>,
    keys: Vec<K>,
    rng_state: u64,
}

impl<K: std::hash::Hash + Eq + Copy, V: Copy> QueryCache<K, V> {
    pub(crate) fn new(capacity: usize, seed: u64) -> Self {
        QueryCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            rng_state: seed,
        }
    }

    pub(crate) fn get(&self, key: K) -> Option<V> {
        self.map.get(&key).copied()
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    pub(crate) fn insert(&mut self, key: K, val: V) {
        // Two workers can race the same missed key; the second insert
        // must not duplicate it in the eviction pool — but it does
        // refresh the value, so an entry computed against a stale
        // selector generation is overwritten by the re-tagged answer.
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = val;
            return;
        }
        if self.keys.len() >= self.capacity {
            let victim_ix = (splitmix64(&mut self.rng_state) as usize) % self.keys.len();
            let victim = self.keys.swap_remove(victim_ix);
            self.map.remove(&victim);
        }
        self.map.insert(key, val);
        self.keys.push(key);
    }
}

/// Snapshot of a [`DecisionService`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries answered from the exact-query cache.
    pub hits: u64,
    /// Queries answered by the underlying path (compiled table, live
    /// selector, or graceful decision).
    pub misses: u64,
    /// Of the misses on a graceful path, how many the Open MPI rules
    /// fallback decided rather than the model ranking. Always zero for
    /// compiled and live paths.
    pub fallbacks: u64,
}

impl ServiceStats {
    /// Total queries served.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of queries served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let q = self.queries();
        if q == 0 {
            0.0
        } else {
            self.hits as f64 / q as f64
        }
    }
}

collsel_support::json_struct!(ServiceStats {
    hits,
    misses,
    fallbacks
});

/// The underlying decision path of a [`DecisionService`].
#[derive(Debug)]
enum ServePath {
    Compiled(CompiledSelector),
    Live(Box<dyn Selector + Send + Sync>),
    Graceful(GracefulSelector),
}

/// Thread-safe serving front end for tuned decision functions.
///
/// All queries take `&self`, so one service can be shared by reference
/// across [`Pool`] workers (or any threads). The optional exact-query
/// cache sits in front of whichever path the service wraps; because
/// selection is pure, a cached answer is always identical to a
/// recomputed one (**cache transparency**, enforced by the differential
/// suite), so caching changes throughput and counters but never
/// results.
///
/// Counters are relaxed atomics: exact under any interleaving in total,
/// though the hit/miss *split* of a parallel batch depends on thread
/// timing — results never do.
///
/// # Hot swap and cache coherence
///
/// [`install_compiled`](Self::install_compiled) (and friends) atomically
/// replace the serving path mid-flight via [`EpochSwap`]. Cached entries
/// are **epoch-tagged** rather than cleared: a hit requires the entry's
/// generation to match the pinned generation, so an answer computed
/// against a superseded selector can never be served after a swap — not
/// even by the clear-race where an in-flight pre-swap computation
/// re-inserts its stale answer *after* a clear.
#[derive(Debug)]
pub struct DecisionService {
    path: EpochSwap<ServePath>,
    cache: Option<Mutex<QueryCache<(usize, usize), (Selection, u64)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
}

/// Queries per [`Pool`] job in [`DecisionService::decide_batch`]: fixed
/// (not derived from the thread count) so the job list — and therefore
/// the flattened, submission-ordered result — is the same at any
/// parallelism.
const BATCH_CHUNK: usize = 256;

impl DecisionService {
    fn new(path: ServePath) -> Self {
        DecisionService {
            path: EpochSwap::new(path),
            cache: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Serves from a compiled decision table (the fast path).
    pub fn compiled(table: CompiledSelector) -> Self {
        Self::new(ServePath::Compiled(table))
    }

    /// Serves by querying `selector` live (the reference path; also the
    /// only option when queries must never snap to a grid).
    pub fn live<S: Selector + Send + Sync + 'static>(selector: S) -> Self {
        Self::new(ServePath::Live(Box::new(selector)))
    }

    /// Serves from a [`GracefulSelector`], counting how many decisions
    /// the rules fallback made (the `fallbacks` counter).
    pub fn graceful(selector: GracefulSelector) -> Self {
        Self::new(ServePath::Graceful(selector))
    }

    /// Adds an exact-query cache of `capacity` entries with
    /// seeded-random eviction.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (omit the cache instead).
    pub fn with_cache(mut self, capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        self.cache = Some(Mutex::new(QueryCache::new(capacity, seed)));
        self
    }

    /// Whether the service currently wraps a compiled table.
    pub fn is_compiled(&self) -> bool {
        self.path.read(|p| matches!(p, ServePath::Compiled(_)))
    }

    /// The current selector generation (1 initially, +1 per install).
    pub fn epoch(&self) -> u64 {
        self.path.epoch()
    }

    /// Atomically installs a new compiled table as the serving path;
    /// returns the new generation. In-flight queries finish on the
    /// generation they pinned; cached answers from older generations
    /// stop hitting immediately (epoch tag mismatch).
    pub fn install_compiled(&self, table: CompiledSelector) -> u64 {
        self.path.swap(ServePath::Compiled(table))
    }

    /// Atomically installs a live selector as the serving path.
    pub fn install_live<S: Selector + Send + Sync + 'static>(&self, selector: S) -> u64 {
        self.path.swap(ServePath::Live(Box::new(selector)))
    }

    /// Atomically installs a [`GracefulSelector`] as the serving path.
    pub fn install_graceful(&self, selector: GracefulSelector) -> u64 {
        self.path.swap(ServePath::Graceful(selector))
    }

    /// Decides one query, consulting the cache first.
    pub fn decide(&self, p: usize, m: usize) -> Selection {
        let path = self.path.pin();
        let epoch = path.epoch();
        if let Some(cache) = &self.cache {
            if let Some((sel, tag)) = cache.lock().expect("cache lock").get((p, m)) {
                if tag == epoch {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return sel;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sel = match &*path {
            ServePath::Compiled(table) => table.lookup(p, m),
            ServePath::Live(selector) => selector.select(p, m),
            ServePath::Graceful(graceful) => {
                let d = graceful.decide(p, m);
                if !d.source.is_model() {
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                }
                d.selection
            }
        };
        if let Some(cache) = &self.cache {
            cache
                .lock()
                .expect("cache lock")
                .insert((p, m), (sel, epoch));
        }
        sel
    }

    /// Decides a whole query stream, fanned across `pool` in fixed-size
    /// chunks. Results come back in query order and are bit-identical
    /// at any thread count: each query's answer is a pure function of
    /// `(p, m)` (the cache is transparent), and the pool returns chunk
    /// results in submission order.
    pub fn decide_batch(&self, queries: &[(usize, usize)], pool: &Pool) -> Vec<Selection> {
        let per_chunk = pool.run(queries.chunks(BATCH_CHUNK).map(|chunk| {
            move || {
                chunk
                    .iter()
                    .map(|&(p, m)| self.decide(p, m))
                    .collect::<Vec<Selection>>()
            }
        }));
        let mut out = Vec::with_capacity(queries.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        out
    }

    /// Snapshot of the hit/miss/fallback counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Entries currently resident in the cache (0 without one).
    pub fn cached_entries(&self) -> usize {
        self.cache
            .as_ref()
            .map_or(0, |c| c.lock().expect("cache lock").len())
    }
}

impl Selector for DecisionService {
    fn select(&self, p: usize, m: usize) -> Selection {
        self.decide(p, m)
    }

    fn name(&self) -> &str {
        self.path.read(|p| match p {
            ServePath::Compiled(_) => "service(compiled)",
            ServePath::Live(_) => "service(live)",
            ServePath::Graceful(_) => "service(graceful)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::OpenMpiFixedSelector;
    use collsel_coll::BcastAlg;
    use collsel_model::FitValidity;
    use collsel_model::{GammaTable, Hockney};
    use std::collections::BTreeMap;

    const COMMS: &[usize] = &[4, 16, 64, 128];
    const MSGS: &[usize] = &[1024, 8 * 1024, 64 * 1024, 512 * 1024, 4 << 20];

    fn compiled() -> CompiledSelector {
        CompiledSelector::compile(&OpenMpiFixedSelector, COMMS, MSGS)
    }

    #[test]
    fn compiled_lookup_matches_decision_table_everywhere() {
        let table = DecisionTable::generate(&OpenMpiFixedSelector, COMMS, MSGS);
        let c = compiled();
        for p in [1usize, 3, 4, 5, 16, 40, 64, 100, 128, 500] {
            for m in [0usize, 1, 1024, 5000, 8192, 70_000, 1 << 20, 16 << 20] {
                assert_eq!(
                    Some(c.lookup(p, m)),
                    table.lookup(p, m),
                    "p={p} m={m} diverged from DecisionTable::lookup"
                );
            }
        }
        assert_eq!(c.comm_block_count(), COMMS.len());
        assert!(c.rule_count() >= COMMS.len());
    }

    #[test]
    fn compiled_matches_source_on_grid_points() {
        let c = compiled();
        for &p in COMMS {
            for &m in MSGS {
                assert_eq!(c.lookup(p, m), OpenMpiFixedSelector.select(p, m));
            }
        }
        assert_eq!(c.name(), "compiled(open-mpi-fixed)");
    }

    #[test]
    #[should_panic(expected = "empty decision table")]
    fn from_table_rejects_empty() {
        let _ = CompiledSelector::from_table(&DecisionTable { comms: vec![] }, "x");
    }

    #[test]
    fn service_counts_hits_and_misses() {
        let svc = DecisionService::compiled(compiled()).with_cache(8, 0xCAFE);
        let first = svc.decide(64, 8192);
        let second = svc.decide(64, 8192);
        assert_eq!(first, second);
        let stats = svc.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.queries(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(svc.cached_entries(), 1);
    }

    #[test]
    fn cache_eviction_is_bounded_and_seed_deterministic() {
        let run = |seed: u64| {
            let svc = DecisionService::compiled(compiled()).with_cache(4, seed);
            let picks: Vec<Selection> = (0..64usize).map(|i| svc.decide(4 + i, 1024 * i)).collect();
            assert!(svc.cached_entries() <= 4);
            (picks, svc.stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        assert_eq!(a, b, "same seed, same answers");
        assert_eq!(sa, sb, "same seed, same serial counter trace");
    }

    #[test]
    fn decide_batch_matches_serial_at_any_thread_count() {
        let queries: Vec<(usize, usize)> = (0..600usize).map(|i| (2 + i % 140, i * 997)).collect();
        let reference: Vec<Selection> = queries
            .iter()
            .map(|&(p, m)| compiled().lookup(p, m))
            .collect();
        for threads in [1usize, 2, 3, 8] {
            let svc = DecisionService::compiled(compiled()).with_cache(32, 1);
            let got = svc.decide_batch(&queries, &Pool::with_threads(threads));
            assert_eq!(got, reference, "threads = {threads}");
            assert_eq!(svc.stats().queries(), queries.len() as u64);
        }
    }

    /// A selector that always answers one fixed algorithm, for swap
    /// visibility tests.
    #[derive(Debug)]
    struct ConstSelector(BcastAlg);

    impl Selector for ConstSelector {
        fn select(&self, _p: usize, _m: usize) -> Selection {
            Selection::unsegmented(self.0)
        }
        fn name(&self) -> &str {
            "const"
        }
    }

    #[test]
    fn stale_cache_hits_are_impossible_across_a_swap() {
        // Regression: before epoch tagging, answers cached under the
        // old selector kept being served after a new generation was
        // installed.
        let svc = DecisionService::live(ConstSelector(BcastAlg::Linear)).with_cache(16, 3);
        assert_eq!(svc.epoch(), 1);
        assert_eq!(svc.decide(64, 8192).alg, BcastAlg::Linear);
        assert_eq!(svc.decide(64, 8192).alg, BcastAlg::Linear);
        assert_eq!(svc.stats().hits, 1, "warm cache before the swap");

        let epoch = svc.install_live(ConstSelector(BcastAlg::Binomial));
        assert_eq!(epoch, 2);
        assert_eq!(svc.epoch(), 2);
        // The cached Linear answer must not hit: its tag is epoch 1.
        assert_eq!(svc.decide(64, 8192).alg, BcastAlg::Binomial);
        let stats = svc.stats();
        assert_eq!(stats.hits, 1, "no stale hit across the swap");
        // The re-tagged entry serves hits again within the new epoch.
        assert_eq!(svc.decide(64, 8192).alg, BcastAlg::Binomial);
        assert_eq!(svc.stats().hits, 2);
        assert_eq!(svc.cached_entries(), 1, "entry re-tagged, not duplicated");
    }

    #[test]
    fn install_compiled_switches_the_path_atomically() {
        let svc = DecisionService::live(OpenMpiFixedSelector);
        assert!(!svc.is_compiled());
        svc.install_compiled(compiled());
        assert!(svc.is_compiled());
        assert_eq!(svc.name(), "service(compiled)");
        assert_eq!(svc.decide(64, 8192), compiled().lookup(64, 8192));
    }

    #[test]
    fn live_path_serves_any_selector() {
        let svc = DecisionService::live(OpenMpiFixedSelector);
        assert!(!svc.is_compiled());
        assert_eq!(svc.name(), "service(live)");
        assert_eq!(
            svc.decide(90, 1 << 20),
            OpenMpiFixedSelector.select(90, 1 << 20)
        );
        assert_eq!(svc.stats().misses, 1);
    }

    #[test]
    fn graceful_path_counts_fallbacks() {
        // All fits invalid: every decision comes from the rules
        // fallback and the counter must say so.
        let gamma = GammaTable::from_pairs([(3, 1.11), (5, 1.28)]);
        let params: BTreeMap<BcastAlg, Hockney> = BcastAlg::ALL
            .iter()
            .map(|&a| (a, Hockney::new(1e-6, 1e-9)))
            .collect();
        let validity: BTreeMap<BcastAlg, FitValidity> = params
            .keys()
            .map(|&a| (a, FitValidity::Degenerate))
            .collect();
        let graceful = GracefulSelector::new(gamma, params, validity, 8192);
        let svc = DecisionService::graceful(graceful).with_cache(16, 2);
        for &(p, m) in &[(16usize, 1024usize), (90, 1 << 20), (16, 1024)] {
            let got = svc.decide(p, m);
            assert_eq!(got, OpenMpiFixedSelector.select(p, m));
        }
        let stats = svc.stats();
        assert_eq!(stats.queries(), 3);
        assert_eq!(stats.hits, 1, "repeated query served from cache");
        assert_eq!(stats.fallbacks, 2, "cache hits do not re-count fallbacks");
    }
}
