//! Graceful-degradation selection: model-based when the models can be
//! trusted, Open MPI fixed rules when they cannot — per `(P, m)` query,
//! never by panicking.
//!
//! Tuning on a faulted cluster can leave the per-algorithm fits in
//! mixed shape: some algorithms fitted cleanly, some timed out, some
//! produced fits whose measurements never converged. The
//! [`GracefulSelector`] takes whatever survived, ranks with the valid
//! models only, and falls back to [`OpenMpiFixedSelector`] whenever the
//! model path cannot decide — reporting *which* path decided and *why*
//! through [`Decision`].

use crate::selector::{ModelBasedSelector, OpenMpiFixedSelector, Selection, Selector};
use collsel_coll::BcastAlg;
use collsel_model::{derived, FitValidity, GammaTable, Hockney};
use collsel_mpi::SimError;
use std::collections::BTreeMap;
use std::fmt;

/// Why the model path could not decide a query (or an algorithm was
/// excluded from the ranking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FallbackReason {
    /// No algorithm has a usable model at all (and no recorded failure
    /// explains why).
    NoUsableModel,
    /// Every modelled prediction for this `(P, m)` was non-finite.
    NonFinitePredictions,
    /// Fits exist for the queried collective but every one failed
    /// validation ([`FitValidity`] other than `Valid`).
    InvalidFit,
    /// The fits are missing because their estimation runs exceeded the
    /// watchdog deadline ([`SimError::Timeout`]).
    EstimationTimeout,
    /// The fits are missing because their measurements never reached
    /// the target precision ([`SimError::PrecisionNotReached`]).
    PrecisionNotReached,
}

impl FallbackReason {
    /// Classifies a tuning-stage [`SimError`] into the fallback cause a
    /// decision for the affected algorithm(s) should carry.
    pub fn from_sim_error(e: &SimError) -> FallbackReason {
        match e {
            SimError::Timeout { .. } => FallbackReason::EstimationTimeout,
            SimError::PrecisionNotReached { .. } => FallbackReason::PrecisionNotReached,
            _ => FallbackReason::NoUsableModel,
        }
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::NoUsableModel => write!(f, "no algorithm has a valid model fit"),
            FallbackReason::NonFinitePredictions => {
                write!(f, "every model prediction was non-finite")
            }
            FallbackReason::InvalidFit => {
                write!(f, "every fit for the collective failed validation")
            }
            FallbackReason::EstimationTimeout => {
                write!(f, "estimation timed out before fitting the collective")
            }
            FallbackReason::PrecisionNotReached => {
                write!(f, "estimation never reached the target precision")
            }
        }
    }
}

collsel_support::json_enum!(FallbackReason {
    NoUsableModel,
    NonFinitePredictions,
    InvalidFit,
    EstimationTimeout,
    PrecisionNotReached,
});

/// Which path produced a [`Decision`].
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionSource {
    /// The model-based ranking decided; carries the winning predicted
    /// time in seconds.
    Model {
        /// Predicted execution time of the winning algorithm.
        predicted: f64,
    },
    /// The Open MPI fixed rules decided; carries why the model path was
    /// unavailable.
    Fallback {
        /// Why the model path could not decide.
        reason: FallbackReason,
    },
}

impl DecisionSource {
    /// Whether the model path decided.
    pub fn is_model(&self) -> bool {
        matches!(self, DecisionSource::Model { .. })
    }

    /// The fallback cause, when the rules path decided.
    pub fn fallback_reason(&self) -> Option<FallbackReason> {
        match self {
            DecisionSource::Model { .. } => None,
            DecisionSource::Fallback { reason } => Some(*reason),
        }
    }
}

impl collsel_support::ToJson for DecisionSource {
    fn to_json(&self) -> collsel_support::Json {
        use collsel_support::Json;
        match self {
            DecisionSource::Model { predicted } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("model".to_string())),
                ("predicted".to_string(), predicted.to_json()),
            ]),
            DecisionSource::Fallback { reason } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("fallback".to_string())),
                ("reason".to_string(), reason.to_json()),
            ]),
        }
    }
}

impl collsel_support::FromJson for DecisionSource {
    fn from_json(v: &collsel_support::Json) -> Result<Self, collsel_support::JsonError> {
        use collsel_support::JsonError;
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or_else(|| JsonError(format!("decision source needs a `kind`: {v}")))?;
        match kind {
            "model" => Ok(DecisionSource::Model {
                predicted: f64::from_json(
                    v.get("predicted")
                        .ok_or_else(|| JsonError("model source needs `predicted`".to_string()))?,
                )?,
            }),
            "fallback" => Ok(DecisionSource::Fallback {
                reason: FallbackReason::from_json(
                    v.get("reason")
                        .ok_or_else(|| JsonError("fallback source needs `reason`".to_string()))?,
                )?,
            }),
            other => Err(JsonError(format!("invalid decision source kind `{other}`"))),
        }
    }
}

/// A selection together with the metadata of how it was reached.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The selected algorithm and segment size.
    pub selection: Selection,
    /// Which path decided, and why.
    pub source: DecisionSource,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            DecisionSource::Model { predicted } => write!(
                f,
                "{} (model, predicted {:.3e} s)",
                self.selection.alg, predicted
            ),
            DecisionSource::Fallback { reason } => {
                write!(f, "{} (rules fallback: {})", self.selection.alg, reason)
            }
        }
    }
}

/// A selector that degrades gracefully instead of panicking.
///
/// Built from per-algorithm `(α, β)` fits *with their validity
/// verdicts*: only [`FitValidity::Valid`] fits join the model ranking;
/// the rest are remembered so reports can say why an algorithm is
/// missing. Queries whose model ranking is empty or entirely non-finite
/// fall back, per `(P, m)`, to the Open MPI fixed rules.
#[derive(Debug, Clone, PartialEq)]
pub struct GracefulSelector {
    model: Option<ModelBasedSelector>,
    validity: BTreeMap<BcastAlg, FitValidity>,
    fallback: OpenMpiFixedSelector,
    seg_size: usize,
}

impl GracefulSelector {
    /// Builds the selector from judged fits. Algorithms absent from
    /// `params` (e.g. skipped because their estimation timed out) are
    /// simply not modelled; `validity` records the verdicts of the fits
    /// that exist.
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is zero.
    pub fn new(
        gamma: GammaTable,
        params: BTreeMap<BcastAlg, Hockney>,
        validity: BTreeMap<BcastAlg, FitValidity>,
        seg_size: usize,
    ) -> Self {
        assert!(seg_size > 0, "segment size must be positive");
        let trusted: BTreeMap<BcastAlg, Hockney> = params
            .into_iter()
            .filter(|(alg, _)| validity.get(alg).is_some_and(FitValidity::is_valid))
            .collect();
        let model = if trusted.is_empty() {
            None
        } else {
            Some(ModelBasedSelector::new(gamma, trusted, seg_size))
        };
        GracefulSelector {
            model,
            validity,
            fallback: OpenMpiFixedSelector,
            seg_size,
        }
    }

    /// Per-algorithm validity verdicts this selector was built from.
    pub fn validity(&self) -> &BTreeMap<BcastAlg, FitValidity> {
        &self.validity
    }

    /// The algorithms whose models participate in the ranking.
    pub fn modelled_algorithms(&self) -> Vec<BcastAlg> {
        self.model
            .as_ref()
            .map(|m| m.params().keys().copied().collect())
            .unwrap_or_default()
    }

    /// Decides the algorithm for broadcasting `m` bytes among `p`
    /// processes, reporting which path decided. Never panics: a
    /// non-finite prediction excludes that algorithm, and an empty
    /// surviving ranking falls back to the Open MPI rules.
    pub fn decide(&self, p: usize, m: usize) -> Decision {
        let Some(model) = &self.model else {
            // Fits that exist but all failed validation are a more
            // specific cause than "no model at all".
            let reason = if self.validity.is_empty() {
                FallbackReason::NoUsableModel
            } else {
                FallbackReason::InvalidFit
            };
            return Decision {
                selection: self.fallback.select(p, m),
                source: DecisionSource::Fallback { reason },
            };
        };
        // Rank by hand rather than via ModelBasedSelector::select,
        // which still panics when *every* prediction is non-finite: a
        // degenerate γ table or extreme parameters must downgrade the
        // query to the rules fallback, not abort the program.
        let mut best: Option<(BcastAlg, f64)> = None;
        for (&alg, h) in model.params() {
            let t = derived::predict_bcast(alg, p, m, self.seg_size, model.gamma(), h);
            if t.is_finite() && best.is_none_or(|(_, bt)| t < bt) {
                best = Some((alg, t));
            }
        }
        match best {
            Some((alg, predicted)) => Decision {
                selection: Selection::segmented(alg, self.seg_size),
                source: DecisionSource::Model { predicted },
            },
            None => Decision {
                selection: self.fallback.select(p, m),
                source: DecisionSource::Fallback {
                    reason: FallbackReason::NonFinitePredictions,
                },
            },
        }
    }
}

impl Selector for GracefulSelector {
    fn select(&self, p: usize, m: usize) -> Selection {
        self.decide(p, m).selection
    }

    fn name(&self) -> &str {
        "graceful"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.11), (5, 1.28), (7, 1.54)])
    }

    fn all_valid() -> (BTreeMap<BcastAlg, Hockney>, BTreeMap<BcastAlg, FitValidity>) {
        let params: BTreeMap<BcastAlg, Hockney> = BcastAlg::ALL
            .iter()
            .map(|&a| (a, Hockney::new(1e-6, 1e-9)))
            .collect();
        let validity = params.keys().map(|&a| (a, FitValidity::Valid)).collect();
        (params, validity)
    }

    #[test]
    fn all_valid_fits_use_the_model_path() {
        let (params, validity) = all_valid();
        let sel = GracefulSelector::new(gamma(), params, validity, 8192);
        let d = sel.decide(90, 1 << 20);
        assert!(d.source.is_model(), "{d:?}");
        assert_eq!(sel.modelled_algorithms().len(), BcastAlg::ALL.len());
        // Agrees with the plain model-based selector.
        let (p2, _) = all_valid();
        let plain = ModelBasedSelector::new(gamma(), p2, 8192);
        assert_eq!(d.selection, plain.select(90, 1 << 20));
    }

    #[test]
    fn invalid_fits_are_excluded_from_the_ranking() {
        let (params, mut validity) = all_valid();
        // Invalidate everything except Chain.
        for (&alg, v) in validity.iter_mut() {
            if alg != BcastAlg::Chain {
                *v = FitValidity::Unconverged { achieved: 0.3 };
            }
        }
        let sel = GracefulSelector::new(gamma(), params, validity, 8192);
        assert_eq!(sel.modelled_algorithms(), vec![BcastAlg::Chain]);
        let d = sel.decide(90, 1 << 20);
        assert!(d.source.is_model());
        assert_eq!(d.selection.alg, BcastAlg::Chain);
    }

    #[test]
    fn invalid_fits_fall_back_to_rules_with_cause() {
        let (params, validity) = all_valid();
        let all_bad: BTreeMap<BcastAlg, FitValidity> = validity
            .keys()
            .map(|&a| (a, FitValidity::Degenerate))
            .collect();
        let sel = GracefulSelector::new(gamma(), params, all_bad, 8192);
        for &(p, m) in &[
            (4usize, 100usize),
            (16, 8192),
            (90, 1 << 20),
            (124, 4 << 20),
        ] {
            let d = sel.decide(p, m);
            match &d.source {
                DecisionSource::Fallback { reason } => {
                    assert_eq!(*reason, FallbackReason::InvalidFit)
                }
                other => panic!("expected fallback, got {other:?}"),
            }
            assert_eq!(d.selection, OpenMpiFixedSelector.select(p, m));
        }
    }

    #[test]
    fn missing_algorithms_are_simply_not_modelled() {
        let (mut params, mut validity) = all_valid();
        params.remove(&BcastAlg::Linear);
        validity.remove(&BcastAlg::Linear);
        let sel = GracefulSelector::new(gamma(), params, validity, 8192);
        assert!(!sel.modelled_algorithms().contains(&BcastAlg::Linear));
        assert!(sel.decide(64, 65536).source.is_model());
    }

    #[test]
    fn decision_display_names_the_path() {
        let (params, validity) = all_valid();
        let sel = GracefulSelector::new(gamma(), params, validity, 8192);
        let d = sel.decide(90, 1 << 20);
        assert!(d.to_string().contains("model"), "{d}");
        let empty = GracefulSelector::new(gamma(), BTreeMap::new(), BTreeMap::new(), 8192);
        let d = empty.decide(90, 1 << 20);
        assert!(d.to_string().contains("fallback"), "{d}");
    }

    #[test]
    fn selector_trait_is_implemented() {
        let (params, validity) = all_valid();
        let sel = GracefulSelector::new(gamma(), params, validity, 8192);
        assert_eq!(sel.name(), "graceful");
        let s = sel.select(90, 1 << 20);
        assert!(s.seg_size.is_some());
    }
}
