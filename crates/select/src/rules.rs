//! Decision tables and Open MPI dynamic-rules export.
//!
//! Open MPI's `tuned` collective component can load selection rules
//! from a file (`coll_tuned_dynamic_rules_filename`), overriding its
//! built-in fixed decision function. That is the natural deployment
//! path for the paper's method on a real cluster: tune offline, emit a
//! rules file, point Open MPI at it.
//!
//! [`DecisionTable`] materialises any [`Selector`] over a grid of
//! communicator and message sizes; [`DecisionTable::to_ompi_rules`]
//! renders the grid in the dynamic-rules file format, using Open MPI
//! 3.1's broadcast algorithm numbering:
//!
//! | id | algorithm |
//! |----|-----------|
//! | 1 | basic linear |
//! | 2 | chain (our k-chain, fanout 4) |
//! | 3 | pipeline (our chain) |
//! | 4 | split binary tree |
//! | 5 | binary tree |
//! | 6 | binomial tree |

use crate::selector::{Selection, Selector};
use collsel_coll::{
    Alg, AllgatherAlg, AllreduceAlg, AlltoallAlg, BcastAlg, Collective, GatherAlg, ReduceAlg,
    ScatterAlg,
};
use std::fmt::Write as _;

/// Open MPI `COLL_TUNED` collective id for broadcast.
pub const OMPI_COLL_ID_BCAST: u32 = 7;

/// Open MPI's `COLL_TUNED` collective id (the alphabetical index of
/// `mca_coll_base_colltype_t` in `coll_base_functions.h`) for each
/// collective we tune. A rules file whose block names the wrong id is
/// silently ignored for the intended collective — the exact bug the
/// regression test `non_bcast_tables_emit_their_own_coll_id` pins.
pub fn ompi_coll_id(collective: Collective) -> u32 {
    match collective {
        Collective::Allgather => 0,
        Collective::Allreduce => 2,
        Collective::Alltoall => 3,
        Collective::Bcast => OMPI_COLL_ID_BCAST,
        Collective::Gather => 9,
        Collective::Reduce => 11,
        Collective::Scatter => 14,
    }
}

/// Open MPI 3.1 `coll_tuned_bcast_algorithm` number for an algorithm.
pub fn ompi_bcast_algorithm_id(alg: BcastAlg) -> u32 {
    match alg {
        BcastAlg::Linear => 1,
        BcastAlg::KChain => 2,
        BcastAlg::Chain => 3,
        BcastAlg::SplitBinary => 4,
        BcastAlg::Binary => 5,
        BcastAlg::Binomial => 6,
    }
}

/// Open MPI 3.1 `coll_tuned_<collective>_algorithm` number for any
/// collective algorithm (the per-collective MCA enumerations).
pub fn ompi_algorithm_id(alg: Alg) -> u32 {
    match alg {
        Alg::Bcast(b) => ompi_bcast_algorithm_id(b),
        Alg::Reduce(r) => match r {
            ReduceAlg::Linear => 1,
            ReduceAlg::Chain => 2,
            ReduceAlg::Pipeline => 3,
            ReduceAlg::Binary => 4,
            ReduceAlg::Binomial => 5,
            ReduceAlg::InOrderBinary => 6,
        },
        Alg::Allreduce(a) => match a {
            AllreduceAlg::ReduceBcast => 1,
            AllreduceAlg::RecursiveDoubling => 3,
        },
        Alg::Gather(g) => match g {
            GatherAlg::Linear => 1,
            GatherAlg::Binomial => 2,
        },
        Alg::Scatter(s) => match s {
            ScatterAlg::Linear => 1,
            ScatterAlg::Binomial => 2,
        },
        Alg::Allgather(a) => match a {
            AllgatherAlg::GatherBcast => 1,
            AllgatherAlg::RecursiveDoubling => 3,
            AllgatherAlg::Ring => 4,
        },
        Alg::Alltoall(a) => match a {
            AlltoallAlg::Linear => 1,
            AlltoallAlg::Pairwise => 2,
        },
    }
}

/// One rule: for messages of at least `min_msg_size` bytes, run
/// `selection`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Threshold message size in bytes (rules apply from this size up
    /// to the next rule's threshold).
    pub min_msg_size: usize,
    /// The algorithm (and segment size) to run.
    pub selection: Selection,
}

/// All rules for one communicator size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommRules {
    /// Communicator size the rules apply to (Open MPI applies a comm
    /// block to all sizes from this value up to the next block's).
    pub comm_size: usize,
    /// Message-size thresholds in ascending order.
    pub rules: Vec<Rule>,
}

/// A materialised decision table for `MPI_Bcast`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTable {
    /// Per-communicator-size rule blocks, ascending.
    pub comms: Vec<CommRules>,
}

impl DecisionTable {
    /// Materialises `selector` over the given grids. Consecutive
    /// message sizes that select identically are merged into one rule.
    ///
    /// # Panics
    ///
    /// Panics if either grid is empty or unsorted.
    pub fn generate(selector: &dyn Selector, comm_sizes: &[usize], msg_sizes: &[usize]) -> Self {
        assert!(
            !comm_sizes.is_empty(),
            "need at least one communicator size"
        );
        assert!(!msg_sizes.is_empty(), "need at least one message size");
        assert!(
            comm_sizes.windows(2).all(|w| w[0] < w[1]),
            "communicator sizes must be ascending"
        );
        assert!(
            msg_sizes.windows(2).all(|w| w[0] < w[1]),
            "message sizes must be ascending"
        );
        let comms = comm_sizes
            .iter()
            .map(|&p| {
                let mut rules: Vec<Rule> = Vec::new();
                for &m in msg_sizes {
                    let selection = selector.select(p, m);
                    match rules.last() {
                        Some(last) if last.selection == selection => {}
                        _ => rules.push(Rule {
                            min_msg_size: m,
                            selection,
                        }),
                    }
                }
                // Open MPI rule blocks conventionally start at size 0.
                if let Some(first) = rules.first_mut() {
                    first.min_msg_size = 0;
                }
                CommRules {
                    comm_size: p,
                    rules,
                }
            })
            .collect();
        DecisionTable { comms }
    }

    /// Looks up the rule for `(p, m)`: the highest comm block not above
    /// `p`, then the highest threshold not above `m`.
    pub fn lookup(&self, p: usize, m: usize) -> Option<Selection> {
        let block = self
            .comms
            .iter()
            .rfind(|c| c.comm_size <= p)
            .or_else(|| self.comms.first())?;
        let rule = block
            .rules
            .iter()
            .rfind(|r| r.min_msg_size <= m)
            .or_else(|| block.rules.first())?;
        Some(rule.selection)
    }

    /// Renders the table in Open MPI's dynamic-rules file format.
    ///
    /// The emitted file can be fed to a real Open MPI via
    /// `--mca coll_tuned_use_dynamic_rules 1
    ///  --mca coll_tuned_dynamic_rules_filename <file>`.
    pub fn to_ompi_rules(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "1 # num of collectives");
        let _ = writeln!(out, "{OMPI_COLL_ID_BCAST} # collective id (broadcast)");
        let _ = writeln!(out, "{} # number of com sizes", self.comms.len());
        for block in &self.comms {
            let _ = writeln!(out, "{} # comm size", block.comm_size);
            let _ = writeln!(out, "{} # number of msg sizes", block.rules.len());
            for rule in &block.rules {
                // message_size algorithm_id topo_faninout segsize
                let seg = rule.selection.seg_size.unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{} {} 0 {}",
                    rule.min_msg_size,
                    ompi_bcast_algorithm_id(rule.selection.alg),
                    seg
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::OpenMpiFixedSelector;

    fn table() -> DecisionTable {
        DecisionTable::generate(
            &OpenMpiFixedSelector,
            &[16, 64, 128],
            &[1024, 8 * 1024, 64 * 1024, 512 * 1024, 4 << 20],
        )
    }

    #[test]
    fn algorithm_ids_match_open_mpi_numbering() {
        assert_eq!(ompi_bcast_algorithm_id(BcastAlg::Linear), 1);
        assert_eq!(ompi_bcast_algorithm_id(BcastAlg::KChain), 2);
        assert_eq!(ompi_bcast_algorithm_id(BcastAlg::Chain), 3);
        assert_eq!(ompi_bcast_algorithm_id(BcastAlg::SplitBinary), 4);
        assert_eq!(ompi_bcast_algorithm_id(BcastAlg::Binary), 5);
        assert_eq!(ompi_bcast_algorithm_id(BcastAlg::Binomial), 6);
    }

    #[test]
    fn collective_ids_match_open_mpi_enumeration() {
        assert_eq!(ompi_coll_id(Collective::Allgather), 0);
        assert_eq!(ompi_coll_id(Collective::Allreduce), 2);
        assert_eq!(ompi_coll_id(Collective::Alltoall), 3);
        assert_eq!(ompi_coll_id(Collective::Bcast), 7);
        assert_eq!(ompi_coll_id(Collective::Gather), 9);
        assert_eq!(ompi_coll_id(Collective::Reduce), 11);
        assert_eq!(ompi_coll_id(Collective::Scatter), 14);
        // The bcast arm of the generic id mapping must stay equal to
        // the original bcast-only mapping.
        for b in BcastAlg::ALL {
            assert_eq!(ompi_algorithm_id(Alg::Bcast(b)), ompi_bcast_algorithm_id(b));
        }
        // Reduce: Open MPI's coll_tuned_reduce enumeration.
        assert_eq!(ompi_algorithm_id(Alg::Reduce(ReduceAlg::Pipeline)), 3);
        assert_eq!(ompi_algorithm_id(Alg::Reduce(ReduceAlg::InOrderBinary)), 6);
    }

    #[test]
    fn generate_merges_identical_consecutive_rules() {
        let t = table();
        for block in &t.comms {
            for w in block.rules.windows(2) {
                assert_ne!(w[0].selection, w[1].selection, "unmerged duplicate");
                assert!(w[0].min_msg_size < w[1].min_msg_size);
            }
            assert_eq!(block.rules[0].min_msg_size, 0);
        }
    }

    #[test]
    fn lookup_matches_source_selector() {
        let t = table();
        let sel = OpenMpiFixedSelector;
        for &p in &[16usize, 64, 128] {
            for &m in &[1024usize, 8 * 1024, 512 * 1024, 4 << 20] {
                assert_eq!(t.lookup(p, m), Some(sel.select(p, m)), "p={p} m={m}");
            }
        }
    }

    #[test]
    fn lookup_between_grid_points_uses_floor() {
        let t = table();
        // p = 100 falls back to the 64-block; m = 9000 to the rule
        // starting at or below 9000.
        let direct = t.lookup(64, 9000);
        assert_eq!(t.lookup(100, 9000), direct);
        // Below the smallest block, clamp to the first.
        assert_eq!(t.lookup(2, 1024), t.lookup(16, 1024));
    }

    #[test]
    fn ompi_rules_format_shape() {
        let t = table();
        let s = t.to_ompi_rules();
        let mut lines = s.lines();
        assert_eq!(lines.next().unwrap(), "1 # num of collectives");
        assert_eq!(lines.next().unwrap(), "7 # collective id (broadcast)");
        assert_eq!(lines.next().unwrap(), "3 # number of com sizes");
        // Every rule line has 4 numeric fields.
        for line in s.lines().skip(3) {
            let data = line.split('#').next().unwrap().trim();
            let fields: Vec<&str> = data.split_whitespace().collect();
            assert!(
                fields.len() == 1 || fields.len() == 4,
                "unexpected line: {line}"
            );
            for f in fields {
                f.parse::<u64>().expect("numeric field");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn generate_rejects_unsorted_grid() {
        let _ = DecisionTable::generate(&OpenMpiFixedSelector, &[64, 16], &[1024]);
    }
}
