//! Multi-collective decision serving: the broadcast serving stack of
//! [`selector`](crate::selector)/[`service`](crate::service) widened to
//! key every decision by **`(collective, P, m)`**.
//!
//! The pieces mirror the broadcast layer one for one:
//!
//! * [`CollSelection`] ↔ `Selection` — carries an [`Alg`] instead of a
//!   `BcastAlg`, so a selection can never be applied to the wrong
//!   collective;
//! * [`CollectiveSelector`] ↔ `Selector` — queries take the collective;
//! * [`OpenMpiCollectiveSelector`]/[`fixed_selection`] ↔
//!   `OpenMpiFixedSelector` — per-collective fixed rules;
//! * [`CollectiveModelSelector`] ↔ `ModelBasedSelector` — argmin over
//!   the per-collective implementation-derived models;
//! * [`GracefulCollectiveSelector`] ↔ `GracefulSelector` — validity-
//!   filtered ranking with a per-query fixed-rules fallback;
//! * [`CollDecisionTable`] ↔ `DecisionTable` — per-collective rule
//!   blocks and Open MPI dynamic-rules export (with the *collective's
//!   own* id, see [`rules::ompi_coll_id`](crate::rules::ompi_coll_id));
//! * [`CompiledCollectiveSelector`] ↔ `CompiledSelector` — the same CSR
//!   flattening and allocation-free two-binary-search lookup, one CSR
//!   block set per collective;
//! * [`CollectiveDecisionService`] ↔ `DecisionService` — thread-safe
//!   front end whose cache keys include the collective (keying by
//!   `(p, m)` alone would serve one collective's algorithm for
//!   another — the regression pinned in this module's tests).

use crate::graceful::{DecisionSource, FallbackReason};
use crate::selector::{OpenMpiFixedSelector, Selector};
use crate::service::QueryCache;
use collsel_coll::{
    Alg, AllgatherAlg, AllreduceAlg, AlltoallAlg, Collective, GatherAlg, ScatterAlg,
};
use collsel_model::{collectives, FitValidity, GammaTable, Hockney};
use collsel_support::epoch::EpochSwap;
use collsel_support::pool::Pool;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use crate::service::ServiceStats;

/// The outcome of a multi-collective selection: an algorithm (tagged
/// with its collective) plus the segment size to run it with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollSelection {
    /// The selected algorithm.
    pub alg: Alg,
    /// Pipeline segment size in bytes; `None` for unsegmented.
    pub seg_size: Option<usize>,
}

impl CollSelection {
    /// Creates a segmented selection.
    pub fn segmented(alg: Alg, seg_size: usize) -> Self {
        CollSelection {
            alg,
            seg_size: Some(seg_size),
        }
    }

    /// Creates an unsegmented selection.
    pub fn unsegmented(alg: Alg) -> Self {
        CollSelection {
            alg,
            seg_size: None,
        }
    }

    /// The segment size to actually run with for an `m`-byte payload
    /// (unsegmented ⇒ one segment spanning the payload).
    pub fn effective_seg_size(&self, m: usize) -> usize {
        self.seg_size.unwrap_or_else(|| m.max(1))
    }
}

collsel_support::json_struct!(CollSelection { alg, seg_size });

/// A runtime decision function covering every collective.
pub trait CollectiveSelector: fmt::Debug {
    /// Selects the algorithm for running `collective` on an `m`-byte
    /// payload among `p` processes (`m` follows
    /// [`run_collective`](collsel_coll::run_collective)'s convention).
    fn select_for(&self, collective: Collective, p: usize, m: usize) -> CollSelection;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// Per-collective fixed decision rules in the style of Open MPI 3.1's
/// `coll_tuned_decision_fixed.c`.
///
/// The broadcast arm is the faithful port
/// ([`OpenMpiFixedSelector`]); the other six are simplified
/// transcriptions of the corresponding `*_intra_dec_fixed` routines,
/// reduced to the algorithms we port: the small/large crossover shape
/// is kept, the vendor's exact empirical thresholds are rounded to
/// powers of two. They serve as the deterministic safety net under
/// graceful degradation, so shape (never panicking, always returning an
/// algorithm of the queried collective) matters more than the exact
/// crossover byte counts.
pub fn fixed_selection(collective: Collective, p: usize, m: usize) -> CollSelection {
    match collective {
        Collective::Bcast => {
            let s = OpenMpiFixedSelector.select(p, m);
            CollSelection {
                alg: Alg::Bcast(s.alg),
                seg_size: s.seg_size,
            }
        }
        Collective::Reduce => {
            use collsel_coll::ReduceAlg;
            if m < 8 * 1024 {
                CollSelection::unsegmented(Alg::Reduce(ReduceAlg::Binomial))
            } else if m < 512 * 1024 {
                CollSelection::segmented(Alg::Reduce(ReduceAlg::Binomial), 32 * 1024)
            } else {
                // Large vectors pipeline (Open MPI picks pipeline or the
                // in-order binary tree here; in-order is only forced for
                // non-commutative operators, which we do not model).
                CollSelection::segmented(Alg::Reduce(ReduceAlg::Pipeline), 64 * 1024)
            }
        }
        Collective::Allreduce => {
            if m < 16 * 1024 {
                CollSelection::unsegmented(Alg::Allreduce(AllreduceAlg::RecursiveDoubling))
            } else {
                CollSelection::segmented(Alg::Allreduce(AllreduceAlg::ReduceBcast), 32 * 1024)
            }
        }
        Collective::Gather => {
            if p > 8 && m < 8 * 1024 {
                CollSelection::unsegmented(Alg::Gather(GatherAlg::Binomial))
            } else {
                CollSelection::unsegmented(Alg::Gather(GatherAlg::Linear))
            }
        }
        Collective::Scatter => {
            if p > 8 && m < 2 * 1024 {
                CollSelection::unsegmented(Alg::Scatter(ScatterAlg::Binomial))
            } else {
                CollSelection::unsegmented(Alg::Scatter(ScatterAlg::Linear))
            }
        }
        Collective::Allgather => {
            if p.is_power_of_two() && p * m < 64 * 1024 {
                CollSelection::unsegmented(Alg::Allgather(AllgatherAlg::RecursiveDoubling))
            } else {
                CollSelection::unsegmented(Alg::Allgather(AllgatherAlg::Ring))
            }
        }
        Collective::Alltoall => {
            if p <= 8 && m < 1024 {
                CollSelection::unsegmented(Alg::Alltoall(AlltoallAlg::Linear))
            } else {
                CollSelection::unsegmented(Alg::Alltoall(AlltoallAlg::Pairwise))
            }
        }
    }
}

/// [`fixed_selection`] as a [`CollectiveSelector`] (the multi-collective
/// baseline and graceful fallback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenMpiCollectiveSelector;

impl CollectiveSelector for OpenMpiCollectiveSelector {
    fn select_for(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        fixed_selection(collective, p, m)
    }

    fn name(&self) -> &str {
        "open-mpi-fixed-multi"
    }
}

/// Model-based runtime selection over any subset of collectives:
/// evaluates the implementation-derived model of every fitted algorithm
/// of the queried collective and returns the predicted-fastest.
///
/// Unlike the broadcast-only `ModelBasedSelector`, this never panics on
/// a query: a collective with no usable (finite) fitted model falls
/// back to [`fixed_selection`], so partial tuning campaigns (e.g. only
/// reduce tuned so far) still serve every collective.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveModelSelector {
    gamma: GammaTable,
    params: BTreeMap<Alg, Hockney>,
    seg_size: usize,
    seg_overrides: BTreeMap<Collective, usize>,
}

impl CollectiveModelSelector {
    /// Builds the selector from per-algorithm fits (keys carry the
    /// collective, so one map covers all seven families).
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is zero (an *empty* params map is allowed —
    /// every query then falls back to the fixed rules).
    pub fn new(gamma: GammaTable, params: BTreeMap<Alg, Hockney>, seg_size: usize) -> Self {
        assert!(seg_size > 0, "segment size must be positive");
        CollectiveModelSelector {
            gamma,
            params,
            seg_size,
            seg_overrides: BTreeMap::new(),
        }
    }

    /// Overrides the segment size used to evaluate (and serve) one
    /// collective's models. Predictions are only meaningful at the
    /// segment size the collective's fits were estimated with: the
    /// broadcast fits are conditioned at the paper's 8 KB segment while
    /// the breadth campaigns estimate at a coarser one, so serving
    /// every collective at the broadcast segment — the implicit-bcast
    /// default this method exists to correct — mis-ranks the pipelined
    /// algorithms at large payloads.
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is zero.
    pub fn with_seg_size(mut self, collective: Collective, seg_size: usize) -> Self {
        assert!(seg_size > 0, "segment size must be positive");
        self.seg_overrides.insert(collective, seg_size);
        self
    }

    /// The γ table in use.
    pub fn gamma(&self) -> &GammaTable {
        &self.gamma
    }

    /// The per-algorithm Hockney parameters.
    pub fn params(&self) -> &BTreeMap<Alg, Hockney> {
        &self.params
    }

    /// The default segment size (collectives without an override).
    pub fn seg_size(&self) -> usize {
        self.seg_size
    }

    /// The segment size used for `collective`'s predictions and served
    /// selections.
    pub fn seg_for(&self, collective: Collective) -> usize {
        self.seg_overrides
            .get(&collective)
            .copied()
            .unwrap_or(self.seg_size)
    }

    /// Predicted times of the queried collective's fitted algorithms,
    /// ascending, non-finite predictions last.
    pub fn ranking(&self, collective: Collective, p: usize, m: usize) -> Vec<(Alg, f64)> {
        let mut v: Vec<(Alg, f64)> = self
            .params
            .iter()
            .filter(|(alg, _)| alg.collective() == collective)
            .map(|(&alg, h)| {
                (
                    alg,
                    collectives::predict(alg, p, m, self.seg_for(collective), &self.gamma, h),
                )
            })
            .collect();
        v.sort_by(|a, b| match (a.1.is_finite(), b.1.is_finite()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => a.1.total_cmp(&b.1),
        });
        v
    }

    /// The model-path argmin, if any fitted model of this collective
    /// yields a finite prediction.
    fn model_argmin(&self, collective: Collective, p: usize, m: usize) -> Option<(Alg, f64)> {
        let seg = self.seg_for(collective);
        let mut best: Option<(Alg, f64)> = None;
        for (&alg, h) in &self.params {
            if alg.collective() != collective {
                continue;
            }
            let t = collectives::predict(alg, p, m, seg, &self.gamma, h);
            if t.is_finite() && best.is_none_or(|(_, bt)| t < bt) {
                best = Some((alg, t));
            }
        }
        best
    }
}

impl CollectiveSelector for CollectiveModelSelector {
    fn select_for(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        match self.model_argmin(collective, p, m) {
            Some((alg, _)) => CollSelection::segmented(alg, self.seg_for(collective)),
            None => fixed_selection(collective, p, m),
        }
    }

    fn name(&self) -> &str {
        "model-based-multi"
    }
}

/// A multi-collective selection together with how it was reached
/// (mirrors [`Decision`](crate::Decision)).
#[derive(Debug, Clone, PartialEq)]
pub struct CollDecision {
    /// The selected algorithm and segment size.
    pub selection: CollSelection,
    /// Which path decided, and why.
    pub source: DecisionSource,
}

impl fmt::Display for CollDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            DecisionSource::Model { predicted } => write!(
                f,
                "{} (model, predicted {:.3e} s)",
                self.selection.alg.qualified_name(),
                predicted
            ),
            DecisionSource::Fallback { reason } => write!(
                f,
                "{} (rules fallback: {})",
                self.selection.alg.qualified_name(),
                reason
            ),
        }
    }
}

collsel_support::json_struct!(CollDecision { selection, source });

/// Graceful degradation across collectives: model-based per query when
/// the queried collective has trusted fits, [`fixed_selection`]
/// otherwise — reporting which path decided through [`CollDecision`].
#[derive(Debug, Clone, PartialEq)]
pub struct GracefulCollectiveSelector {
    model: CollectiveModelSelector,
    validity: BTreeMap<Alg, FitValidity>,
    failures: BTreeMap<Alg, FallbackReason>,
}

impl GracefulCollectiveSelector {
    /// Builds the selector from judged fits; only
    /// [`FitValidity::Valid`] fits join the rankings.
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is zero.
    pub fn new(
        gamma: GammaTable,
        params: BTreeMap<Alg, Hockney>,
        validity: BTreeMap<Alg, FitValidity>,
        seg_size: usize,
    ) -> Self {
        let trusted: BTreeMap<Alg, Hockney> = params
            .into_iter()
            .filter(|(alg, _)| validity.get(alg).is_some_and(FitValidity::is_valid))
            .collect();
        GracefulCollectiveSelector {
            model: CollectiveModelSelector::new(gamma, trusted, seg_size),
            validity,
            failures: BTreeMap::new(),
        }
    }

    /// Records why algorithms are missing entirely (their estimation
    /// failed before producing a fit, e.g. with
    /// [`FallbackReason::EstimationTimeout`] or
    /// [`FallbackReason::PrecisionNotReached`]). Fallback decisions for
    /// a collective whose fits are all missing carry the recorded cause
    /// instead of the generic [`FallbackReason::NoUsableModel`].
    #[must_use]
    pub fn with_failures(mut self, failures: BTreeMap<Alg, FallbackReason>) -> Self {
        self.failures = failures;
        self
    }

    /// The recorded per-algorithm estimation failures.
    pub fn failures(&self) -> &BTreeMap<Alg, FallbackReason> {
        &self.failures
    }

    /// Predicted execution time of one specific algorithm at `(p, m)`
    /// under this selector's trusted fits, or `None` when the algorithm
    /// is not modelled (no fit, or its fit failed validation). Used by
    /// the decision server's health gate to shadow-score a candidate
    /// generation's picks with the live generation's models.
    pub fn predicted_time(&self, alg: Alg, p: usize, m: usize) -> Option<f64> {
        self.model
            .ranking(alg.collective(), p, m)
            .into_iter()
            .find(|&(a, _)| a == alg)
            .map(|(_, t)| t)
    }

    /// Overrides one collective's evaluation/serving segment size (see
    /// [`CollectiveModelSelector::with_seg_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is zero.
    pub fn with_seg_size(mut self, collective: Collective, seg_size: usize) -> Self {
        self.model = self.model.with_seg_size(collective, seg_size);
        self
    }

    /// Per-algorithm validity verdicts this selector was built from.
    pub fn validity(&self) -> &BTreeMap<Alg, FitValidity> {
        &self.validity
    }

    /// The algorithms whose models participate in the rankings.
    pub fn modelled_algorithms(&self) -> Vec<Alg> {
        self.model.params().keys().copied().collect()
    }

    /// Decides a query, reporting which path decided. Never panics.
    ///
    /// A fallback decision carries the most specific cause available:
    /// trusted fits that all predicted non-finite times report
    /// [`FallbackReason::NonFinitePredictions`]; fits that exist but
    /// all failed validation report [`FallbackReason::InvalidFit`];
    /// collectives whose estimation failed outright report the cause
    /// recorded via [`with_failures`](Self::with_failures).
    pub fn decide_for(&self, collective: Collective, p: usize, m: usize) -> CollDecision {
        match self.model.model_argmin(collective, p, m) {
            Some((alg, predicted)) => CollDecision {
                selection: CollSelection::segmented(alg, self.model.seg_for(collective)),
                source: DecisionSource::Model { predicted },
            },
            None => CollDecision {
                selection: fixed_selection(collective, p, m),
                source: DecisionSource::Fallback {
                    reason: self.fallback_cause(collective),
                },
            },
        }
    }

    /// The cause a rules-path decision for `collective` should carry.
    fn fallback_cause(&self, collective: Collective) -> FallbackReason {
        let has_trusted = self
            .model
            .params()
            .keys()
            .any(|alg| alg.collective() == collective);
        if has_trusted {
            return FallbackReason::NonFinitePredictions;
        }
        let has_judged_fits = self
            .validity
            .keys()
            .any(|alg| alg.collective() == collective);
        if has_judged_fits {
            return FallbackReason::InvalidFit;
        }
        self.failures
            .iter()
            .find(|(alg, _)| alg.collective() == collective)
            .map(|(_, &reason)| reason)
            .unwrap_or(FallbackReason::NoUsableModel)
    }
}

impl CollectiveSelector for GracefulCollectiveSelector {
    fn select_for(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        self.decide_for(collective, p, m).selection
    }

    fn name(&self) -> &str {
        "graceful-multi"
    }
}

/// One rule of a [`CollDecisionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollRule {
    /// Threshold payload size in bytes (applies from here up to the
    /// next rule's threshold).
    pub min_msg_size: usize,
    /// The algorithm (and segment size) to run.
    pub selection: CollSelection,
}

collsel_support::json_struct!(CollRule {
    min_msg_size,
    selection
});

/// All rules of one collective for one communicator size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollCommRules {
    /// Communicator size the rules apply to.
    pub comm_size: usize,
    /// Payload-size thresholds in ascending order.
    pub rules: Vec<CollRule>,
}

collsel_support::json_struct!(CollCommRules { comm_size, rules });

/// A materialised decision table for **one** collective (the breadth
/// twin of [`DecisionTable`](crate::rules::DecisionTable)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollDecisionTable {
    /// The collective this table decides.
    pub collective: Collective,
    /// Per-communicator-size rule blocks, ascending.
    pub comms: Vec<CollCommRules>,
}

collsel_support::json_struct!(CollDecisionTable { collective, comms });

impl CollDecisionTable {
    /// Materialises `selector` over the grids for `collective`
    /// (identical consecutive selections merge, first threshold is
    /// rewritten to 0 — the [`DecisionTable::generate`]
    /// (crate::rules::DecisionTable::generate) contract).
    ///
    /// # Panics
    ///
    /// Panics if either grid is empty or unsorted.
    pub fn generate(
        selector: &dyn CollectiveSelector,
        collective: Collective,
        comm_sizes: &[usize],
        msg_sizes: &[usize],
    ) -> Self {
        assert!(
            !comm_sizes.is_empty(),
            "need at least one communicator size"
        );
        assert!(!msg_sizes.is_empty(), "need at least one message size");
        assert!(
            comm_sizes.windows(2).all(|w| w[0] < w[1]),
            "communicator sizes must be ascending"
        );
        assert!(
            msg_sizes.windows(2).all(|w| w[0] < w[1]),
            "message sizes must be ascending"
        );
        let comms = comm_sizes
            .iter()
            .map(|&p| {
                let mut rules: Vec<CollRule> = Vec::new();
                for &m in msg_sizes {
                    let selection = selector.select_for(collective, p, m);
                    debug_assert_eq!(selection.alg.collective(), collective);
                    match rules.last() {
                        Some(last) if last.selection == selection => {}
                        _ => rules.push(CollRule {
                            min_msg_size: m,
                            selection,
                        }),
                    }
                }
                if let Some(first) = rules.first_mut() {
                    first.min_msg_size = 0;
                }
                CollCommRules {
                    comm_size: p,
                    rules,
                }
            })
            .collect();
        CollDecisionTable { collective, comms }
    }

    /// Looks up the rule for `(p, m)` with the same floor/clamp
    /// semantics as the broadcast table.
    pub fn lookup(&self, p: usize, m: usize) -> Option<CollSelection> {
        let block = self
            .comms
            .iter()
            .rfind(|c| c.comm_size <= p)
            .or_else(|| self.comms.first())?;
        let rule = block
            .rules
            .iter()
            .rfind(|r| r.min_msg_size <= m)
            .or_else(|| block.rules.first())?;
        Some(rule.selection)
    }

    /// Renders this table as one collective block of an Open MPI
    /// dynamic-rules file, using the collective's own id (a reduce
    /// table emits id 11, never broadcast's 7).
    pub fn write_ompi_rules(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "{} # collective id ({})",
            crate::rules::ompi_coll_id(self.collective),
            self.collective
        );
        let _ = writeln!(out, "{} # number of com sizes", self.comms.len());
        for block in &self.comms {
            let _ = writeln!(out, "{} # comm size", block.comm_size);
            let _ = writeln!(out, "{} # number of msg sizes", block.rules.len());
            for rule in &block.rules {
                let seg = rule.selection.seg_size.unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{} {} 0 {}",
                    rule.min_msg_size,
                    crate::rules::ompi_algorithm_id(rule.selection.alg),
                    seg
                );
            }
        }
    }
}

/// Renders a set of per-collective tables as one Open MPI dynamic-rules
/// file.
pub fn to_ompi_rules_multi(tables: &[CollDecisionTable]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} # num of collectives", tables.len());
    for t in tables {
        t.write_ompi_rules(&mut out);
    }
    out
}

/// The CSR arrays of one collective inside a
/// [`CompiledCollectiveSelector`] — identical layout and lookup to the
/// broadcast [`CompiledSelector`](crate::CompiledSelector).
#[derive(Debug, Clone, PartialEq, Eq)]
struct CollCsr {
    comm_sizes: Vec<usize>,
    block_starts: Vec<usize>,
    thresholds: Vec<usize>,
    selections: Vec<CollSelection>,
}

impl CollCsr {
    fn from_table(table: &CollDecisionTable) -> Self {
        assert!(
            !table.comms.is_empty(),
            "cannot compile an empty decision table for {}",
            table.collective
        );
        let mut comm_sizes = Vec::with_capacity(table.comms.len());
        let mut block_starts = Vec::with_capacity(table.comms.len() + 1);
        let mut thresholds = Vec::new();
        let mut selections = Vec::new();
        block_starts.push(0);
        for block in &table.comms {
            assert!(
                !block.rules.is_empty(),
                "comm block {} has no rules",
                block.comm_size
            );
            assert!(
                comm_sizes.last().is_none_or(|&c| c < block.comm_size),
                "comm blocks must be strictly ascending"
            );
            assert!(
                block
                    .rules
                    .windows(2)
                    .all(|w| w[0].min_msg_size < w[1].min_msg_size),
                "rule thresholds must be strictly ascending"
            );
            comm_sizes.push(block.comm_size);
            for rule in &block.rules {
                thresholds.push(rule.min_msg_size);
                selections.push(rule.selection);
            }
            block_starts.push(thresholds.len());
        }
        CollCsr {
            comm_sizes,
            block_starts,
            thresholds,
            selections,
        }
    }

    fn lookup(&self, p: usize, m: usize) -> CollSelection {
        let b = self
            .comm_sizes
            .partition_point(|&c| c <= p)
            .saturating_sub(1);
        let start = self.block_starts[b];
        let rules = &self.thresholds[start..self.block_starts[b + 1]];
        let r = rules.partition_point(|&t| t <= m).saturating_sub(1);
        self.selections[start + r]
    }
}

/// A [`CollectiveSelector`] compiled to per-collective flat decision
/// tables with allocation-free O(log n) lookup — the breadth twin of
/// [`CompiledSelector`](crate::CompiledSelector): the same CSR
/// flattening and the same two-binary-search query path, one CSR block
/// set per compiled collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCollectiveSelector {
    name: String,
    per: Vec<Option<CollCsr>>, // indexed by Collective::index()
}

impl CompiledCollectiveSelector {
    /// Materialises `selector` over the grids for each listed
    /// collective and compiles the results.
    ///
    /// # Panics
    ///
    /// Panics if `collectives` is empty or either grid is empty or
    /// unsorted.
    pub fn compile(
        selector: &dyn CollectiveSelector,
        collectives: &[Collective],
        comm_sizes: &[usize],
        msg_sizes: &[usize],
    ) -> Self {
        assert!(!collectives.is_empty(), "need at least one collective");
        let tables: Vec<CollDecisionTable> = collectives
            .iter()
            .map(|&c| CollDecisionTable::generate(selector, c, comm_sizes, msg_sizes))
            .collect();
        Self::from_tables(&tables, &format!("compiled({})", selector.name()))
    }

    /// Flattens existing per-collective decision tables.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty, names a collective twice, or any
    /// table violates the CSR contract (empty blocks, unsorted
    /// thresholds).
    pub fn from_tables(tables: &[CollDecisionTable], name: &str) -> Self {
        assert!(!tables.is_empty(), "need at least one decision table");
        let mut per: Vec<Option<CollCsr>> = (0..Collective::ALL.len()).map(|_| None).collect();
        for t in tables {
            let slot = &mut per[t.collective.index()];
            assert!(
                slot.is_none(),
                "duplicate decision table for {}",
                t.collective
            );
            *slot = Some(CollCsr::from_table(t));
        }
        CompiledCollectiveSelector {
            name: name.to_owned(),
            per,
        }
    }

    /// Whether `collective` was compiled into this selector.
    pub fn covers(&self, collective: Collective) -> bool {
        self.per[collective.index()].is_some()
    }

    /// The compiled collectives, in [`Collective::ALL`] order.
    pub fn collectives(&self) -> Vec<Collective> {
        Collective::ALL
            .into_iter()
            .filter(|&c| self.covers(c))
            .collect()
    }

    /// Answers a query with two binary searches; no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `collective` was not compiled (check [`covers`]
    /// (Self::covers) or compile every collective you serve).
    pub fn lookup(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        self.per[collective.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("collective {collective} was not compiled"))
            .lookup(p, m)
    }

    /// Total number of compiled rules across all collectives.
    pub fn rule_count(&self) -> usize {
        self.per
            .iter()
            .flatten()
            .map(|csr| csr.selections.len())
            .sum()
    }
}

impl CollectiveSelector for CompiledCollectiveSelector {
    fn select_for(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        self.lookup(collective, p, m)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The underlying decision path of a [`CollectiveDecisionService`].
#[derive(Debug)]
enum MultiServePath {
    Compiled(CompiledCollectiveSelector),
    Live(Box<dyn CollectiveSelector + Send + Sync>),
    Graceful(GracefulCollectiveSelector),
}

/// Thread-safe serving front end for multi-collective decisions — the
/// breadth twin of [`DecisionService`](crate::DecisionService), with the
/// cache keyed by `(collective, p, m)`.
#[derive(Debug)]
pub struct CollectiveDecisionService {
    path: EpochSwap<MultiServePath>,
    cache: Option<Mutex<QueryCache<(Collective, usize, usize), (CollSelection, u64)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
}

/// Queries per pool job in [`CollectiveDecisionService::decide_batch`]
/// (fixed so the job list is thread-count-independent, as in the
/// broadcast service).
const BATCH_CHUNK: usize = 256;

impl CollectiveDecisionService {
    fn new(path: MultiServePath) -> Self {
        CollectiveDecisionService {
            path: EpochSwap::new(path),
            cache: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Serves from compiled per-collective tables (the fast path).
    pub fn compiled(tables: CompiledCollectiveSelector) -> Self {
        Self::new(MultiServePath::Compiled(tables))
    }

    /// Serves by querying `selector` live.
    pub fn live<S: CollectiveSelector + Send + Sync + 'static>(selector: S) -> Self {
        Self::new(MultiServePath::Live(Box::new(selector)))
    }

    /// Serves from a [`GracefulCollectiveSelector`], counting rule-path
    /// decisions in the `fallbacks` counter.
    pub fn graceful(selector: GracefulCollectiveSelector) -> Self {
        Self::new(MultiServePath::Graceful(selector))
    }

    /// Adds an exact-query cache of `capacity` entries with
    /// seeded-random eviction.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (omit the cache instead).
    pub fn with_cache(mut self, capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        self.cache = Some(Mutex::new(QueryCache::new(capacity, seed)));
        self
    }

    /// Whether the service currently wraps compiled tables.
    pub fn is_compiled(&self) -> bool {
        self.path.read(|p| matches!(p, MultiServePath::Compiled(_)))
    }

    /// The current selector generation (1 initially, +1 per install).
    pub fn epoch(&self) -> u64 {
        self.path.epoch()
    }

    /// Atomically installs new compiled tables as the serving path;
    /// returns the new generation. In-flight queries finish on the
    /// generation they pinned; cached answers from older generations
    /// stop hitting immediately (epoch tag mismatch).
    pub fn install_compiled(&self, tables: CompiledCollectiveSelector) -> u64 {
        self.path.swap(MultiServePath::Compiled(tables))
    }

    /// Atomically installs a live selector as the serving path.
    pub fn install_live<S: CollectiveSelector + Send + Sync + 'static>(&self, selector: S) -> u64 {
        self.path.swap(MultiServePath::Live(Box::new(selector)))
    }

    /// Atomically installs a [`GracefulCollectiveSelector`] as the
    /// serving path.
    pub fn install_graceful(&self, selector: GracefulCollectiveSelector) -> u64 {
        self.path.swap(MultiServePath::Graceful(selector))
    }

    /// Decides one query, consulting the cache first. A cached answer
    /// is served only if it was computed by the current selector
    /// generation (epoch tag match), so hot swaps can never leak stale
    /// picks.
    pub fn decide(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        let path = self.path.pin();
        let epoch = path.epoch();
        if let Some(cache) = &self.cache {
            if let Some((sel, tag)) = cache.lock().expect("cache lock").get((collective, p, m)) {
                if tag == epoch {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return sel;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sel = match &*path {
            MultiServePath::Compiled(tables) => tables.lookup(collective, p, m),
            MultiServePath::Live(selector) => selector.select_for(collective, p, m),
            MultiServePath::Graceful(graceful) => {
                let d = graceful.decide_for(collective, p, m);
                if !d.source.is_model() {
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                }
                d.selection
            }
        };
        if let Some(cache) = &self.cache {
            cache
                .lock()
                .expect("cache lock")
                .insert((collective, p, m), (sel, epoch));
        }
        sel
    }

    /// Decides a whole query stream, fanned across `pool` in fixed-size
    /// chunks; results come back in query order, bit-identical at any
    /// thread count.
    pub fn decide_batch(
        &self,
        queries: &[(Collective, usize, usize)],
        pool: &Pool,
    ) -> Vec<CollSelection> {
        let per_chunk = pool.run(queries.chunks(BATCH_CHUNK).map(|chunk| {
            move || {
                chunk
                    .iter()
                    .map(|&(c, p, m)| self.decide(c, p, m))
                    .collect::<Vec<CollSelection>>()
            }
        }));
        let mut out = Vec::with_capacity(queries.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        out
    }

    /// Snapshot of the hit/miss/fallback counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Entries currently resident in the cache (0 without one).
    pub fn cached_entries(&self) -> usize {
        self.cache
            .as_ref()
            .map_or(0, |c| c.lock().expect("cache lock").len())
    }
}

impl CollectiveSelector for CollectiveDecisionService {
    fn select_for(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        self.decide(collective, p, m)
    }

    fn name(&self) -> &str {
        self.path.read(|p| match p {
            MultiServePath::Compiled(_) => "multi-service(compiled)",
            MultiServePath::Live(_) => "multi-service(live)",
            MultiServePath::Graceful(_) => "multi-service(graceful)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_coll::BcastAlg;

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.11), (4, 1.22), (5, 1.28), (6, 1.45), (7, 1.54)])
    }

    fn all_params(alpha: f64, beta: f64) -> BTreeMap<Alg, Hockney> {
        Collective::ALL
            .iter()
            .flat_map(|c| c.algorithms())
            .enumerate()
            .map(|(i, &alg)| (alg, Hockney::new(alpha * (1.0 + i as f64 * 0.1), beta)))
            .collect()
    }

    #[test]
    fn fixed_rules_always_return_the_queried_collective() {
        for c in Collective::ALL {
            for p in [1usize, 2, 5, 16, 90, 200] {
                for m in [0usize, 100, 8192, 1 << 20, 8 << 20] {
                    let s = fixed_selection(c, p, m);
                    assert_eq!(s.alg.collective(), c, "p={p} m={m}");
                }
            }
        }
    }

    #[test]
    fn fixed_bcast_arm_equals_the_faithful_port() {
        for p in [2usize, 16, 90, 128] {
            for m in [100usize, 8192, 512 * 1024, 4 << 20] {
                let multi = fixed_selection(Collective::Bcast, p, m);
                let mono = OpenMpiFixedSelector.select(p, m);
                assert_eq!(multi.alg, Alg::Bcast(mono.alg));
                assert_eq!(multi.seg_size, mono.seg_size);
            }
        }
    }

    #[test]
    fn model_selector_picks_argmin_of_ranking() {
        let sel = CollectiveModelSelector::new(gamma(), all_params(1e-6, 1e-9), 8192);
        for c in Collective::ALL {
            let ranking = sel.ranking(c, 24, 1 << 20);
            assert_eq!(ranking.len(), c.algorithms().len());
            assert_eq!(sel.select_for(c, 24, 1 << 20).alg, ranking[0].0);
        }
    }

    #[test]
    fn empty_params_fall_back_to_fixed_rules() {
        let sel = CollectiveModelSelector::new(gamma(), BTreeMap::new(), 8192);
        for c in Collective::ALL {
            assert_eq!(sel.select_for(c, 16, 8192), fixed_selection(c, 16, 8192));
        }
    }

    #[test]
    fn graceful_reports_fallback_reason_per_collective() {
        // Only reduce has (valid) fits: reduce queries take the model
        // path, everything else falls back with NoUsableModel.
        let params: BTreeMap<Alg, Hockney> = Collective::Reduce
            .algorithms()
            .iter()
            .map(|&a| (a, Hockney::new(1e-6, 1e-9)))
            .collect();
        let validity: BTreeMap<Alg, FitValidity> =
            params.keys().map(|&a| (a, FitValidity::Valid)).collect();
        let sel = GracefulCollectiveSelector::new(gamma(), params, validity, 8192);
        let d = sel.decide_for(Collective::Reduce, 24, 1 << 20);
        assert!(d.source.is_model(), "{d}");
        for c in [Collective::Bcast, Collective::Gather, Collective::Alltoall] {
            let d = sel.decide_for(c, 24, 1 << 20);
            assert!(!d.source.is_model(), "{c}: {d}");
            assert_eq!(d.selection, fixed_selection(c, 24, 1 << 20));
        }
    }

    #[test]
    fn graceful_carries_specific_fallback_causes() {
        // Three collectives in three failure shapes: reduce has valid
        // fits (model path); gather's fits all failed validation
        // (InvalidFit); scatter never produced fits because estimation
        // timed out (recorded failure → EstimationTimeout); alltoall's
        // estimation never converged (PrecisionNotReached).
        let mut params: BTreeMap<Alg, Hockney> = BTreeMap::new();
        let mut validity: BTreeMap<Alg, FitValidity> = BTreeMap::new();
        for &a in Collective::Reduce.algorithms() {
            params.insert(a, Hockney::new(1e-6, 1e-9));
            validity.insert(a, FitValidity::Valid);
        }
        for &a in Collective::Gather.algorithms() {
            params.insert(a, Hockney::new(1e-6, 1e-9));
            validity.insert(a, FitValidity::Degenerate);
        }
        let mut failures: BTreeMap<Alg, FallbackReason> = BTreeMap::new();
        for &a in Collective::Scatter.algorithms() {
            failures.insert(a, FallbackReason::EstimationTimeout);
        }
        for &a in Collective::Alltoall.algorithms() {
            failures.insert(a, FallbackReason::PrecisionNotReached);
        }
        let sel = GracefulCollectiveSelector::new(gamma(), params, validity, 8192)
            .with_failures(failures);
        assert!(sel
            .decide_for(Collective::Reduce, 24, 1 << 20)
            .source
            .is_model());
        let cases = [
            (Collective::Gather, FallbackReason::InvalidFit),
            (Collective::Scatter, FallbackReason::EstimationTimeout),
            (Collective::Alltoall, FallbackReason::PrecisionNotReached),
            (Collective::Allgather, FallbackReason::NoUsableModel),
        ];
        for (c, want) in cases {
            let d = sel.decide_for(c, 24, 1 << 20);
            assert_eq!(
                d.source.fallback_reason(),
                Some(want),
                "{c}: expected {want:?}, got {:?}",
                d.source
            );
            assert_eq!(d.selection, fixed_selection(c, 24, 1 << 20));
        }
    }

    #[test]
    fn decisions_and_causes_round_trip_through_json() {
        use collsel_support::{FromJson, ToJson};
        let mut params: BTreeMap<Alg, Hockney> = BTreeMap::new();
        let mut validity: BTreeMap<Alg, FitValidity> = BTreeMap::new();
        for &a in Collective::Reduce.algorithms() {
            params.insert(a, Hockney::new(1e-6, 1e-9));
            validity.insert(a, FitValidity::Valid);
        }
        let failures: BTreeMap<Alg, FallbackReason> = Collective::Scatter
            .algorithms()
            .iter()
            .map(|&a| (a, FallbackReason::EstimationTimeout))
            .collect();
        let sel = GracefulCollectiveSelector::new(gamma(), params, validity, 8192)
            .with_failures(failures);
        // One model decision and one attributed fallback per shape.
        for (c, p, m) in [
            (Collective::Reduce, 24usize, 1usize << 20),
            (Collective::Scatter, 24, 1 << 20),
            (Collective::Bcast, 16, 8192),
        ] {
            let d = sel.decide_for(c, p, m);
            let json = d.to_json();
            let text = json.to_string_pretty();
            let parsed = collsel_support::Json::parse(&text).expect("round-trip parse");
            let back = CollDecision::from_json(&parsed).expect("round-trip decode");
            assert_eq!(back, d, "{c}: JSON round-trip must preserve the decision");
            if let Some(reason) = d.source.fallback_reason() {
                assert_eq!(back.source.fallback_reason(), Some(reason));
            }
        }
    }

    #[test]
    fn multi_stale_cache_hits_are_impossible_across_a_swap() {
        // Two generations that disagree everywhere: a graceful selector
        // with no fits (fixed rules) vs a model selector.
        let model = CollectiveModelSelector::new(gamma(), all_params(1e-6, 1e-9), 8192);
        let svc = CollectiveDecisionService::live(OpenMpiCollectiveSelector).with_cache(32, 5);
        assert_eq!(svc.epoch(), 1);
        let before = svc.decide(Collective::Reduce, 24, 1 << 20);
        assert_eq!(before, svc.decide(Collective::Reduce, 24, 1 << 20));
        assert_eq!(svc.stats().hits, 1, "warm cache before the swap");

        let epoch = svc.install_live(model.clone());
        assert_eq!(epoch, 2);
        let after = svc.decide(Collective::Reduce, 24, 1 << 20);
        assert_eq!(
            after,
            model.select_for(Collective::Reduce, 24, 1 << 20),
            "post-swap answers come from the new generation"
        );
        assert_eq!(svc.stats().hits, 1, "no stale hit across the swap");
        assert_eq!(after, svc.decide(Collective::Reduce, 24, 1 << 20));
        assert_eq!(svc.stats().hits, 2, "re-tagged entry hits again");
    }

    #[test]
    fn compiled_matches_live_on_and_off_grid() {
        let sel = CollectiveModelSelector::new(gamma(), all_params(1e-6, 1e-9), 8192);
        let comms = [4usize, 16, 64, 128];
        let msgs = [1024usize, 64 * 1024, 1 << 20];
        let compiled = CompiledCollectiveSelector::compile(&sel, &Collective::ALL, &comms, &msgs);
        assert_eq!(compiled.collectives(), Collective::ALL.to_vec());
        for c in Collective::ALL {
            let table = CollDecisionTable::generate(&sel, c, &comms, &msgs);
            for &p in &comms {
                for &m in &msgs {
                    assert_eq!(
                        compiled.lookup(c, p, m),
                        sel.select_for(c, p, m),
                        "{c} grid"
                    );
                }
            }
            for (p, m) in [(1usize, 0usize), (9, 5000), (50, 9 << 20), (300, 123)] {
                assert_eq!(
                    Some(compiled.lookup(c, p, m)),
                    table.lookup(p, m),
                    "{c} off-grid p={p} m={m}"
                );
            }
        }
    }

    /// The satellite regression: a cache keyed by `(p, m)` alone would
    /// return the *bcast* answer for a *reduce* query at the same
    /// geometry. The service cache keys by `(collective, p, m)`, so two
    /// collectives sharing every `(p, m)` stay distinct.
    #[test]
    fn cache_never_crosses_collectives() {
        let sel = CollectiveModelSelector::new(gamma(), all_params(1e-6, 1e-9), 8192);
        let svc = CollectiveDecisionService::live(sel.clone()).with_cache(64, 0xBEEF);
        for (p, m) in [(16usize, 8192usize), (90, 1 << 20), (16, 8192)] {
            for c in Collective::ALL {
                let got = svc.decide(c, p, m);
                assert_eq!(got, sel.select_for(c, p, m), "{c} p={p} m={m}");
                assert_eq!(got.alg.collective(), c, "{c} p={p} m={m}");
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.hits, 7, "third round repeats the first exactly");
        assert_eq!(stats.misses, 14);
    }

    #[test]
    fn decide_batch_is_thread_count_invariant() {
        let sel = CollectiveModelSelector::new(gamma(), all_params(1e-6, 1e-9), 8192);
        let compiled = CompiledCollectiveSelector::compile(
            &sel,
            &Collective::ALL,
            &[2, 8, 32, 128],
            &[1024, 64 * 1024, 4 << 20],
        );
        let queries: Vec<(Collective, usize, usize)> = (0..600usize)
            .map(|i| {
                (
                    Collective::ALL[i % Collective::ALL.len()],
                    2 + i % 140,
                    i * 997,
                )
            })
            .collect();
        let reference: Vec<CollSelection> = queries
            .iter()
            .map(|&(c, p, m)| compiled.lookup(c, p, m))
            .collect();
        for threads in [1usize, 2, 5] {
            let svc = CollectiveDecisionService::compiled(compiled.clone()).with_cache(32, 9);
            let got = svc.decide_batch(&queries, &Pool::with_threads(threads));
            assert_eq!(got, reference, "threads={threads}");
            assert_eq!(svc.stats().queries(), queries.len() as u64);
        }
    }

    #[test]
    fn ompi_export_names_each_collectives_own_id() {
        let sel = OpenMpiCollectiveSelector;
        let reduce =
            CollDecisionTable::generate(&sel, Collective::Reduce, &[16, 64], &[1024, 1 << 20]);
        let bcast =
            CollDecisionTable::generate(&sel, Collective::Bcast, &[16, 64], &[1024, 1 << 20]);
        let s = to_ompi_rules_multi(&[bcast, reduce]);
        assert!(s.starts_with("2 # num of collectives\n"), "{s}");
        assert!(s.contains("7 # collective id (bcast)"), "{s}");
        assert!(
            s.contains("11 # collective id (reduce)"),
            "a reduce table must emit Open MPI's reduce id, not broadcast's: {s}"
        );
    }

    #[test]
    #[should_panic(expected = "was not compiled")]
    fn lookup_of_uncompiled_collective_panics_clearly() {
        let compiled = CompiledCollectiveSelector::compile(
            &OpenMpiCollectiveSelector,
            &[Collective::Bcast],
            &[16],
            &[1024],
        );
        assert!(compiled.covers(Collective::Bcast));
        assert!(!compiled.covers(Collective::Reduce));
        let _ = compiled.lookup(Collective::Reduce, 16, 1024);
    }

    #[test]
    fn coll_selection_json_round_trips() {
        use collsel_support::{FromJson, ToJson};
        for s in [
            CollSelection::segmented(Alg::Bcast(BcastAlg::Binomial), 8192),
            CollSelection::unsegmented(Alg::Gather(GatherAlg::Linear)),
        ] {
            assert_eq!(CollSelection::from_json(&s.to_json()).unwrap(), s);
        }
    }
}
