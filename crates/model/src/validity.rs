//! Fit-validity verdicts for per-algorithm model parameters.
//!
//! A tuned model's per-algorithm `(α, β)` fit may be unusable for
//! several distinct reasons — the regression produced non-finite
//! values, the fit is degenerate (both parameters zero), or the
//! underlying measurements never reached the precision target. The
//! selection layer uses this verdict to decide, per algorithm, whether
//! the model may be trusted or the Open MPI fallback rules must decide
//! instead.

use std::fmt;

/// Verdict on one per-algorithm `(α, β)` fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FitValidity {
    /// The fit is finite, non-degenerate and every underlying
    /// measurement converged.
    Valid,
    /// At least one underlying measurement missed the precision target;
    /// carries the worst achieved relative CI half-width.
    Unconverged {
        /// Worst relative 95% CI half-width among the fit's points.
        achieved: f64,
    },
    /// α or β is non-finite or negative — the regression failed.
    NonFinite,
    /// Both α and β collapsed to zero: the model predicts zero cost for
    /// everything and must not be used for ranking.
    Degenerate,
}

impl FitValidity {
    /// Whether predictions from this fit may be trusted.
    pub fn is_valid(&self) -> bool {
        matches!(self, FitValidity::Valid)
    }

    /// Judges a Hockney pair together with the convergence record of
    /// the measurements behind it. `worst_ci` is the worst relative CI
    /// half-width among non-converged points (ignored when
    /// `all_converged`).
    pub fn judge(alpha: f64, beta: f64, all_converged: bool, worst_ci: f64) -> FitValidity {
        if !alpha.is_finite() || !beta.is_finite() || alpha < 0.0 || beta < 0.0 {
            FitValidity::NonFinite
        } else if alpha == 0.0 && beta == 0.0 {
            FitValidity::Degenerate
        } else if !all_converged {
            FitValidity::Unconverged { achieved: worst_ci }
        } else {
            FitValidity::Valid
        }
    }
}

impl fmt::Display for FitValidity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitValidity::Valid => write!(f, "valid"),
            FitValidity::Unconverged { achieved } => {
                write!(f, "unconverged (CI {:.1}% of mean)", 100.0 * achieved)
            }
            FitValidity::NonFinite => write!(f, "non-finite"),
            FitValidity::Degenerate => write!(f, "degenerate (alpha = beta = 0)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn judge_covers_the_ladder() {
        assert_eq!(
            FitValidity::judge(1e-5, 1e-9, true, 0.0),
            FitValidity::Valid
        );
        assert_eq!(
            FitValidity::judge(f64::NAN, 1e-9, true, 0.0),
            FitValidity::NonFinite
        );
        assert_eq!(
            FitValidity::judge(1e-5, f64::INFINITY, true, 0.0),
            FitValidity::NonFinite
        );
        assert_eq!(
            FitValidity::judge(-1.0, 1e-9, true, 0.0),
            FitValidity::NonFinite
        );
        assert_eq!(
            FitValidity::judge(0.0, 0.0, true, 0.0),
            FitValidity::Degenerate
        );
        assert_eq!(
            FitValidity::judge(1e-5, 1e-9, false, 0.08),
            FitValidity::Unconverged { achieved: 0.08 }
        );
        assert!(FitValidity::Valid.is_valid());
        assert!(!FitValidity::Degenerate.is_valid());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(FitValidity::Valid.to_string(), "valid");
        let u = FitValidity::Unconverged { achieved: 0.125 };
        assert!(u.to_string().contains("12.5%"));
        assert!(FitValidity::Degenerate.to_string().contains("degenerate"));
    }
}
