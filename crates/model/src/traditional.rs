//! Traditional analytical models, built from the algorithms'
//! *high-level mathematical definitions* (Thakur et al. 2005,
//! Pjevsivac-Grbovic et al. 2007).
//!
//! These are the models the paper shows to be insufficient for
//! algorithm selection (Fig. 1): they ignore the implementation details
//! the derived models capture — the staged non-blocking linear
//! broadcasts (γ), the actual tree shapes, and the segmentation of the
//! binomial algorithm. They are kept here to regenerate Fig. 1 and the
//! model-ablation benchmarks.
//!
//! Unlike the per-algorithm parameters of the derived models, the
//! traditional models are evaluated with a single *network-level*
//! Hockney pair measured by point-to-point round-trips.

use crate::derived::num_segments;
use crate::hockney::{Coefficients, Hockney};
use collsel_coll::{BcastAlg, DEFAULT_CHAIN_FANOUT};

/// `⌈log₂ p⌉` for `p ≥ 1`.
fn ceil_log2(p: usize) -> usize {
    if p <= 1 {
        0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as usize
    }
}

/// Cost coefficients of `alg` under its textbook definition.
///
/// # Panics
///
/// Panics if `seg_size` is zero.
pub fn bcast_coefficients(alg: BcastAlg, p: usize, m: usize, seg_size: usize) -> Coefficients {
    if p <= 1 {
        return Coefficients::ZERO;
    }
    let ns = num_segments(m, seg_size);
    let m_s = m as f64 / ns as f64;
    match alg {
        // P-1 sequential sends of the whole message.
        BcastAlg::Linear => {
            let n = (p - 1) as f64;
            Coefficients::new(n, n * m as f64)
        }
        // Textbook pipeline: (P - 1 + ns - 1) segment steps.
        BcastAlg::Chain => {
            let steps = (p - 2 + ns) as f64;
            Coefficients::new(steps, steps * m_s)
        }
        // K chains, root sends each segment K times (serialized sends in
        // the definition).
        BcastAlg::KChain => {
            let k = DEFAULT_CHAIN_FANOUT.min(p - 1);
            let chain_len = (p - 1).div_ceil(k);
            let a = (ns * k + chain_len - 1) as f64;
            Coefficients::new(a, a * m_s)
        }
        // Textbook binary: each level forwards each segment with two
        // serialized sends; depth ⌈log₂(P+1)⌉ - 1.
        BcastAlg::Binary => {
            let depth = ceil_log2(p + 1) - 1;
            let a = 2.0 * (depth + ns - 1) as f64;
            Coefficients::new(a, a * m_s)
        }
        // Textbook split-binary: binary pipeline over half the message
        // plus the final exchange of m/2.
        BcastAlg::SplitBinary => {
            let half = m.div_ceil(2);
            let ns_h = num_segments(half, seg_size);
            let ms_h = half as f64 / ns_h as f64;
            let depth = ceil_log2(p + 1) - 1;
            let a = 2.0 * (depth + ns_h - 1) as f64;
            Coefficients::new(a + 1.0, a * ms_h + half as f64)
        }
        // Textbook binomial: ⌈log₂ P⌉ rounds of the whole message —
        // the definition is unsegmented, which is exactly why it
        // mispredicts the segmented Open MPI implementation (Fig. 1).
        BcastAlg::Binomial => {
            let rounds = ceil_log2(p) as f64;
            Coefficients::new(rounds, rounds * m as f64)
        }
    }
}

/// Predicted execution time (seconds) under the textbook model with a
/// network-level Hockney pair.
pub fn predict_bcast(alg: BcastAlg, p: usize, m: usize, seg_size: usize, hockney: &Hockney) -> f64 {
    hockney.eval(bcast_coefficients(alg, p, m, seg_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(90), 7);
    }

    #[test]
    fn binomial_is_log_rounds_of_full_message() {
        let c = bcast_coefficients(BcastAlg::Binomial, 90, 1 << 20, 8192);
        assert_eq!(c.a, 7.0);
        assert_eq!(c.b, 7.0 * (1 << 20) as f64);
    }

    #[test]
    fn traditional_binomial_ignores_segmentation() {
        let small_seg = bcast_coefficients(BcastAlg::Binomial, 16, 1 << 20, 1024);
        let big_seg = bcast_coefficients(BcastAlg::Binomial, 16, 1 << 20, 1 << 20);
        assert_eq!(small_seg, big_seg);
    }

    #[test]
    fn binary_has_factor_two_per_level() {
        // P = 7, ns = 1: depth = ⌈log₂8⌉-1 = 2, a = 2·(2+0) = 4.
        let c = bcast_coefficients(BcastAlg::Binary, 7, 100, 8192);
        assert_eq!(c.a, 4.0);
    }

    #[test]
    fn single_rank_is_free() {
        for alg in BcastAlg::ALL {
            assert_eq!(bcast_coefficients(alg, 1, 4096, 512), Coefficients::ZERO);
        }
    }

    #[test]
    fn predict_evaluates_hockney() {
        let h = Hockney::new(1e-5, 1e-9);
        let t = predict_bcast(BcastAlg::Linear, 5, 1000, 8192, &h);
        assert!((t - 4.0 * (1e-5 + 1e-6)).abs() < 1e-12);
    }
}
