//! The Hockney point-to-point model `T(m) = α + β·m`.

use std::fmt;

/// Hockney model parameters: latency `α` (seconds) and reciprocal
/// bandwidth `β` (seconds per byte).
///
/// In this reproduction, as in the paper, a *separate* `(α, β)` pair is
/// fitted per collective algorithm (Sect. 4.2): the pair captures the
/// average behaviour of a point-to-point transfer *in the context of
/// that algorithm*, not bare network characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hockney {
    /// Latency in seconds.
    pub alpha: f64,
    /// Reciprocal bandwidth in seconds per byte.
    pub beta: f64,
}

impl Hockney {
    /// Creates a parameter pair.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-finite or negative.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative, got {alpha}"
        );
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be finite and non-negative, got {beta}"
        );
        Hockney { alpha, beta }
    }

    /// Predicted time of a single `m`-byte point-to-point transfer.
    pub fn p2p(&self, m: f64) -> f64 {
        self.alpha + self.beta * m
    }

    /// Evaluates a linear-in-(α, β) cost expression `a·α + b·β` — the
    /// form every collective model in this crate reduces to.
    pub fn eval(&self, coeff: Coefficients) -> f64 {
        coeff.a * self.alpha + coeff.b * self.beta
    }
}

impl fmt::Display for Hockney {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alpha={:.3e}s beta={:.3e}s/B", self.alpha, self.beta)
    }
}

/// A collective cost expressed as coefficients of the Hockney
/// parameters: `T = a·α + b·β`.
///
/// Exposing the coefficients (rather than only the evaluated time) is
/// what makes the paper's estimation procedure possible: each
/// communication experiment contributes one linear equation
/// `a_i·α + b_i·β = T_i`, canonicalised to `α + (b_i/a_i)·β = T_i/a_i`
/// (the system of Fig. 4) and solved by robust regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Multiplier of α (counts message startups).
    pub a: f64,
    /// Multiplier of β (counts bytes on the critical path).
    pub b: f64,
}

impl Coefficients {
    /// The zero cost (empty collective).
    pub const ZERO: Coefficients = Coefficients { a: 0.0, b: 0.0 };

    /// Creates a coefficient pair.
    pub fn new(a: f64, b: f64) -> Self {
        Coefficients { a, b }
    }

    /// Sum of two costs (sequential composition).
    #[must_use]
    pub fn plus(self, other: Coefficients) -> Coefficients {
        Coefficients {
            a: self.a + other.a,
            b: self.b + other.b,
        }
    }

    /// Canonicalises the equation `a·α + b·β = t` to the Fig. 4 form
    /// `α + x·β = y`, returning `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero (no startup term to normalise by).
    pub fn canonicalise(self, t: f64) -> (f64, f64) {
        assert!(
            self.a != 0.0,
            "cannot canonicalise with zero alpha coefficient"
        );
        (self.b / self.a, t / self.a)
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Hockney { alpha, beta });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_affine() {
        let h = Hockney::new(1e-5, 1e-9);
        assert!((h.p2p(0.0) - 1e-5).abs() < 1e-18);
        assert!((h.p2p(1e6) - (1e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn eval_matches_manual() {
        let h = Hockney::new(2.0, 3.0);
        let c = Coefficients::new(5.0, 7.0);
        assert_eq!(h.eval(c), 5.0 * 2.0 + 7.0 * 3.0);
    }

    #[test]
    fn plus_adds_componentwise() {
        let c = Coefficients::new(1.0, 2.0).plus(Coefficients::new(3.0, 4.0));
        assert_eq!(c, Coefficients::new(4.0, 6.0));
    }

    #[test]
    fn canonicalise_produces_fig4_form() {
        // 4·α + 8000·β = 0.02  =>  α + 2000·β = 0.005
        let (x, y) = Coefficients::new(4.0, 8000.0).canonicalise(0.02);
        assert!((x - 2000.0).abs() < 1e-12);
        assert!((y - 0.005).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero alpha coefficient")]
    fn canonicalise_rejects_zero_a() {
        let _ = Coefficients::new(0.0, 1.0).canonicalise(1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn rejects_negative_alpha() {
        let _ = Hockney::new(-1.0, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Hockney::new(5.8e-13, 4.7e-9).to_string();
        assert!(s.contains("5.800e-13"));
        assert!(s.contains("4.700e-9"));
    }
}
