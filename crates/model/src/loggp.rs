//! The LogP/LogGP point-to-point models (related-work baselines).
//!
//! The paper's related-work section (2.2) surveys the classical
//! communication models and their measurement methods: Hockney's
//! (α, β), Culler's LogP (L, o, g) and its large-message extension
//! LogGP (adding the per-byte gap G). This module provides LogGP as a
//! second point-to-point model so the library can express and compare
//! the lineage; the collective models themselves stay Hockney-based as
//! in the paper.

use std::fmt;

/// LogGP parameters, all in seconds (G in seconds per byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGP {
    /// `L`: network latency upper bound.
    pub latency: f64,
    /// `o_s`: CPU overhead of sending a message.
    pub send_overhead: f64,
    /// `o_r`: CPU overhead of receiving a message.
    pub recv_overhead: f64,
    /// `g`: minimum gap between consecutive message injections.
    pub gap: f64,
    /// `G`: gap per byte (reciprocal bandwidth for long messages).
    pub gap_per_byte: f64,
}

impl LogGP {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite.
    pub fn new(
        latency: f64,
        send_overhead: f64,
        recv_overhead: f64,
        gap: f64,
        gap_per_byte: f64,
    ) -> Self {
        for (name, v) in [
            ("latency", latency),
            ("send_overhead", send_overhead),
            ("recv_overhead", recv_overhead),
            ("gap", gap),
            ("gap_per_byte", gap_per_byte),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "LogGP {name} must be finite and non-negative, got {v}"
            );
        }
        LogGP {
            latency,
            send_overhead,
            recv_overhead,
            gap,
            gap_per_byte,
        }
    }

    /// Predicted one-way time of an `m`-byte message:
    /// `o_s + (m-1)·G + L + o_r` (the standard LogGP point-to-point).
    pub fn p2p(&self, m: f64) -> f64 {
        self.send_overhead
            + (m - 1.0).max(0.0) * self.gap_per_byte
            + self.latency
            + self.recv_overhead
    }

    /// Predicted time for a sender to inject `n` back-to-back messages
    /// of `m` bytes (`o_s + (n-1)·max(g, m·G) + (m-1)·G`): the sender
    /// side of the non-blocking linear broadcast.
    pub fn injection_time(&self, n: usize, m: f64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let per_msg = self.gap.max(m * self.gap_per_byte);
        self.send_overhead + (n as f64 - 1.0) * per_msg + (m - 1.0).max(0.0) * self.gap_per_byte
    }

    /// The Hockney pair this LogGP degenerates to for long messages
    /// (`α = o_s + L + o_r`, `β = G`).
    pub fn as_hockney(&self) -> crate::hockney::Hockney {
        crate::hockney::Hockney::new(
            self.send_overhead + self.latency + self.recv_overhead,
            self.gap_per_byte,
        )
    }
}

impl fmt::Display for LogGP {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L={:.2e}s o_s={:.2e}s o_r={:.2e}s g={:.2e}s G={:.2e}s/B",
            self.latency, self.send_overhead, self.recv_overhead, self.gap, self.gap_per_byte
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LogGP {
        LogGP::new(30e-6, 2e-6, 2e-6, 1e-6, 0.8e-9)
    }

    #[test]
    fn p2p_components_add_up() {
        let p = params();
        let t = p.p2p(1.0);
        assert!((t - (2e-6 + 30e-6 + 2e-6)).abs() < 1e-15);
        let big = p.p2p(1e6);
        assert!(big > t + 0.7e-3);
    }

    #[test]
    fn zero_byte_message_costs_no_bandwidth() {
        let p = params();
        assert!((p.p2p(0.0) - p.p2p(1.0)).abs() < 1e-15);
    }

    #[test]
    fn injection_respects_gap_floor() {
        let p = params();
        // Tiny messages: the per-message cost is g, not m·G.
        let t = p.injection_time(11, 8.0);
        assert!((t - (2e-6 + 10.0 * 1e-6 + 7.0 * 0.8e-9)).abs() < 1e-12);
        // Large messages: m·G dominates g.
        let t = p.injection_time(3, 1e6);
        assert!(t > 2.0 * 1e6 * 0.8e-9);
        assert_eq!(p.injection_time(0, 1e6), 0.0);
    }

    #[test]
    fn hockney_degeneration() {
        let h = params().as_hockney();
        assert!((h.alpha - 34e-6).abs() < 1e-12);
        assert!((h.beta - 0.8e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_negative_parameters() {
        let _ = LogGP::new(-1.0, 0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn display_shows_all_five() {
        let s = params().to_string();
        for key in ["L=", "o_s=", "o_r=", "g=", "G="] {
            assert!(s.contains(key), "{s}");
        }
    }
}
