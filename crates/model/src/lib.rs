//! # collsel-model
//!
//! Analytical performance models of the Open MPI broadcast algorithms —
//! the first half of the paper's contribution.
//!
//! Two families live here:
//!
//! * [`derived`] — **implementation-derived** models (paper Sect. 3):
//!   read off the ported code, staged as non-blocking linear broadcasts
//!   weighted by the platform factor γ(P) ([`GammaTable`]); evaluated
//!   with a *per-algorithm* Hockney pair ([`Hockney`]).
//! * [`traditional`] — textbook models built from the algorithms'
//!   mathematical definitions, as in prior work; kept to regenerate the
//!   paper's Fig. 1 and the model-ablation study.
//!
//! Every model is linear in `(α, β)` once γ is fixed, so costs are
//! exposed as [`Coefficients`] `(a, b)` with `T = a·α + b·β`; this is
//! what lets the estimation crate assemble the linear system of the
//! paper's Fig. 4 directly from the models.
//!
//! ```
//! use collsel_coll::BcastAlg;
//! use collsel_model::{derived, GammaTable, Hockney};
//!
//! let gamma = GammaTable::from_pairs([(3, 1.11), (5, 1.28), (7, 1.54)]);
//! let hockney = Hockney::new(3.0e-5, 1.0e-9);
//! let t = derived::predict_bcast(BcastAlg::Binomial, 90, 1 << 20, 8192, &gamma, &hockney);
//! assert!(t > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collectives;
pub mod derived;
mod gamma;
mod hockney;
mod loggp;
pub mod reduce_ext;
pub mod traditional;
mod validity;

pub use gamma::GammaTable;
pub use hockney::{Coefficients, Hockney};
pub use loggp::LogGP;
pub use validity::FitValidity;
