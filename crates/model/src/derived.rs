//! Implementation-derived analytical models (the paper's Sect. 3).
//!
//! Each model is read off the *ported implementation* in
//! [`collsel-coll`](collsel_coll), not from the algorithm's textbook
//! definition. Two implementation details drive every formula:
//!
//! 1. segmented algorithms proceed in **stages**, one per segment per
//!    tree level, and each stage is a *non-blocking linear broadcast* to
//!    that node's children, costed `γ(children+1)·(α + m_s·β)` (Eq. 2);
//! 2. tree heights come from the **actual topology builders** (the same
//!    code the algorithms run), not from idealised `log₂ P` formulas.
//!
//! Every cost is returned as [`Coefficients`] `(a, b)` with
//! `T = a·α + b·β`, which the estimation crate turns into the linear
//! system of the paper's Fig. 4.

use crate::gamma::GammaTable;
use crate::hockney::{Coefficients, Hockney};
use collsel_coll::{BcastAlg, Topology, DEFAULT_CHAIN_FANOUT};

/// Number of pipeline segments (matches the implementation:
/// `ceil(m / seg)`, at least 1).
pub fn num_segments(m: usize, seg_size: usize) -> usize {
    assert!(seg_size > 0, "segment size must be positive");
    m.div_ceil(seg_size).max(1)
}

/// Cost coefficients of broadcasting `m` bytes to `p` ranks with `alg`
/// using `seg_size`-byte segments, under the γ table `gamma`.
///
/// # Panics
///
/// Panics if `seg_size` is zero.
pub fn bcast_coefficients(
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    gamma: &GammaTable,
) -> Coefficients {
    if p <= 1 {
        return Coefficients::ZERO;
    }
    let ns = num_segments(m, seg_size);
    let m_s = m as f64 / ns as f64;
    match alg {
        // Root posts P-1 non-blocking sends of the whole message and
        // waits for all: one γ(P)-weighted transfer of m bytes.
        BcastAlg::Linear => {
            let g = gamma.gamma(p);
            Coefficients::new(g, g * m as f64)
        }
        // Single chain: the pipeline fills over P-1 hops, then drains
        // one segment per stage; every stage is a 1-child transfer
        // (γ(2) = 1).
        BcastAlg::Chain => {
            let stages = (p - 2 + ns) as f64;
            Coefficients::new(stages, stages * m_s)
        }
        // K chains: the root pumps every segment to K chain heads
        // (γ(K+1) per stage); the last segment then travels the rest of
        // the longest chain at γ(2) = 1 per hop.
        BcastAlg::KChain => {
            let k = DEFAULT_CHAIN_FANOUT.min(p - 1);
            let chain_len = (p - 1).div_ceil(k);
            let g = gamma.gamma(k + 1);
            let a = ns as f64 * g + (chain_len - 1) as f64;
            Coefficients::new(a, a * m_s)
        }
        // Split-binary: each half (⌈m/2⌉ bytes) pipelines down one
        // subtree of the in-order binary tree (γ(3) stages), then the
        // halves are swapped pairwise — one extra m/2-byte transfer.
        BcastAlg::SplitBinary => {
            if p < 3 {
                // Degenerates to the linear broadcast (see the port).
                return bcast_coefficients(BcastAlg::Linear, p, m, seg_size, gamma);
            }
            let half = m.div_ceil(2);
            let ns_h = num_segments(half, seg_size);
            let ms_h = half as f64 / ns_h as f64;
            let depth = Topology::in_order_binary(p, 0).height() as f64;
            let pipe = (depth + ns_h as f64 - 1.0) * gamma.gamma(3);
            Coefficients::new(pipe + 1.0, pipe * ms_h + (m as f64 - half as f64).max(1.0))
        }
        // Heap binary tree: fill over the tree height, then one segment
        // per γ(3) stage.
        BcastAlg::Binary => {
            let depth = Topology::binary(p, 0).height() as f64;
            let a = (depth + ns as f64 - 1.0) * gamma.gamma(3);
            Coefficients::new(a, a * m_s)
        }
        // Balanced binomial tree: paper Eq. 6. The root repeats its
        // ⌈log₂P⌉-child linear broadcast n_s times; the fill phase
        // descends the tree through progressively smaller linear
        // broadcasts.
        BcastAlg::Binomial => {
            let h_floor = (usize::BITS - 1 - p.leading_zeros()) as usize; // ⌊log₂ p⌋
            let h_ceil = (usize::BITS - (p - 1).leading_zeros()) as usize; // ⌈log₂ p⌉
            let mut a = ns as f64 * gamma.gamma(h_ceil + 1) - 1.0;
            for i in 1..h_floor {
                a += gamma.gamma(h_ceil - i + 1);
            }
            let a = a.max(1.0);
            Coefficients::new(a, a * m_s)
        }
    }
}

/// Predicted execution time (seconds) of a broadcast under `hockney`.
pub fn predict_bcast(
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    gamma: &GammaTable,
    hockney: &Hockney,
) -> f64 {
    hockney.eval(bcast_coefficients(alg, p, m, seg_size, gamma))
}

/// Cost coefficients of the linear gather without synchronisation of
/// `m_g`-byte contributions from `p - 1` peers (paper Eq. 8):
/// `(P-1)·(α + m_g·β)`.
pub fn gather_linear_coefficients(p: usize, m_g: usize) -> Coefficients {
    if p <= 1 {
        return Coefficients::ZERO;
    }
    let n = (p - 1) as f64;
    Coefficients::new(n, n * m_g as f64)
}

/// Cost coefficients of the flat linear scatter of `m`-byte blocks
/// (extension): `(P-1)·(α + m·β)`, the root's serialized sends.
pub fn scatter_linear_coefficients(p: usize, m: usize) -> Coefficients {
    gather_linear_coefficients(p, m)
}

/// Cost coefficients of the binomial-tree scatter of `m`-byte blocks
/// (extension): `⌈log₂P⌉` startups on the critical path, moving
/// half the remaining payload at each level — `Σ 2^{-i}·P·m` bytes ≈
/// `(P-1)·m` on the root's critical path.
pub fn scatter_binomial_coefficients(p: usize, m: usize) -> Coefficients {
    if p <= 1 {
        return Coefficients::ZERO;
    }
    let h_ceil = (usize::BITS - (p - 1).leading_zeros()) as f64;
    Coefficients::new(h_ceil, (p - 1) as f64 * m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_gamma() -> GammaTable {
        GammaTable::ones()
    }

    fn grisou_gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.114), (4, 1.219), (5, 1.283), (6, 1.451), (7, 1.540)])
    }

    #[test]
    fn single_rank_costs_nothing() {
        for alg in BcastAlg::ALL {
            let c = bcast_coefficients(alg, 1, 1 << 20, 8192, &flat_gamma());
            assert_eq!(c, Coefficients::ZERO);
        }
    }

    #[test]
    fn linear_grows_linearly_in_message() {
        let g = grisou_gamma();
        let c1 = bcast_coefficients(BcastAlg::Linear, 8, 1000, 8192, &g);
        let c2 = bcast_coefficients(BcastAlg::Linear, 8, 2000, 8192, &g);
        assert_eq!(c1.a, c2.a);
        assert!((c2.b - 2.0 * c1.b).abs() < 1e-9);
    }

    #[test]
    fn chain_stage_count_matches_pipeline() {
        // P=10, ns=4: stages = P-2+ns = 12.
        let c = bcast_coefficients(BcastAlg::Chain, 10, 4 * 8192, 8192, &flat_gamma());
        assert!((c.a - 12.0).abs() < 1e-9);
        assert!((c.b - 12.0 * 8192.0).abs() < 1e-6);
    }

    #[test]
    fn binomial_matches_paper_equation_6() {
        // P = 8, ns = 3, flat gamma: a = ns·γ(4) + γ(4-1+1)... with
        // γ ≡ 1: a = ns + (⌊log₂P⌋ - 1) - 1 + ... = ns - 1 + (h_floor - 1)
        // = 3 - 1 + 2 = 4? Eq. 6: ns·γ(h_ceil+1) + Σ_{i=1}^{h_floor-1}
        // γ(·) - 1 = 3·1 + 2·1 - 1 = 4.
        let c = bcast_coefficients(BcastAlg::Binomial, 8, 3 * 8192, 8192, &flat_gamma());
        assert!((c.a - 4.0).abs() < 1e-9, "a = {}", c.a);
    }

    #[test]
    fn binomial_uses_gamma_of_root_degree() {
        let g = grisou_gamma();
        // P = 64: h_ceil = 6, root does ns broadcasts at γ(7) = 1.540.
        let ns = 10.0;
        let c = bcast_coefficients(BcastAlg::Binomial, 64, 10 * 8192, 8192, &g);
        // Eq. 6 with ⌊log₂64⌋ = ⌈log₂64⌉ = 6: sum runs i = 1..=5.
        let expected = ns * g.gamma(7) - 1.0 + (1..6).map(|i| g.gamma(6 - i + 1)).sum::<f64>();
        assert!((c.a - expected).abs() < 1e-9, "a = {} vs {expected}", c.a);
    }

    #[test]
    fn deeper_trees_cost_more_startups_for_one_segment() {
        // With one segment, chain (depth P-1) must beat binomial
        // (depth log P) on startups.
        let g = flat_gamma();
        let chain = bcast_coefficients(BcastAlg::Chain, 32, 100, 8192, &g);
        let binom = bcast_coefficients(BcastAlg::Binomial, 32, 100, 8192, &g);
        assert!(chain.a > binom.a);
    }

    #[test]
    fn pipelining_wins_for_many_segments() {
        // With many segments, the per-stage cost dominates: chain
        // (γ(2) = 1 per stage) beats linear (γ(P)·whole message).
        let g = grisou_gamma();
        let p = 16;
        let m = 4 << 20;
        let hockney = Hockney::new(1e-6, 1e-9);
        let t_chain = predict_bcast(BcastAlg::Chain, p, m, 8192, &g, &hockney);
        let t_linear = predict_bcast(BcastAlg::Linear, p, m, 8192, &g, &hockney);
        assert!(t_chain < t_linear);
    }

    #[test]
    fn split_binary_close_to_half_binary_plus_exchange() {
        let g = grisou_gamma();
        let p = 31;
        let m = 1 << 20;
        let sb = bcast_coefficients(BcastAlg::SplitBinary, p, m, 8192, &g);
        let b = bcast_coefficients(BcastAlg::Binary, p, m, 8192, &g);
        // Split-binary moves half the bytes down the pipeline.
        assert!(sb.b < b.b);
        assert!(sb.b > 0.4 * b.b);
    }

    #[test]
    fn split_binary_degenerates_to_linear_below_three() {
        let g = grisou_gamma();
        let sb = bcast_coefficients(BcastAlg::SplitBinary, 2, 8192, 1024, &g);
        let lin = bcast_coefficients(BcastAlg::Linear, 2, 8192, 1024, &g);
        assert_eq!(sb, lin);
    }

    #[test]
    fn k_chain_interpolates_chain_and_linear() {
        let g = grisou_gamma();
        let p = 33;
        let m = 1 << 20;
        let kc = bcast_coefficients(BcastAlg::KChain, p, m, 8192, &g);
        let ch = bcast_coefficients(BcastAlg::Chain, p, m, 8192, &g);
        // Fewer pipeline fill hops than the single chain...
        assert!(
            kc.a < ch.a + (p as f64),
            "k-chain startup should be moderate"
        );
        // ...but a costlier per-stage broadcast.
        let ns = num_segments(m, 8192) as f64;
        assert!(kc.a > ns, "root pumps ns stages at gamma(5) > 1");
    }

    #[test]
    fn gather_matches_equation_8() {
        let c = gather_linear_coefficients(40, 1024);
        assert_eq!(c.a, 39.0);
        assert_eq!(c.b, 39.0 * 1024.0);
        assert_eq!(gather_linear_coefficients(1, 1024), Coefficients::ZERO);
    }

    #[test]
    fn scatter_models_extension() {
        let lin = scatter_linear_coefficients(16, 512);
        let bin = scatter_binomial_coefficients(16, 512);
        assert_eq!(lin.a, 15.0);
        assert_eq!(bin.a, 4.0);
        assert_eq!(lin.b, bin.b); // same bytes on the root's path
    }

    #[test]
    fn coefficients_are_finite_over_a_big_grid() {
        let g = grisou_gamma();
        for alg in BcastAlg::ALL {
            for p in [2, 3, 5, 17, 90, 124] {
                for m in [0usize, 1, 8192, 1 << 22] {
                    let c = bcast_coefficients(alg, p, m, 8192, &g);
                    assert!(c.a.is_finite() && c.a >= 0.0, "{alg} p={p} m={m}");
                    assert!(c.b.is_finite() && c.b >= 0.0, "{alg} p={p} m={m}");
                }
            }
        }
    }
}
