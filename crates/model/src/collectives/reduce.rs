//! Reduce model — a thin adapter over the extension formulas in
//! [`reduce_ext`](crate::reduce_ext).

use super::{check_family, CollectiveModel};
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use crate::reduce_ext::reduce_coefficients;
use collsel_coll::{Alg, Collective};

/// The reduce family model (broadcast shapes with data flowing up).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceModel;

impl CollectiveModel for ReduceModel {
    fn collective(&self) -> Collective {
        Collective::Reduce
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        seg_size: usize,
        gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Reduce, alg);
        let Alg::Reduce(r) = alg else { unreachable!() };
        reduce_coefficients(r, p, m, seg_size, gamma)
    }
}
