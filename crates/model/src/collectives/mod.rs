//! Implementation-derived models for **all seven collectives** — the
//! breadth extension of the paper's Sect. 3 method.
//!
//! One module per collective, each exposing a unit struct implementing
//! [`CollectiveModel`]: a uniform interface over the per-algorithm cost
//! formulas, all read off the ported implementations in
//! [`collsel-coll`](collsel_coll) exactly as [`derived`](crate::derived)
//! reads off the broadcast ports. The broadcast and reduce modules
//! delegate to the existing [`derived`](crate::derived) and
//! [`reduce_ext`](crate::reduce_ext) formulas; the remaining five derive
//! theirs here (documented per module).
//!
//! The free functions [`coefficients`] and [`predict`] dispatch any
//! [`Alg`] through [`model_for`], so callers that iterate over
//! `collective.algorithms()` never need to name a concrete model type.

use crate::gamma::GammaTable;
use crate::hockney::{Coefficients, Hockney};
use collsel_coll::{Alg, Collective};

mod allgather;
mod allreduce;
mod alltoall;
mod bcast;
mod gather;
mod reduce;
mod scatter;

pub use allgather::AllgatherModel;
pub use allreduce::AllreduceModel;
pub use alltoall::AlltoallModel;
pub use bcast::BcastModel;
pub use gather::GatherModel;
pub use reduce::ReduceModel;
pub use scatter::ScatterModel;

/// An implementation-derived analytical model of one collective's
/// algorithm family.
///
/// Every cost is linear in `(α, β)` once γ is fixed, exposed as
/// [`Coefficients`] so the estimation crate can assemble Fig. 4-style
/// linear systems for any collective the same way it does for
/// broadcast.
pub trait CollectiveModel: std::fmt::Debug + Sync {
    /// The collective this model covers.
    fn collective(&self) -> Collective;

    /// The modelled algorithm family (defaults to the full catalogue).
    fn algorithms(&self) -> &'static [Alg] {
        self.collective().algorithms()
    }

    /// Cost coefficients of running `alg` over `p` ranks on an `m`-byte
    /// payload with `seg_size`-byte segments (`m` follows
    /// [`run_collective`](collsel_coll::run_collective)'s convention;
    /// non-segmented algorithms ignore `seg_size`).
    ///
    /// # Panics
    ///
    /// Panics if `alg` belongs to a different collective or `seg_size`
    /// is zero.
    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        seg_size: usize,
        gamma: &GammaTable,
    ) -> Coefficients;

    /// Predicted execution time (seconds) under `hockney`.
    fn predict(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        seg_size: usize,
        gamma: &GammaTable,
        hockney: &Hockney,
    ) -> f64 {
        hockney.eval(self.coefficients(alg, p, m, seg_size, gamma))
    }
}

/// Asserts `alg` belongs to the model's collective (shared guard).
fn check_family(model_collective: Collective, alg: Alg) {
    assert_eq!(
        alg.collective(),
        model_collective,
        "algorithm {} given to the {model_collective} model",
        alg.qualified_name()
    );
}

/// The model for one collective, as a shared static.
pub fn model_for(collective: Collective) -> &'static dyn CollectiveModel {
    match collective {
        Collective::Bcast => &BcastModel,
        Collective::Reduce => &ReduceModel,
        Collective::Allreduce => &AllreduceModel,
        Collective::Gather => &GatherModel,
        Collective::Scatter => &ScatterModel,
        Collective::Allgather => &AllgatherModel,
        Collective::Alltoall => &AlltoallModel,
    }
}

/// Cost coefficients of any collective algorithm (dispatches through
/// [`model_for`]).
///
/// # Panics
///
/// Panics if `seg_size` is zero.
pub fn coefficients(
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    gamma: &GammaTable,
) -> Coefficients {
    model_for(alg.collective()).coefficients(alg, p, m, seg_size, gamma)
}

/// Predicted execution time (seconds) of any collective algorithm
/// under `hockney`.
pub fn predict(
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    gamma: &GammaTable,
    hockney: &Hockney,
) -> f64 {
    model_for(alg.collective()).predict(alg, p, m, seg_size, gamma, hockney)
}

/// `⌈log₂ p⌉` for `p ≥ 1` (binomial/recursive-doubling round counts).
fn log2_ceil(p: usize) -> f64 {
    (usize::BITS - (p - 1).leading_zeros()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.114), (4, 1.219), (5, 1.283), (6, 1.451), (7, 1.540)])
    }

    #[test]
    fn every_model_covers_its_whole_catalogue() {
        let g = gamma();
        for c in Collective::ALL {
            let model = model_for(c);
            assert_eq!(model.collective(), c);
            assert_eq!(model.algorithms(), c.algorithms());
            for &alg in model.algorithms() {
                for p in [2usize, 3, 5, 17, 90, 124] {
                    for m in [0usize, 1, 8192, 1 << 22] {
                        let co = coefficients(alg, p, m, 8192, &g);
                        assert!(co.a.is_finite() && co.a >= 0.0, "{alg:?} p={p} m={m}");
                        assert!(co.b.is_finite() && co.b >= 0.0, "{alg:?} p={p} m={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_rank_is_free_everywhere() {
        let g = gamma();
        for c in Collective::ALL {
            for &alg in c.algorithms() {
                assert_eq!(
                    coefficients(alg, 1, 4096, 512, &g),
                    Coefficients::ZERO,
                    "{alg:?}"
                );
            }
        }
    }

    #[test]
    fn bcast_and_reduce_delegate_to_existing_formulas() {
        use collsel_coll::{BcastAlg, ReduceAlg};
        let g = gamma();
        let (p, m, seg) = (24, 1 << 20, 8192);
        for b in BcastAlg::ALL {
            assert_eq!(
                coefficients(Alg::Bcast(b), p, m, seg, &g),
                crate::derived::bcast_coefficients(b, p, m, seg, &g)
            );
        }
        for r in ReduceAlg::ALL {
            assert_eq!(
                coefficients(Alg::Reduce(r), p, m, seg, &g),
                crate::reduce_ext::reduce_coefficients(r, p, m, seg, &g)
            );
        }
    }

    #[test]
    #[should_panic(expected = "given to the gather model")]
    fn wrong_family_is_rejected() {
        use collsel_coll::BcastAlg;
        let _ = GatherModel.coefficients(Alg::Bcast(BcastAlg::Linear), 8, 1024, 8192, &gamma());
    }

    #[test]
    fn costs_grow_with_message_size() {
        let g = gamma();
        let h = Hockney::new(1e-6, 1e-9);
        for c in Collective::ALL {
            for &alg in c.algorithms() {
                let t1 = predict(alg, 16, 64 * 1024, 8192, &g, &h);
                let t2 = predict(alg, 16, 2 << 20, 8192, &g, &h);
                assert!(
                    t2 >= t1 * 0.999,
                    "{alg:?}: {t1} then {t2} should not shrink"
                );
            }
        }
    }
}
