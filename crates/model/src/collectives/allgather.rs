//! Allgather models, derived from the ports in `coll::allgather`.
//!
//! * ring — `P-1` rounds, each a neighbour sendrecv of one `m`-byte
//!   block: `(P-1)·(α + m·β)`;
//! * recursive doubling — `log₂P` exchange rounds doubling the payload
//!   each time: `log₂P` startups moving `(P-1)·m` bytes in total; the
//!   port falls back to the ring on non-power-of-two worlds, and so
//!   does the model;
//! * gather+bcast — a linear gather of `m`-byte blocks into rank 0
//!   followed by a binomial broadcast of the packed `P·m`-byte vector
//!   (the port broadcasts with its own fixed 8 KiB segments, so the
//!   caller's `seg_size` does not appear).

use super::{check_family, log2_ceil, CollectiveModel};
use crate::derived::{bcast_coefficients, gather_linear_coefficients};
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use collsel_coll::{Alg, AllgatherAlg, BcastAlg, Collective};

/// The segment size hardcoded by `allgather_gather_bcast`'s broadcast
/// phase.
const GATHER_BCAST_SEG: usize = 8 * 1024;

/// The allgather family model (`m` = per-rank block size).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllgatherModel;

impl CollectiveModel for AllgatherModel {
    fn collective(&self) -> Collective {
        Collective::Allgather
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        _seg_size: usize,
        gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Allgather, alg);
        let Alg::Allgather(a) = alg else {
            unreachable!()
        };
        if p <= 1 {
            return Coefficients::ZERO;
        }
        let ring = || {
            let n = (p - 1) as f64;
            Coefficients::new(n, n * m as f64)
        };
        match a {
            AllgatherAlg::Ring => ring(),
            AllgatherAlg::RecursiveDoubling => {
                if p.is_power_of_two() {
                    Coefficients::new(log2_ceil(p), (p - 1) as f64 * m as f64)
                } else {
                    ring()
                }
            }
            AllgatherAlg::GatherBcast => gather_linear_coefficients(p, m).plus(bcast_coefficients(
                BcastAlg::Binomial,
                p,
                p * m,
                GATHER_BCAST_SEG,
                gamma,
            )),
        }
    }
}
