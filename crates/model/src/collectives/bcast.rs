//! Broadcast model — a thin adapter over the paper's Sect. 3 formulas
//! in [`derived`](crate::derived).

use super::{check_family, CollectiveModel};
use crate::derived::bcast_coefficients;
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use collsel_coll::{Alg, Collective};

/// The broadcast family model (paper Sect. 3, Eqs. 2–7).
#[derive(Debug, Clone, Copy, Default)]
pub struct BcastModel;

impl CollectiveModel for BcastModel {
    fn collective(&self) -> Collective {
        Collective::Bcast
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        seg_size: usize,
        gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Bcast, alg);
        let Alg::Bcast(b) = alg else { unreachable!() };
        bcast_coefficients(b, p, m, seg_size, gamma)
    }
}
