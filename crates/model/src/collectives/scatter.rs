//! Scatter models — thin adapters over the extension formulas in
//! [`derived`](crate::derived) (`scatter_linear_coefficients`,
//! `scatter_binomial_coefficients`).

use super::{check_family, CollectiveModel};
use crate::derived::{scatter_binomial_coefficients, scatter_linear_coefficients};
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use collsel_coll::{Alg, Collective, ScatterAlg};

/// The scatter family model (`m` = per-rank block size).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScatterModel;

impl CollectiveModel for ScatterModel {
    fn collective(&self) -> Collective {
        Collective::Scatter
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        _seg_size: usize,
        _gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Scatter, alg);
        let Alg::Scatter(s) = alg else { unreachable!() };
        match s {
            ScatterAlg::Linear => scatter_linear_coefficients(p, m),
            ScatterAlg::Binomial => scatter_binomial_coefficients(p, m),
        }
    }
}
