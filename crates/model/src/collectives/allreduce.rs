//! Allreduce models, derived from the ports in `coll::allreduce`.
//!
//! * reduce+bcast — a binomial reduce into rank 0 followed by a
//!   binomial broadcast of the result, both segmented with the caller's
//!   `seg_size`: the sequential composition of the two tree models;
//! * recursive doubling — `log₂P` exchange-and-fold rounds of the full
//!   `m`-byte vector; non-power-of-two worlds add a fold-in and a
//!   fold-out round for the extra ranks, i.e. two more full-vector
//!   exchanges on the critical path.

use super::{check_family, CollectiveModel};
use crate::derived::bcast_coefficients;
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use crate::reduce_ext::reduce_coefficients;
use collsel_coll::{Alg, AllreduceAlg, BcastAlg, Collective, ReduceAlg};

/// The allreduce family model (`m` = total vector size).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllreduceModel;

impl CollectiveModel for AllreduceModel {
    fn collective(&self) -> Collective {
        Collective::Allreduce
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        seg_size: usize,
        gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Allreduce, alg);
        let Alg::Allreduce(a) = alg else {
            unreachable!()
        };
        if p <= 1 {
            return Coefficients::ZERO;
        }
        match a {
            AllreduceAlg::ReduceBcast => {
                reduce_coefficients(ReduceAlg::Binomial, p, m, seg_size, gamma).plus(
                    bcast_coefficients(BcastAlg::Binomial, p, m, seg_size, gamma),
                )
            }
            AllreduceAlg::RecursiveDoubling => {
                let pow2 = (usize::BITS - 1 - p.leading_zeros()) as f64; // ⌊log₂ p⌋
                let extra_rounds = if p.is_power_of_two() { 0.0 } else { 2.0 };
                let rounds = pow2 + extra_rounds;
                Coefficients::new(rounds, rounds * m as f64)
            }
        }
    }
}
