//! Gather models, derived from the ports in `coll::gather`.
//!
//! * linear — the root pre-posts `P-1` receives of `m`-byte blocks and
//!   waits for all; same drain as Eq. 8: `(P-1)·(α + m·β)`;
//! * binomial — `⌈log₂P⌉` rounds on the root's critical path, but the
//!   root's last receive carries half of everything, and the bytes
//!   funnelling into the root over the whole run total `(P-1)·m` — the
//!   mirror image of the binomial scatter.

use super::{check_family, log2_ceil, CollectiveModel};
use crate::derived::gather_linear_coefficients;
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use collsel_coll::{Alg, Collective, GatherAlg};

/// The gather family model (`m` = per-rank block size).
#[derive(Debug, Clone, Copy, Default)]
pub struct GatherModel;

impl CollectiveModel for GatherModel {
    fn collective(&self) -> Collective {
        Collective::Gather
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        _seg_size: usize,
        _gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Gather, alg);
        let Alg::Gather(g) = alg else { unreachable!() };
        if p <= 1 {
            return Coefficients::ZERO;
        }
        match g {
            GatherAlg::Linear => gather_linear_coefficients(p, m),
            GatherAlg::Binomial => Coefficients::new(log2_ceil(p), (p - 1) as f64 * m as f64),
        }
    }
}
