//! All-to-all models, derived from the ports in `coll::alltoall`.
//!
//! * linear — every rank posts its `P-1` receives and `P-1` sends at
//!   once; all `P-1` outgoing blocks contend on the sender's NIC
//!   exactly like a `P`-destination non-blocking linear broadcast, so
//!   the stage is costed `γ(P)·(P-1)·(α + m·β)`;
//! * pairwise — `P-1` balanced sendrecv rounds, one partner per round,
//!   no contention: `(P-1)·(α + m·β)`.

use super::{check_family, CollectiveModel};
use crate::gamma::GammaTable;
use crate::hockney::Coefficients;
use collsel_coll::{Alg, AlltoallAlg, Collective};

/// The all-to-all family model (`m` = per-destination block size).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlltoallModel;

impl CollectiveModel for AlltoallModel {
    fn collective(&self) -> Collective {
        Collective::Alltoall
    }

    fn coefficients(
        &self,
        alg: Alg,
        p: usize,
        m: usize,
        _seg_size: usize,
        gamma: &GammaTable,
    ) -> Coefficients {
        check_family(Collective::Alltoall, alg);
        let Alg::Alltoall(a) = alg else {
            unreachable!()
        };
        if p <= 1 {
            return Coefficients::ZERO;
        }
        let n = (p - 1) as f64;
        match a {
            AlltoallAlg::Linear => {
                let g = gamma.gamma(p);
                Coefficients::new(g * n, g * n * m as f64)
            }
            AlltoallAlg::Pairwise => Coefficients::new(n, n * m as f64),
        }
    }
}
