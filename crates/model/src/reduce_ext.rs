//! Extension models for the reduce algorithms.
//!
//! The paper's conclusion proposes carrying the implementation-derived
//! approach to other collectives; this module does it for the ported
//! reduce suite. The reduce implementations mirror the broadcast
//! pipelines with data flowing towards the root, so their derived cost
//! shapes mirror the broadcast models:
//!
//! * linear — the root drains `P-1` non-blocking receives, one
//!   γ(P)-weighted transfer of `m` bytes: `γ(P)·(α + m·β)` (the NIC
//!   serialization is what γ measures, mirroring the linear broadcast);
//! * chain — 4 parallel chains feed the root, which drains 4 segment
//!   streams per stage (γ(5)) across the longest chain;
//! * pipeline — `(P-2+n_s)` pipeline stages of one segment up a single
//!   chain;
//! * binary / in-order binary — `(D + n_s - 1)` stages, each a 2-source
//!   non-blocking linear *gather* costed with the same γ(3) factor
//!   (receiving from k children serializes on the NIC exactly like
//!   sending to k); the two differ only in their tree's depth;
//! * binomial — Eq. 6's multiplier with the root's in-degree.
//!
//! The per-lane compute cost of the reduction operator is absorbed by
//! the fitted per-algorithm (α, β), exactly as the communication
//! context effects are.

use crate::derived::num_segments;
use crate::gamma::GammaTable;
use crate::hockney::{Coefficients, Hockney};
use collsel_coll::{ReduceAlg, Topology};

/// Cost coefficients of reducing `m` bytes from `p` ranks with `alg`
/// using `seg_size`-byte segments.
///
/// # Panics
///
/// Panics if `seg_size` is zero.
pub fn reduce_coefficients(
    alg: ReduceAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    gamma: &GammaTable,
) -> Coefficients {
    if p <= 1 {
        return Coefficients::ZERO;
    }
    let ns = num_segments(m, seg_size);
    let m_s = m as f64 / ns as f64;
    match alg {
        ReduceAlg::Linear => {
            let g = gamma.gamma(p);
            Coefficients::new(g, g * m as f64)
        }
        ReduceAlg::Chain => {
            let k = collsel_coll::DEFAULT_CHAIN_FANOUT.min(p - 1);
            let chain_len = (p - 1).div_ceil(k);
            let g = gamma.gamma(k + 1);
            let a = ns as f64 * g + (chain_len - 1) as f64;
            Coefficients::new(a, a * m_s)
        }
        ReduceAlg::Pipeline => {
            let stages = (p - 2 + ns) as f64;
            Coefficients::new(stages, stages * m_s)
        }
        ReduceAlg::Binary => {
            let depth = Topology::binary(p, 0).height() as f64;
            let a = (depth + ns as f64 - 1.0) * gamma.gamma(3);
            Coefficients::new(a, a * m_s)
        }
        ReduceAlg::InOrderBinary => {
            let depth = Topology::in_order_binary(p, 0).height() as f64;
            let a = (depth + ns as f64 - 1.0) * gamma.gamma(3);
            Coefficients::new(a, a * m_s)
        }
        ReduceAlg::Binomial => {
            let h_floor = (usize::BITS - 1 - p.leading_zeros()) as usize;
            let h_ceil = (usize::BITS - (p - 1).leading_zeros()) as usize;
            let mut a = ns as f64 * gamma.gamma(h_ceil + 1) - 1.0;
            for i in 1..h_floor {
                a += gamma.gamma(h_ceil - i + 1);
            }
            Coefficients::new(a.max(1.0), a.max(1.0) * m_s)
        }
    }
}

/// Predicted execution time (seconds) of a reduction under `hockney`.
pub fn predict_reduce(
    alg: ReduceAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    gamma: &GammaTable,
    hockney: &Hockney,
) -> f64 {
    hockney.eval(reduce_coefficients(alg, p, m, seg_size, gamma))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.1), (5, 1.3), (7, 1.5)])
    }

    #[test]
    fn single_rank_is_free() {
        for alg in ReduceAlg::ALL {
            assert_eq!(
                reduce_coefficients(alg, 1, 4096, 512, &gamma()),
                Coefficients::ZERO
            );
        }
    }

    #[test]
    fn reduce_mirrors_bcast_shapes() {
        use collsel_coll::BcastAlg;
        let g = gamma();
        let (p, m, seg) = (32, 1 << 20, 8192);
        for (r, b) in [
            (ReduceAlg::Chain, BcastAlg::KChain),
            (ReduceAlg::Pipeline, BcastAlg::Chain),
            (ReduceAlg::Binary, BcastAlg::Binary),
            (ReduceAlg::Binomial, BcastAlg::Binomial),
        ] {
            let rc = reduce_coefficients(r, p, m, seg, &g);
            let bc = crate::derived::bcast_coefficients(b, p, m, seg, &g);
            assert!((rc.a - bc.a).abs() < 1e-9, "{r}: {} vs {}", rc.a, bc.a);
        }
    }

    #[test]
    fn pipeline_beats_flat_for_large_messages() {
        let g = gamma();
        let h = Hockney::new(1e-6, 1e-9);
        let t_pipeline = predict_reduce(ReduceAlg::Pipeline, 16, 4 << 20, 8192, &g, &h);
        let t_chain = predict_reduce(ReduceAlg::Chain, 16, 4 << 20, 8192, &g, &h);
        let t_linear = predict_reduce(ReduceAlg::Linear, 16, 4 << 20, 8192, &g, &h);
        assert!(t_pipeline < t_linear);
        assert!(t_chain < t_linear);
    }

    #[test]
    fn costs_monotone_in_p() {
        let g = gamma();
        for alg in ReduceAlg::ALL {
            let small = reduce_coefficients(alg, 4, 65536, 8192, &g);
            let large = reduce_coefficients(alg, 64, 65536, 8192, &g);
            assert!(large.a >= small.a, "{alg}");
        }
    }
}
