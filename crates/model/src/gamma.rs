//! The γ(P) factor: cost ratio of a non-blocking linear broadcast to a
//! single point-to-point transfer.
//!
//! The paper (Sect. 3.1, Eq. 2–3) approximates the time of the
//! *non-blocking linear broadcast* of one segment to `P-1` children as
//! `γ(P)·(α + m_s·β)`, where `γ(P) = T_linear(P, m_s) / T_p2p(m_s)`
//! satisfies `1 ≤ γ(P) ≤ P-1`. It is measured once per platform
//! (Sect. 4.1) and shared by all algorithm models.
//!
//! [`GammaTable`] stores the measured discrete values and answers
//! queries outside the measured range with the linear-regression
//! extrapolation the paper proposes for large platforms ("the discrete
//! estimation of γ(P) is near linear").

use std::collections::BTreeMap;

/// Platform-specific table of γ(P) values with linear extrapolation.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaTable {
    /// Measured values, keyed by the linear-tree process count `P`
    /// (root plus children). γ(2) ≡ 1 by definition.
    values: BTreeMap<usize, f64>,
    /// Least-squares fit `γ(P) ≈ slope·P + intercept` over the table,
    /// used outside the measured range.
    slope: f64,
    intercept: f64,
}

impl GammaTable {
    /// Builds a table from measured `(P, γ(P))` pairs.
    ///
    /// The definitional point γ(2) = 1 is always present (added if
    /// missing). The linear fit requires at least two distinct `P`
    /// values; with fewer, extrapolation degenerates to the nearest
    /// measured value.
    ///
    /// # Panics
    ///
    /// Panics if any pair has `P < 2`, or a non-finite or non-positive
    /// γ value.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let mut values = BTreeMap::new();
        values.insert(2, 1.0);
        for (p, g) in pairs {
            assert!(p >= 2, "gamma is defined for P >= 2, got P = {p}");
            assert!(
                g.is_finite() && g > 0.0,
                "gamma({p}) must be finite and positive, got {g}"
            );
            values.insert(p, g);
        }
        let (slope, intercept) = linear_fit(&values);
        GammaTable {
            values,
            slope,
            intercept,
        }
    }

    /// The trivial table (γ ≡ 1 for all P): turns every model into its
    /// contention-free variant. Useful for baselines and tests.
    pub fn ones() -> Self {
        GammaTable {
            values: BTreeMap::from([(2, 1.0)]),
            slope: 0.0,
            intercept: 1.0,
        }
    }

    /// γ(P) for an arbitrary process count.
    ///
    /// * `P ≤ 2` → 1 (a linear "tree" with one child *is* the
    ///   point-to-point transfer);
    /// * measured `P` → the measured value;
    /// * otherwise → linear extrapolation, clamped to the paper's
    ///   `1 ≤ γ(P) ≤ P−1` bound (Sect. 3.1): a root serialising `P−1`
    ///   sends can cost at most `P−1` point-to-point transfers, so a
    ///   steep fit queried just outside a sparse table must not exceed
    ///   that ceiling.
    pub fn gamma(&self, p: usize) -> f64 {
        if p <= 2 {
            return 1.0;
        }
        if let Some(&g) = self.values.get(&p) {
            return g;
        }
        (self.slope * p as f64 + self.intercept).clamp(1.0, (p - 1) as f64)
    }

    /// The measured pairs, in ascending `P` order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().map(|(&p, &g)| (p, g))
    }

    /// The linear fit `(slope, intercept)` used for extrapolation.
    pub fn fit(&self) -> (f64, f64) {
        (self.slope, self.intercept)
    }

    /// Largest measured `P`.
    pub fn max_measured(&self) -> usize {
        *self
            .values
            .keys()
            .next_back()
            .expect("table is never empty")
    }
}

/// Ordinary least squares over the table's `(P, γ)` points.
fn linear_fit(values: &BTreeMap<usize, f64>) -> (f64, f64) {
    let n = values.len() as f64;
    if values.len() < 2 {
        let g = values.values().next().copied().unwrap_or(1.0);
        return (0.0, g);
    }
    let sx: f64 = values.keys().map(|&p| p as f64).sum();
    let sy: f64 = values.values().sum();
    let sxx: f64 = values.keys().map(|&p| (p as f64).powi(2)).sum();
    let sxy: f64 = values.iter().map(|(&p, &g)| p as f64 * g).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(GammaTable {
    values,
    slope,
    intercept
});

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 1, Grisou column.
    fn grisou_table() -> GammaTable {
        GammaTable::from_pairs([(3, 1.114), (4, 1.219), (5, 1.283), (6, 1.451), (7, 1.540)])
    }

    #[test]
    fn gamma_of_two_is_one_by_definition() {
        assert_eq!(grisou_table().gamma(2), 1.0);
        assert_eq!(GammaTable::from_pairs([]).gamma(2), 1.0);
    }

    #[test]
    fn measured_values_are_returned_exactly() {
        let t = grisou_table();
        assert_eq!(t.gamma(5), 1.283);
        assert_eq!(t.gamma(7), 1.540);
    }

    #[test]
    fn extrapolation_is_monotone_beyond_table() {
        let t = grisou_table();
        let g8 = t.gamma(8);
        let g12 = t.gamma(12);
        assert!(g8 > t.gamma(7) * 0.95, "g8 = {g8}");
        assert!(g12 > g8);
    }

    #[test]
    fn extrapolation_clamps_at_one() {
        // A decreasing (nonsensical) table would extrapolate below 1.
        let t = GammaTable::from_pairs([(3, 1.0), (4, 1.0)]);
        assert!(t.gamma(100) >= 1.0);
    }

    #[test]
    fn extrapolation_clamps_at_p_minus_one() {
        // A sparse, steep table: the fit through (2, 1) and (10, 9.5)
        // has slope 1.0625, so querying just outside the measured points
        // would exceed the paper's γ(P) ≤ P−1 bound without the clamp.
        let t = GammaTable::from_pairs([(10, 9.5)]);
        let (slope, intercept) = t.fit();
        assert!(slope * 3.0 + intercept > 2.0, "fit must overshoot at P=3");
        assert_eq!(t.gamma(3), 2.0, "clamped to P-1 = 2");
        assert_eq!(t.gamma(4), 3.0, "clamped to P-1 = 3");
        // Every *extrapolated* query respects the bound (measured
        // values are returned verbatim, clamping applies off-table).
        for p in (3..200).filter(|p| *p != 10) {
            let g = t.gamma(p);
            assert!(
                (1.0..=(p - 1) as f64).contains(&g),
                "gamma({p}) = {g} violates 1 <= gamma <= P-1"
            );
        }
    }

    #[test]
    fn ones_table_is_identity() {
        let t = GammaTable::ones();
        for p in 2..200 {
            assert_eq!(t.gamma(p), 1.0);
        }
    }

    #[test]
    fn fit_recovers_exact_line() {
        let t = GammaTable::from_pairs((3..10).map(|p| (p, 0.1 * p as f64 + 0.8)));
        let (slope, intercept) = t.fit();
        assert!((slope - 0.1).abs() < 1e-9);
        assert!((intercept - 0.8).abs() < 1e-9);
        assert!((t.gamma(50) - 5.8).abs() < 1e-9);
    }

    #[test]
    fn pairs_iterate_in_order() {
        let t = grisou_table();
        let ps: Vec<usize> = t.pairs().map(|(p, _)| p).collect();
        assert_eq!(ps, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(t.max_measured(), 7);
    }

    #[test]
    #[should_panic(expected = "P >= 2")]
    fn rejects_p_below_two() {
        let _ = GammaTable::from_pairs([(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_bad_gamma() {
        let _ = GammaTable::from_pairs([(3, f64::NAN)]);
    }
}
