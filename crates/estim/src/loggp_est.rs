//! LogGP parameter measurement (Culler et al., the related-work
//! baseline method the paper's Sect. 2.2 surveys).
//!
//! All parameters come from point-to-point micro-experiments:
//!
//! * `o_s` — the sender's clock across a bare `isend` post (the runtime
//!   charges exactly the configured send overhead there);
//! * `o_r` — the receiver's clock across a `recv` of a message that has
//!   already arrived;
//! * `g` / `G` — per-message and per-byte injection gaps, from the
//!   sender-side time of `n` back-to-back non-blocking sends of small /
//!   large messages;
//! * `L` — the residual of the round-trip time after subtracting the
//!   overheads and the byte term.

use crate::stats::{sample_adaptive, Precision};
use collsel_model::LogGP;
use collsel_netsim::ClusterModel;
use collsel_support::Bytes;

/// Result of the LogGP measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGPEstimate {
    /// The measured parameters.
    pub params: LogGP,
    /// Round-trip time of the small probe message (diagnostic).
    pub small_rtt: f64,
}

/// Measures LogGP parameters on `cluster` between ranks 0 and 1.
///
/// `small` should be near the minimum message size (but > 0) and
/// `large` well into the bandwidth-dominated regime.
///
/// # Panics
///
/// Panics if `small == 0`, `large <= small`, or the cluster has fewer
/// than two slots.
pub fn estimate_loggp(
    cluster: &ClusterModel,
    small: usize,
    large: usize,
    precision: &Precision,
    seed: u64,
) -> LogGPEstimate {
    assert!(small > 0, "small probe must be non-empty");
    assert!(large > small, "large probe must exceed the small one");
    assert!(cluster.max_ranks() >= 2, "need two ranks");

    let burst = 16;

    // One simulation measures everything; adaptive sampling repeats it.
    let run = |seed: u64| -> Vec<f64> {
        let small_msg = Bytes::from(vec![1u8; small]);
        let large_msg = Bytes::from(vec![2u8; large]);
        let out = collsel_mpi::simulate(cluster, 2, seed, move |ctx| {
            let mut vals = Vec::new();
            if ctx.rank() == 0 {
                // (1) o_s: clock across a bare isend post.
                let t0 = ctx.wtime();
                let req = ctx.isend(1, 0, small_msg.clone());
                let t1 = ctx.wtime();
                vals.push((t1 - t0).as_secs_f64());
                ctx.wait_send(req);

                // (2) small-message burst: per-message gap g.
                ctx.barrier();
                let t0 = ctx.wtime();
                let reqs = (0..burst)
                    .map(|_| ctx.isend(1, 1, small_msg.clone()))
                    .collect();
                ctx.wait_all_sends(reqs);
                let t1 = ctx.wtime();
                vals.push((t1 - t0).as_secs_f64() / burst as f64);

                // (3) large-message burst: per-byte gap G.
                ctx.barrier();
                let t0 = ctx.wtime();
                let reqs = (0..4).map(|_| ctx.isend(1, 2, large_msg.clone())).collect();
                ctx.wait_all_sends(reqs);
                let t1 = ctx.wtime();
                vals.push((t1 - t0).as_secs_f64() / (4.0 * large as f64));

                // (4) small round-trip for L.
                ctx.barrier();
                let t0 = ctx.wtime();
                ctx.send(1, 3, small_msg.clone());
                let _ = ctx.recv(1, 4);
                let t1 = ctx.wtime();
                vals.push((t1 - t0).as_secs_f64());
            } else {
                let _ = ctx.recv(0, 0);
                ctx.barrier();
                for _ in 0..burst {
                    let _ = ctx.recv(0, 1);
                }
                ctx.barrier();
                for _ in 0..4 {
                    let _ = ctx.recv(0, 2);
                }
                ctx.barrier();
                // (5) o_r: receive a message that has already arrived.
                let (msg, _) = ctx.recv(0, 3);
                // Give the reply time to be pre-posted by rank 0? The
                // o_r probe: post the receive *after* a barrier that the
                // sender passed long ago is not expressible here; use
                // the completion charge directly: the runtime adds o_r
                // to every receive, measured via the round-trip
                // residual instead.
                ctx.send(0, 4, msg);
            }
            vals
        })
        // Invariant, not error handling: the two-rank ping-pong above is
        // fully matched (every send has a posted receive) and runs with
        // no watchdog, so the simulation cannot fail; rank 0 always
        // returns its sample vector.
        .expect("measurement program cannot deadlock");
        out.results.into_iter().next().expect("rank 0 values")
    };

    // Sample adaptively on the round-trip (the noisiest quantity) while
    // averaging the component probes over the same repetitions.
    let mut acc = [0.0f64; 4];
    let mut n = 0usize;
    let _ = sample_adaptive(precision, |batch| {
        let vals = run(seed.wrapping_add(batch as u64));
        for (a, v) in acc.iter_mut().zip(&vals) {
            *a += v;
        }
        n += 1;
        vec![vals[3]]
    });
    let mean: Vec<f64> = acc.iter().map(|a| a / n as f64).collect();
    let (o_s, per_msg, per_byte, rtt) = (mean[0], mean[1], mean[2], mean[3]);

    // The runtime charges o_r symmetrically; take it equal to o_s
    // (Culler's method also folds the two into the round trip).
    let o_r = o_s;
    // One-way latency residual: rtt/2 − o_s − o_r − small·G.
    let latency = (rtt / 2.0 - o_s - o_r - small as f64 * per_byte).max(0.0);
    let gap = per_msg.max(0.0);
    LogGPEstimate {
        params: LogGP::new(latency, o_s, o_r, gap, per_byte.max(0.0)),
        small_rtt: rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::{NoiseParams, SimSpan};

    fn cluster() -> ClusterModel {
        ClusterModel::builder("loggp", 2)
            .bandwidth_gbps(8.0) // 1 GB/s -> G = 1 ns/B
            .wire_latency(SimSpan::from_micros(20))
            .switch_hops(0, SimSpan::ZERO)
            .per_msg_gap(SimSpan::ZERO)
            .overheads(SimSpan::from_micros(3), SimSpan::from_micros(3))
            .noise(NoiseParams::OFF)
            .build()
    }

    #[test]
    fn recovers_send_overhead_exactly() {
        let est = estimate_loggp(&cluster(), 64, 1 << 20, &Precision::quick(), 1);
        assert!(
            (est.params.send_overhead - 3e-6).abs() < 1e-9,
            "o_s = {}",
            est.params.send_overhead
        );
    }

    #[test]
    fn recovers_bandwidth_within_tolerance() {
        let est = estimate_loggp(&cluster(), 64, 1 << 20, &Precision::quick(), 1);
        let g = est.params.gap_per_byte;
        assert!((0.8e-9..1.3e-9).contains(&g), "G = {g}");
    }

    #[test]
    fn rtt_is_positive_and_consistent() {
        let est = estimate_loggp(&cluster(), 64, 1 << 20, &Precision::quick(), 1);
        assert!(est.small_rtt > 0.0);
        // Predicted p2p from the estimate should be within 2x of the
        // measured half-RTT.
        let predicted = est.params.p2p(64.0);
        let measured = est.small_rtt / 2.0;
        let ratio = predicted / measured;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "large probe")]
    fn validates_probe_sizes() {
        let _ = estimate_loggp(&cluster(), 100, 100, &Precision::quick(), 0);
    }
}
