//! Linear regression: ordinary least squares and the Huber robust
//! regressor the paper uses to solve the α/β system (Sect. 5.2,
//! ref. [25]).

/// A fitted line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The intercept (α in the paper's canonical system).
    pub intercept: f64,
    /// The slope (β in the paper's canonical system).
    pub slope: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

fn validate(xs: &[f64], ys: &[f64]) {
    assert_eq!(xs.len(), ys.len(), "x and y lengths differ");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    assert!(
        xs.iter().chain(ys).all(|v| v.is_finite()),
        "regression inputs must be finite"
    );
}

/// Weighted least squares with per-point weights `w`.
fn wls(xs: &[f64], ys: &[f64], w: &[f64]) -> LinearFit {
    let sw: f64 = w.iter().sum();
    let sx: f64 = xs.iter().zip(w).map(|(x, w)| x * w).sum();
    let sy: f64 = ys.iter().zip(w).map(|(y, w)| y * w).sum();
    let sxx: f64 = xs.iter().zip(w).map(|(x, w)| x * x * w).sum();
    let sxy: f64 = xs.iter().zip(ys).zip(w).map(|((x, y), w)| x * y * w).sum();
    let denom = sw * sxx - sx * sx;
    if denom.abs() < f64::EPSILON * sxx.max(1.0) {
        // Degenerate abscissa: fall back to a constant fit.
        return LinearFit {
            intercept: if sw > 0.0 { sy / sw } else { 0.0 },
            slope: 0.0,
        };
    }
    let slope = (sw * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / sw;
    LinearFit { intercept, slope }
}

/// Ordinary least-squares fit of `y = a + b·x`.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two points,
/// or contain non-finite values.
pub fn ols(xs: &[f64], ys: &[f64]) -> LinearFit {
    validate(xs, ys);
    let w = vec![1.0; xs.len()];
    wls(xs, ys, &w)
}

/// Huber robust regression via iteratively reweighted least squares.
///
/// Points whose standardized residual exceeds `delta` (the classic
/// 1.345 for 95% efficiency under normal errors) are down-weighted
/// proportionally to `delta / |r|`; the residual scale is re-estimated
/// each iteration with the normalized median absolute deviation.
///
/// # Panics
///
/// Same conditions as [`ols`], plus a non-positive `delta`.
pub fn huber(xs: &[f64], ys: &[f64], delta: f64) -> LinearFit {
    validate(xs, ys);
    assert!(delta > 0.0, "Huber delta must be positive");
    let mut fit = ols(xs, ys);
    let mut w = vec![1.0; xs.len()];
    for _ in 0..50 {
        let residuals: Vec<f64> = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| y - fit.predict(x))
            .collect();
        let scale = mad_scale(&residuals);
        if scale <= 0.0 {
            // Perfect fit (or all residuals identical): done.
            break;
        }
        for (wi, r) in w.iter_mut().zip(&residuals) {
            let z = (r / scale).abs();
            *wi = if z <= delta { 1.0 } else { delta / z };
        }
        let next = wls(xs, ys, &w);
        let moved = (next.intercept - fit.intercept).abs() + (next.slope - fit.slope).abs();
        let size = fit.intercept.abs() + fit.slope.abs();
        fit = next;
        if moved <= 1e-12 * size.max(1e-300) {
            break;
        }
    }
    fit
}

/// Huber regression with the standard `delta = 1.345`.
pub fn huber_default(xs: &[f64], ys: &[f64]) -> LinearFit {
    huber(xs, ys, 1.345)
}

/// Normalized median absolute deviation (consistent σ estimator under
/// normality).
fn mad_scale(residuals: &[f64]) -> f64 {
    let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let mid = abs.len() / 2;
    let median = if abs.len() % 2 == 1 {
        abs[mid]
    } else {
        0.5 * (abs[mid - 1] + abs[mid])
    };
    1.4826 * median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = ols(&xs, &ys);
        assert!((fit.intercept - 3.0).abs() < 1e-10);
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-9);
    }

    #[test]
    fn huber_matches_ols_on_clean_data() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 0.5 * x).collect();
        let o = ols(&xs, &ys);
        let h = huber_default(&xs, &ys);
        assert!((o.intercept - h.intercept).abs() < 1e-9);
        assert!((o.slope - h.slope).abs() < 1e-9);
    }

    #[test]
    fn huber_resists_outliers() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 1.0 + 0.5 * x).collect();
        ys[3] = 500.0; // gross outlier
        ys[15] = -300.0;
        let o = ols(&xs, &ys);
        let h = huber_default(&xs, &ys);
        assert!((h.slope - 0.5).abs() < 0.05, "huber slope {}", h.slope);
        assert!(
            (h.intercept - 1.0).abs() < 0.5,
            "huber intercept {}",
            h.intercept
        );
        assert!(
            (o.slope - 0.5).abs() > (h.slope - 0.5).abs(),
            "ols should be hit harder by the outliers"
        );
    }

    #[test]
    fn huber_with_mild_noise_is_close() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 + 4.0 * x + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let h = huber_default(&xs, &ys);
        assert!((h.slope - 4.0).abs() < 0.01);
        assert!((h.intercept - 2.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_x_gives_constant_fit() {
        let xs = vec![5.0; 4];
        let ys = vec![1.0, 2.0, 3.0, 4.0];
        let fit = ols(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert!((fit.intercept - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mad_scale_of_symmetric_residuals() {
        let r = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!((mad_scale(&r) - 1.4826).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        let _ = ols(&[1.0], &[2.0]);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn rejects_mismatched_lengths() {
        let _ = ols(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan() {
        let _ = ols(&[1.0, f64::NAN], &[1.0, 2.0]);
    }
}
