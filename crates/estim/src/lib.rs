//! # collsel-estim
//!
//! Model-parameter **estimation** — the second half of the paper's
//! contribution.
//!
//! The paper's innovation is to estimate the Hockney parameters
//! *separately for each collective algorithm*, from communication
//! experiments that *contain the modelled algorithm itself*:
//!
//! * [`estimate_gamma`] — Sect. 4.1: γ(P) from repeated non-blocking
//!   linear-tree broadcasts of one segment;
//! * [`estimate_alpha_beta`] — Sect. 4.2: per-algorithm (α, β) from
//!   broadcast + linear-gather experiments, canonicalised into the
//!   linear system of Fig. 4 and solved with the Huber robust
//!   regressor ([`huber_default`]);
//! * [`estimate_network_hockney`] — the traditional point-to-point
//!   measurement, kept for the prior-work baseline models.
//!
//! Measurement follows the MPIBlib methodology the paper cites: every
//! data point is re-sampled until its mean lies within a 2.5% precision
//! 95% confidence interval ([`sample_adaptive`]).
//!
//! Estimation campaigns fan their *independent* measurement cells
//! (γ widths, per-algorithm experiment sizes) across a
//! [`collsel_support::pool::Pool`] sized by `COLLSEL_THREADS`; every
//! cell derives its seed from its grid position, so results are
//! bit-identical at any thread count. The adaptive stopping rule stays
//! strictly sequential *within* a cell.
//!
//! Each measurement cell executes on a [`collsel_mpi::Backend`]: by
//! default the timing-DAG backend compiles the measurement program to
//! a static DAG once per cell (memoised process-wide, see
//! [`memo_counters`]) and batch-evaluates repetitions payload-free;
//! the event-driven replay and OS-thread oracle backends remain
//! available (see [`measure`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alpha_beta;
mod breadth;
mod campaign;
mod gamma_est;
mod hockney_est;
mod loggp_est;
pub mod measure;
mod memo;
mod regress;
mod stats;

pub use alpha_beta::{
    estimate_all_alpha_beta, estimate_alpha_beta, log_spaced_sizes, try_estimate_all_alpha_beta,
    try_estimate_alpha_beta, AlphaBetaConfig, AlphaBetaEstimate, ExperimentPoint,
};
pub use breadth::{
    estimate_collective_alpha_beta, estimate_collective_family, try_estimate_collective_family,
    BreadthConfig, BREADTH_SEG_SIZE,
};
pub use campaign::{
    measure_family_cell, plan_crossover_fill, CrossoverPlan, FamilyCell, DECISIVE_MARGIN,
    HINT_MARGIN_FACTOR,
};
pub use gamma_est::{estimate_gamma, try_estimate_gamma, GammaConfig, GammaEstimate};
pub use hockney_est::{estimate_network_hockney, NetworkHockneyEstimate};
pub use loggp_est::{estimate_loggp, LogGPEstimate};
pub use measure::{
    bcast_gather_experiment_time_batch, bcast_gather_experiment_time_batch_with, bcast_time_batch,
    bcast_time_batch_with, collective_time, collective_time_batch, collective_time_batch_with,
    collective_time_with, try_bcast_gather_experiment_time, try_bcast_gather_experiment_time_with,
    try_bcast_time, try_bcast_time_with, try_collective_time, try_collective_time_with,
    try_linear_segment_bcast_time, try_linear_segment_bcast_time_with, try_p2p_time,
    try_p2p_time_with, BcastSpec, CollectiveSpec, ExperimentSpec, RetryPolicy,
};
pub use memo::{compiled_step_dag, memo_counters, step_cell, MemoCounters, StepCell, StepDag};
pub use regress::{huber, huber_default, ols, LinearFit};
pub use stats::{
    mad, mad_filter, median, sample_adaptive, sample_adaptive_fallible, t_critical_95,
    trimmed_mean, AdaptiveAccumulator, Precision, SampleStats, Welford,
};
