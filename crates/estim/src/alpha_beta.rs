//! Estimation of the algorithm-specific α and β — the paper's
//! Sect. 4.2.
//!
//! For each broadcast algorithm, a set of communication experiments is
//! run, each consisting of the *modelled broadcast itself* (of `m_i`
//! bytes) followed by a linear gather without synchronisation (of
//! `m_gᵢ` bytes), timed on the root. Each experiment contributes one
//! linear equation in (α, β):
//!
//! ```text
//! (a_bcast + a_gather)·α + (b_bcast + b_gather)·β = T_i
//! ```
//!
//! which is canonicalised to `α + x_i·β = y_i` (the system of the
//! paper's Fig. 4) and solved with the Huber robust regressor.
//!
//! Estimating the parameters *inside the algorithm's own execution
//! context* — rather than from bare point-to-point round-trips — is the
//! paper's second key innovation, and is what lets the models absorb
//! contention, protocol and pipelining effects the Hockney abstraction
//! cannot express.

use crate::measure::{
    bcast_gather_experiment_time_batch_with, try_bcast_gather_experiment_time_with, ExperimentSpec,
    RetryPolicy,
};
use crate::regress::huber_default;
use crate::stats::{Precision, SampleStats};
use collsel_coll::BcastAlg;
use collsel_model::{derived, FitValidity, GammaTable, Hockney};
use collsel_mpi::{Backend, SimError};
use collsel_netsim::ClusterModel;
use collsel_support::pool::Pool;
use std::collections::BTreeMap;

/// Configuration of the α/β estimation experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaBetaConfig {
    /// Pipeline segment size `m_s` (the paper uses 8 KB).
    pub seg_size: usize,
    /// Broadcast message sizes `m_i` (the paper: 10 sizes, log-spaced
    /// from 8 KB to 4 MB).
    pub msg_sizes: Vec<usize>,
    /// Gather contribution sizes `m_gᵢ` (the paper requires
    /// `m_g ≠ m_s`; one per message size).
    pub gather_sizes: Vec<usize>,
    /// Number of processes in the experiments (the paper uses about
    /// half the cluster on Grisou — 40 — and all 124 on Gros).
    pub p: usize,
    /// Stopping rule per experiment.
    pub precision: Precision,
    /// Execution backend of the measurement simulations (both return
    /// bit-identical statistics; events is the campaign hot path).
    pub backend: Backend,
}

/// `count` sizes log-spaced (inclusive) between `lo` and `hi`.
///
/// # Panics
///
/// Panics if `lo` or `hi` is zero, `lo > hi`, or `count < 2`.
pub fn log_spaced_sizes(lo: usize, hi: usize, count: usize) -> Vec<usize> {
    assert!(lo > 0 && hi > 0, "sizes must be positive");
    assert!(lo <= hi, "lo must not exceed hi");
    assert!(count >= 2, "need at least two sizes");
    let (lo_f, hi_f) = (lo as f64, hi as f64);
    (0..count)
        .map(|i| {
            let t = i as f64 / (count - 1) as f64;
            (lo_f * (hi_f / lo_f).powf(t)).round() as usize
        })
        .collect()
}

impl AlphaBetaConfig {
    /// The paper's configuration for a `p`-process experiment: 8 KB
    /// segments, 10 log-spaced sizes in 8 KB..4 MB, gather
    /// contributions log-spaced in 1..64 KB (distinct from `m_s`).
    pub fn paper(p: usize) -> Self {
        AlphaBetaConfig {
            seg_size: 8 * 1024,
            msg_sizes: log_spaced_sizes(8 * 1024, 4 * 1024 * 1024, 10),
            gather_sizes: log_spaced_sizes(1024, 64 * 1024, 10),
            p,
            precision: Precision::paper(),
            backend: Backend::default(),
        }
    }

    /// A small, fast configuration for tests.
    ///
    /// The gather range matters for conditioning: the canonical
    /// abscissa `x` must vary enough across experiments, which for the
    /// segmented algorithms (whose own per-stage size is pinned to
    /// `m_s`) comes mostly from the `(P-1)·m_g` gather term.
    pub fn quick(p: usize) -> Self {
        AlphaBetaConfig {
            seg_size: 8 * 1024,
            msg_sizes: log_spaced_sizes(8 * 1024, 1024 * 1024, 5),
            gather_sizes: log_spaced_sizes(2 * 1024, 64 * 1024, 5),
            p,
            precision: Precision::quick(),
            backend: Backend::default(),
        }
    }

    fn validate(&self) {
        assert!(self.seg_size > 0, "segment size must be positive");
        assert!(self.p >= 2, "experiments need at least two processes");
        assert_eq!(
            self.msg_sizes.len(),
            self.gather_sizes.len(),
            "one gather size per message size"
        );
        assert!(
            self.msg_sizes.len() >= 2,
            "need at least two experiments to fit two parameters"
        );
    }
}

/// One experiment's canonicalised equation and measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentPoint {
    /// Broadcast message size `m_i`.
    pub msg_size: usize,
    /// Gather contribution size `m_gᵢ`.
    pub gather_size: usize,
    /// Canonical abscissa `x_i = b_i / a_i` (bytes).
    pub x: f64,
    /// Canonical ordinate `y_i = T_i / a_i` (seconds).
    pub y: f64,
    /// The raw measured experiment time.
    pub measured: SampleStats,
}

/// Result of the α/β estimation for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaBetaEstimate {
    /// The fitted per-algorithm Hockney pair.
    pub hockney: Hockney,
    /// The canonicalised system that was solved.
    pub points: Vec<ExperimentPoint>,
}

impl AlphaBetaEstimate {
    /// Judges whether this fit may be trusted for ranking algorithms.
    ///
    /// Derived from the stored data, never persisted: the fit is valid
    /// when both parameters are finite and non-negative, not jointly
    /// zero, and every underlying experiment's measurement converged to
    /// the precision target. A non-valid verdict carries the reason
    /// (and, for unconverged fits, the worst achieved relative CI
    /// half-width), which the selection layer reports when it falls
    /// back to the Open MPI rules.
    pub fn validity(&self) -> FitValidity {
        let mut all_converged = true;
        let mut worst_ci = 0.0f64;
        for pt in &self.points {
            if !pt.measured.converged {
                all_converged = false;
                let rel = if pt.measured.mean == 0.0 {
                    f64::INFINITY
                } else {
                    pt.measured.ci_half_width / pt.measured.mean.abs()
                };
                worst_ci = worst_ci.max(rel);
            }
        }
        FitValidity::judge(
            self.hockney.alpha,
            self.hockney.beta,
            all_converged,
            worst_ci,
        )
    }
}

/// The experiment cells of one algorithm's estimation, in point order,
/// with the exact per-point seeds of the original serial loop.
fn experiment_specs(alg: BcastAlg, cfg: &AlphaBetaConfig, seed: u64) -> Vec<ExperimentSpec> {
    cfg.msg_sizes
        .iter()
        .zip(&cfg.gather_sizes)
        .enumerate()
        .map(|(idx, (&m, &m_g))| ExperimentSpec {
            alg,
            p: cfg.p,
            m,
            m_g,
            seg_size: cfg.seg_size,
            seed: seed.wrapping_add(idx as u64 * 7919),
        })
        .collect()
}

/// Canonicalises the measured cells and fits (α, β) with the Huber
/// regressor; `measured` is in point order.
fn fit_from_measurements(
    alg: BcastAlg,
    cfg: &AlphaBetaConfig,
    gamma: &GammaTable,
    measured: Vec<SampleStats>,
) -> AlphaBetaEstimate {
    let points: Vec<ExperimentPoint> = cfg
        .msg_sizes
        .iter()
        .zip(&cfg.gather_sizes)
        .zip(measured)
        .map(|((&m, &m_g), measured)| {
            let coeff = derived::bcast_coefficients(alg, cfg.p, m, cfg.seg_size, gamma)
                .plus(derived::gather_linear_coefficients(cfg.p, m_g));
            let (x, y) = coeff.canonicalise(measured.mean);
            ExperimentPoint {
                msg_size: m,
                gather_size: m_g,
                x,
                y,
                measured,
            }
        })
        .collect();
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let fit = huber_default(&xs, &ys);
    AlphaBetaEstimate {
        hockney: Hockney::new(fit.intercept.max(0.0), fit.slope.max(0.0)),
        points,
    }
}

/// Runs the Sect. 4.2 experiments for `alg` and fits (α, β) with the
/// Huber regressor. Negative fitted values (possible when the model's
/// startup count overestimates reality) are clamped to zero, as the
/// Hockney parameters are physical quantities.
///
/// The per-size experiments are independent (each carries its own seed
/// derived from its point index) and fan out across the current
/// [`Pool`]; the fit is bit-identical to serial execution at any thread
/// count.
///
/// # Panics
///
/// Panics if the configuration is invalid or `p` exceeds the cluster.
pub fn estimate_alpha_beta(
    cluster: &ClusterModel,
    alg: BcastAlg,
    cfg: &AlphaBetaConfig,
    gamma: &GammaTable,
    seed: u64,
) -> AlphaBetaEstimate {
    cfg.validate();
    let specs = experiment_specs(alg, cfg, seed);
    let measured = bcast_gather_experiment_time_batch_with(
        cluster,
        &specs,
        &cfg.precision,
        Pool::current(),
        cfg.backend,
    );
    fit_from_measurements(alg, cfg, gamma, measured)
}

/// Runs the estimation for all six broadcast algorithms.
///
/// The whole algorithm × message-size grid is flattened into a single
/// batch, so the pool load-balances across all cells at once instead of
/// synchronising between algorithms.
pub fn estimate_all_alpha_beta(
    cluster: &ClusterModel,
    cfg: &AlphaBetaConfig,
    gamma: &GammaTable,
    seed: u64,
) -> BTreeMap<BcastAlg, AlphaBetaEstimate> {
    cfg.validate();
    let specs: Vec<ExperimentSpec> = BcastAlg::ALL
        .iter()
        .enumerate()
        .flat_map(|(i, &alg)| experiment_specs(alg, cfg, seed.wrapping_add((i as u64) << 32)))
        .collect();
    let measured = bcast_gather_experiment_time_batch_with(
        cluster,
        &specs,
        &cfg.precision,
        Pool::current(),
        cfg.backend,
    );
    let n = cfg.msg_sizes.len();
    let mut cells = measured.into_iter();
    BcastAlg::ALL
        .iter()
        .map(|&alg| {
            let alg_cells: Vec<SampleStats> = cells.by_ref().take(n).collect();
            (alg, fit_from_measurements(alg, cfg, gamma, alg_cells))
        })
        .collect()
}

/// Fallible twin of [`estimate_alpha_beta`]: each experiment runs under
/// `policy`'s virtual-time watchdog, and a point whose measurement
/// stalls past every retry or cannot reach the precision target aborts
/// this algorithm's estimation with a typed error — the caller decides
/// whether to skip the algorithm or give up (see
/// [`try_estimate_all_alpha_beta`]).
///
/// # Errors
///
/// Propagates the first [`SimError`] from any experiment.
///
/// # Panics
///
/// Panics if the configuration is invalid or `p` exceeds the cluster.
pub fn try_estimate_alpha_beta(
    cluster: &ClusterModel,
    alg: BcastAlg,
    cfg: &AlphaBetaConfig,
    gamma: &GammaTable,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<AlphaBetaEstimate, SimError> {
    cfg.validate();
    let specs = experiment_specs(alg, cfg, seed);
    let measured = try_experiment_batch(cluster, &specs, &cfg.precision, policy, cfg.backend)?;
    Ok(fit_from_measurements(alg, cfg, gamma, measured))
}

/// Fans the fallible cells out across the current pool. All cells run
/// even past a failure (in-flight jobs cannot be cancelled), but the
/// returned error is the first one in spec order — the same outcome the
/// early-exiting serial loop produces.
fn try_experiment_batch(
    cluster: &ClusterModel,
    specs: &[ExperimentSpec],
    precision: &Precision,
    policy: &RetryPolicy,
    backend: Backend,
) -> Result<Vec<SampleStats>, SimError> {
    Pool::current()
        .run(specs.iter().map(|spec| {
            let spec = *spec;
            move || {
                try_bcast_gather_experiment_time_with(
                    cluster,
                    spec.alg,
                    spec.p,
                    spec.m,
                    spec.m_g,
                    spec.seg_size,
                    precision,
                    spec.seed,
                    policy,
                    backend,
                )
            }
        }))
        .into_iter()
        .collect()
}

/// Runs the fallible estimation for all six broadcast algorithms,
/// keeping per-algorithm outcomes separate: one algorithm timing out
/// under a fault plan must not discard the five fits that succeeded.
/// The tuner turns `Err` entries into skipped algorithms and the
/// selector falls back to the Open MPI rules for them.
pub fn try_estimate_all_alpha_beta(
    cluster: &ClusterModel,
    cfg: &AlphaBetaConfig,
    gamma: &GammaTable,
    seed: u64,
    policy: &RetryPolicy,
) -> BTreeMap<BcastAlg, Result<AlphaBetaEstimate, SimError>> {
    cfg.validate();
    // Flatten the whole algorithm × size grid into one batch (see
    // `estimate_all_alpha_beta`), then regroup per algorithm: each
    // algorithm's outcome is its cells' results folded in point order,
    // so one algorithm's failure leaves the others' fits intact and the
    // reported error matches the serial loop's.
    let flat: Vec<ExperimentSpec> = BcastAlg::ALL
        .iter()
        .enumerate()
        .flat_map(|(i, &alg)| experiment_specs(alg, cfg, seed.wrapping_add((i as u64) << 32)))
        .collect();
    let outcomes = Pool::current().run(flat.iter().map(|spec| {
        let spec = *spec;
        move || {
            try_bcast_gather_experiment_time_with(
                cluster,
                spec.alg,
                spec.p,
                spec.m,
                spec.m_g,
                spec.seg_size,
                &cfg.precision,
                spec.seed,
                policy,
                cfg.backend,
            )
        }
    }));
    let n = cfg.msg_sizes.len();
    let mut cells = outcomes.into_iter();
    BcastAlg::ALL
        .iter()
        .map(|&alg| {
            let alg_cells: Result<Vec<SampleStats>, SimError> = cells.by_ref().take(n).collect();
            (
                alg,
                alg_cells.map(|measured| fit_from_measurements(alg, cfg, gamma, measured)),
            )
        })
        .collect()
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(ExperimentPoint {
    msg_size,
    gather_size,
    x,
    y,
    measured
});
collsel_support::json_struct!(AlphaBetaEstimate { hockney, points });

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;

    #[test]
    fn log_spacing_is_constant_in_log() {
        let sizes = log_spaced_sizes(8 * 1024, 4 * 1024 * 1024, 10);
        assert_eq!(sizes.len(), 10);
        assert_eq!(sizes[0], 8 * 1024);
        assert_eq!(sizes[9], 4 * 1024 * 1024);
        let ratios: Vec<f64> = sizes
            .windows(2)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect();
        for r in &ratios {
            assert!((r - ratios[0]).abs() / ratios[0] < 0.01, "{ratios:?}");
        }
    }

    #[test]
    fn fits_positive_parameters_on_quiet_cluster() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let gamma = GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)]);
        let cfg = AlphaBetaConfig::quick(24);
        let est = estimate_alpha_beta(&cluster, BcastAlg::Binomial, &cfg, &gamma, 1);
        assert!(est.hockney.beta > 0.0, "{:?}", est.hockney);
        assert!(est.hockney.alpha >= 0.0);
        assert_eq!(est.points.len(), 5);
        // The canonical points should be increasing in x.
        for w in est.points.windows(2) {
            assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn model_with_fitted_params_tracks_measurement() {
        // Self-consistency: predict the experiment's own configurations
        // within a reasonable factor (the two-parameter Hockney model
        // cannot be tight against the richer simulated network at both
        // ends of the size range).
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let gamma = GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)]);
        let cfg = AlphaBetaConfig::quick(24);
        let est = estimate_alpha_beta(&cluster, BcastAlg::Chain, &cfg, &gamma, 2);
        for pt in &est.points {
            let pred = derived::predict_bcast(
                BcastAlg::Chain,
                cfg.p,
                pt.msg_size,
                cfg.seg_size,
                &gamma,
                &est.hockney,
            ) + est
                .hockney
                .eval(derived::gather_linear_coefficients(cfg.p, pt.gather_size));
            let ratio = pred / pt.measured.mean;
            assert!(
                (0.3..3.0).contains(&ratio),
                "m={} predicted {pred:.6} measured {:.6}",
                pt.msg_size,
                pt.measured.mean
            );
        }
    }

    #[test]
    fn different_algorithms_get_different_parameters() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let gamma = GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)]);
        let cfg = AlphaBetaConfig::quick(8);
        let a = estimate_alpha_beta(&cluster, BcastAlg::Linear, &cfg, &gamma, 3).hockney;
        let b = estimate_alpha_beta(&cluster, BcastAlg::Chain, &cfg, &gamma, 3).hockney;
        assert!(
            (a.beta - b.beta).abs() / a.beta.max(b.beta) > 0.01,
            "context-dependence should separate the fits: {a} vs {b}"
        );
    }

    #[test]
    fn try_estimate_matches_infallible_without_deadline() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let gamma = GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)]);
        let cfg = AlphaBetaConfig::quick(8);
        let plain = estimate_alpha_beta(&cluster, BcastAlg::Binomial, &cfg, &gamma, 1);
        let tried = try_estimate_alpha_beta(
            &cluster,
            BcastAlg::Binomial,
            &cfg,
            &gamma,
            1,
            &RetryPolicy::no_deadline(),
        )
        .expect("fault-free estimation succeeds");
        assert_eq!(plain, tried);
        assert!(tried.validity().is_valid(), "{}", tried.validity());
    }

    #[test]
    fn try_estimate_all_keeps_per_algorithm_outcomes() {
        use collsel_netsim::SimSpan;
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let gamma = GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)]);
        let cfg = AlphaBetaConfig::quick(8);
        let policy = RetryPolicy {
            max_attempts: 1,
            budget: Some(SimSpan::from_nanos(1)),
            backoff: 1,
        };
        let all = try_estimate_all_alpha_beta(&cluster, &cfg, &gamma, 1, &policy);
        assert_eq!(all.len(), BcastAlg::ALL.len());
        for (alg, outcome) in &all {
            let err = outcome.as_ref().expect_err("1 ns budget cannot fit a run");
            assert!(matches!(err, SimError::Timeout { .. }), "{alg:?}: {err}");
        }
    }

    #[test]
    fn validity_flags_unconverged_points() {
        use crate::stats::SampleStats;
        let good = SampleStats {
            mean: 1.0,
            std_dev: 0.0,
            n: 5,
            ci_half_width: 0.0,
            converged: true,
            skewness: 0.0,
            excess_kurtosis: 0.0,
        };
        let bad = SampleStats {
            ci_half_width: 0.2,
            converged: false,
            ..good
        };
        let mk_point = |s: SampleStats| ExperimentPoint {
            msg_size: 1024,
            gather_size: 512,
            x: 1.0,
            y: 1.0,
            measured: s,
        };
        let est = AlphaBetaEstimate {
            hockney: Hockney::new(1e-5, 1e-9),
            points: vec![mk_point(good), mk_point(bad)],
        };
        assert_eq!(est.validity(), FitValidity::Unconverged { achieved: 0.2 });
        let nonfinite = AlphaBetaEstimate {
            // Bypass Hockney::new's asserts: validity() is the defence
            // layer for parameters that arrive via deserialisation.
            hockney: Hockney {
                alpha: f64::NAN,
                beta: 1e-9,
            },
            points: vec![mk_point(good)],
        };
        assert_eq!(nonfinite.validity(), FitValidity::NonFinite);
    }

    #[test]
    #[should_panic(expected = "one gather size per message size")]
    fn validates_size_lists() {
        let cluster = ClusterModel::gros();
        let gamma = GammaTable::ones();
        let mut cfg = AlphaBetaConfig::quick(4);
        cfg.gather_sizes.pop();
        let _ = estimate_alpha_beta(&cluster, BcastAlg::Linear, &cfg, &gamma, 0);
    }
}
