//! Measured (simulated) execution times of collectives, with the
//! paper's adaptive repetition methodology.
//!
//! All measurements are framed the MPIBlib way: a barrier, the root's
//! clock around the operation, and (for operations that do not
//! naturally end on the root) a closing barrier so the root observes
//! the completion of the slowest rank.
//!
//! Three API tiers live here:
//!
//! * the original infallible functions ([`bcast_time`] etc.) — used by
//!   the golden regression path; they run without a watchdog and panic
//!   only on programming errors (a barrier/broadcast measurement
//!   program cannot deadlock by construction);
//! * fallible `try_*` twins — for measurement on a *faulted* cluster
//!   ([`collsel_netsim::FaultPlan`]). They arm the virtual-time
//!   watchdog, retry timed-out batches under a [`RetryPolicy`] with a
//!   grown budget and a perturbed seed, and report
//!   [`SimError::PrecisionNotReached`] instead of silently returning a
//!   non-converged sample;
//! * `*_batch` fan-out twins ([`bcast_time_batch`],
//!   [`bcast_gather_experiment_time_batch`]) — run many independent
//!   measurement cells across a [`Pool`], returning results in spec
//!   order, bit-identical to the serial tier at any thread count.
//!
//! Every tier also comes in a `*_with` variant taking an execution
//! [`Backend`]. The default ([`Backend::Dag`]) compiles the
//! measurement program to a [`collsel_mpi::Schedule`] and lowers it to
//! a [`collsel_mpi::TimingDag`] once per *cell* (memoised process-wide
//! in [`crate::memo`]), then evaluates repetitions payload-free with a
//! per-call [`DagEvaluator`] whose fabric and scratch are reset in
//! place per batch. [`Backend::Events`] replays the schedule through
//! the full discrete-event engine instead. On either backend the
//! timing samples are derived from the run's `wtime` observations with
//! the same float arithmetic the threaded closures apply, so all three
//! backends return **bit-identical** statistics. [`Backend::Threads`]
//! runs the original closures through [`collsel_mpi::simulate_pooled`]
//! and remains the oracle the other two are checked against
//! (`tests/backend_equivalence.rs`, `tests/dag_equivalence.rs`).

use crate::memo::{compiled_dag, CellProgram, DagCell};
use crate::stats::{sample_adaptive, sample_adaptive_fallible, Precision, SampleStats};
use collsel_coll::compile::{
    compile_timed_bcast, compile_timed_bcast_gather, compile_timed_collective,
    compile_timed_linear_segment,
};
use collsel_coll::{bcast, gather_linear, run_collective, Alg, BcastAlg};
use collsel_mpi::{
    record_schedule, simulate_scheduled, Backend, Comm, Ctx, DagEvaluator, RecordError, Schedule,
    ScheduledRun, SimError, SimOptions, TimingDag,
};
use collsel_netsim::{ClusterModel, FaultPlan, SimSpan};
use collsel_support::pool::Pool;
use std::sync::Arc;

pub use collsel_support::payload::payload;

/// Retry policy for measurements on a cluster that may stall.
///
/// Each batch of repetitions runs under a virtual-time watchdog
/// [`budget`](RetryPolicy::budget); a batch that times out is retried
/// up to [`max_attempts`](RetryPolicy::max_attempts) times with the
/// budget multiplied by [`backoff`](RetryPolicy::backoff) each attempt
/// and a deterministically perturbed seed (attempt 0 uses the caller's
/// seed unchanged). Non-timeout errors are never retried — a deadlock
/// or rank panic is a bug, not bad luck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per batch (first try included).
    pub max_attempts: usize,
    /// Virtual-time budget of the first attempt; `None` disables the
    /// watchdog (and makes retries pointless).
    pub budget: Option<SimSpan>,
    /// Multiplier applied to the budget on every retry.
    pub backoff: u64,
}

impl Default for RetryPolicy {
    /// Three attempts starting from a 10-second virtual budget,
    /// quadrupling on each retry (10 s → 40 s → 160 s of virtual time —
    /// generous against real collective runtimes of micro- to
    /// milliseconds, tight against a genuine stall).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            budget: Some(SimSpan::from_secs_f64(10.0)),
            backoff: 4,
        }
    }
}

impl RetryPolicy {
    /// A policy with no watchdog and no retries: batches behave exactly
    /// like the infallible measurement tier.
    pub fn no_deadline() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            budget: None,
            backoff: 1,
        }
    }

    /// The per-request watchdog tier of the decision server: a tight
    /// 10 µs virtual budget for the first attempt (a compiled-table
    /// lookup is tens of nanoseconds, so only a degraded generation
    /// trips it), one retry on the previous generation with an 8×
    /// budget. Tuning-stage policies measure whole collectives and need
    /// seconds; serving-stage budgets guard a table lookup.
    pub fn for_serving() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            budget: Some(SimSpan::from_nanos(10_000)),
            backoff: 8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero attempts or a zero backoff with several attempts.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "need at least one attempt");
        assert!(self.backoff >= 1, "backoff multiplier must be at least 1");
    }

    /// Simulation options for the given (0-based) attempt.
    ///
    /// The deadline grows geometrically with the attempt; the growth
    /// saturates at `u64::MAX` nanoseconds (an effectively unarmed
    /// watchdog) rather than overflowing — `backoff^attempt` exceeds
    /// u64 after a few dozen retries of an aggressive policy, and the
    /// unchecked product would panic in debug or wrap to a uselessly
    /// tiny deadline in release.
    fn options_for(&self, attempt: usize) -> SimOptions {
        match self.budget {
            Some(budget) => {
                let factor = self
                    .backoff
                    .saturating_pow(attempt.min(u32::MAX as usize) as u32);
                let nanos = budget.as_nanos().saturating_mul(factor);
                SimOptions::with_deadline(SimSpan::from_nanos(nanos))
            }
            None => SimOptions::default(),
        }
    }
}

/// Mixes the retry attempt into the seed; attempt 0 leaves it unchanged
/// so the first try reproduces the infallible tier bit-for-bit.
fn mix_attempt(seed: u64, attempt: usize) -> u64 {
    seed.wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `program` as a `p`-rank simulation under `policy`, retrying
/// watchdog timeouts, and returns the root rank's samples.
fn try_root_samples(
    cluster: &ClusterModel,
    p: usize,
    seed: u64,
    policy: &RetryPolicy,
    program: impl Fn(&mut Ctx) -> Vec<f64> + Send + Sync + 'static,
) -> Result<Vec<f64>, SimError> {
    policy.validate();
    let program = Arc::new(program);
    let mut last_timeout: Option<SimError> = None;
    for attempt in 0..policy.max_attempts {
        let opts = policy.options_for(attempt);
        let prog = Arc::clone(&program);
        match collsel_mpi::simulate_pooled(
            cluster,
            p,
            mix_attempt(seed, attempt),
            opts,
            move |ctx| prog(ctx),
        ) {
            Ok(out) => {
                // Invariant: the root always returns a value once the
                // simulation completes.
                return Ok(out.results.into_iter().nth(ROOT).expect("root result"));
            }
            Err(e @ SimError::Timeout { .. }) => last_timeout = Some(e),
            Err(e) => return Err(e),
        }
    }
    // Invariant: max_attempts >= 1, so at least one timeout was seen.
    Err(last_timeout.expect("at least one attempt ran"))
}

/// Root rank used by all measurement experiments.
pub const ROOT: usize = 0;

/// The cluster a measurement schedule is recorded on: the caller's
/// topology with fault injection stripped.
///
/// A compilable program's operation stream never depends on timing, so
/// recording on the pristine topology yields the same schedule — and
/// keeps the recording run (which is not armed with a watchdog) from
/// being slowed or stalled by a fault plan that the *replays* handle
/// under the retry policy's deadlines.
pub(crate) fn recording_cluster(cluster: &ClusterModel) -> ClusterModel {
    cluster.clone().with_faults(FaultPlan::none())
}

/// Derives the root's timing samples from a replay's clock
/// observations: consecutive `wtime` pairs, each divided by `per` —
/// exactly the float arithmetic the threaded closures apply to the same
/// virtual clock values (division by `1.0` is exact).
pub(crate) fn paired_samples(run: &ScheduledRun, per: f64) -> Vec<f64> {
    run.wtimes[ROOT]
        .chunks_exact(2)
        .map(|w| (w[1] - w[0]).as_secs_f64() / per)
        .collect()
}

/// Replays `sched` once per adaptive batch and feeds the root's samples
/// to the stopping rule. Infallible tier: no watchdog is armed, and a
/// recorded measurement program cannot deadlock.
fn events_stats(
    cluster: &ClusterModel,
    sched: &Schedule,
    precision: &Precision,
    seed: u64,
    per: f64,
) -> SampleStats {
    sample_adaptive(precision, |batch| {
        let run = simulate_scheduled(
            cluster,
            sched,
            seed.wrapping_add(batch as u64),
            SimOptions::default(),
        )
        .expect("measurement program cannot deadlock");
        paired_samples(&run, per)
    })
}

/// Fallible twin of [`events_stats`]: replays run under `policy`'s
/// virtual-time watchdog with the same retry, backoff and
/// seed-perturbation discipline as [`try_root_samples`].
fn try_events_stats(
    cluster: &ClusterModel,
    sched: &Schedule,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    per: f64,
) -> Result<SampleStats, SimError> {
    policy.validate();
    sample_adaptive_fallible(precision, |batch| {
        let batch_seed = seed.wrapping_add(batch as u64);
        let mut last_timeout: Option<SimError> = None;
        for attempt in 0..policy.max_attempts {
            match simulate_scheduled(
                cluster,
                sched,
                mix_attempt(batch_seed, attempt),
                policy.options_for(attempt),
            ) {
                Ok(run) => return Ok(paired_samples(&run, per)),
                Err(e @ SimError::Timeout { .. }) => last_timeout = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_timeout.expect("at least one attempt ran"))
    })
}

/// Evaluates a memoised cell DAG once per adaptive batch and feeds the
/// root's samples to the stopping rule. One [`DagEvaluator`] serves
/// the whole call, so every batch after the first runs allocation-free
/// against a reset-in-place fabric. Infallible tier: no watchdog is
/// armed, and a recorded measurement program cannot deadlock.
fn dag_stats(
    cluster: &ClusterModel,
    dag: &Arc<TimingDag>,
    precision: &Precision,
    seed: u64,
    per: f64,
) -> SampleStats {
    let mut ev = DagEvaluator::new(cluster, Arc::clone(dag));
    sample_adaptive(precision, |batch| {
        let run = ev
            .run(seed.wrapping_add(batch as u64), SimOptions::default())
            .expect("measurement program cannot deadlock");
        paired_samples(&run, per)
    })
}

/// Fallible twin of [`dag_stats`]: evaluations run under `policy`'s
/// virtual-time watchdog with the same retry, backoff and
/// seed-perturbation discipline as [`try_root_samples`].
fn try_dag_stats(
    cluster: &ClusterModel,
    dag: &Arc<TimingDag>,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    per: f64,
) -> Result<SampleStats, SimError> {
    policy.validate();
    let mut ev = DagEvaluator::new(cluster, Arc::clone(dag));
    sample_adaptive_fallible(precision, |batch| {
        let batch_seed = seed.wrapping_add(batch as u64);
        let mut last_timeout: Option<SimError> = None;
        for attempt in 0..policy.max_attempts {
            match ev.run(
                mix_attempt(batch_seed, attempt),
                policy.options_for(attempt),
            ) {
                Ok(run) => return Ok(paired_samples(&run, per)),
                Err(e @ SimError::Timeout { .. }) => last_timeout = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_timeout.expect("at least one attempt ran"))
    })
}

/// The shared backend dispatch of every `*_time_with` measurement: on
/// [`Backend::Dag`], the cell's compiled timing DAG (recorded on a
/// fault-free recording topology with `precision.min_reps` repetitions
/// per batch, memoised process-wide under `program`) is evaluated per
/// batch; on [`Backend::Events`], `compile` records the measurement
/// program once per call and the replays feed the adaptive stopping
/// rule; on [`Backend::Threads`] — or on a recording failure,
/// impossible for these wildcard-free programs but the contract is
/// open — `threads` runs the original closure through the
/// thread-per-rank oracle. All three paths are bit-identical.
fn stats_with_backend(
    cluster: &ClusterModel,
    backend: Backend,
    precision: &Precision,
    seed: u64,
    per: f64,
    program: CellProgram,
    compile: impl FnOnce(&ClusterModel, usize) -> Result<Schedule, RecordError>,
    threads: impl FnOnce() -> SampleStats,
) -> SampleStats {
    match backend {
        Backend::Dag => {
            match compiled_dag(
                &recording_cluster(cluster),
                program,
                precision.min_reps,
                compile,
            ) {
                Some(DagCell::Compiled(dag)) => {
                    return dag_stats(cluster, &dag, precision, seed, per);
                }
                // Too many ops for the DAG index space: replay the
                // already-recorded schedule through the events tier.
                Some(DagCell::TooLarge(sched)) => {
                    return events_stats(cluster, &sched, precision, seed, per);
                }
                None => {}
            }
        }
        Backend::Events => {
            if let Ok(sched) = compile(&recording_cluster(cluster), precision.min_reps) {
                return events_stats(cluster, &sched, precision, seed, per);
            }
        }
        Backend::Threads => {}
    }
    threads()
}

/// Fallible twin of [`stats_with_backend`] for the `try_*_with` tier:
/// DAG evaluations and event replays run under `policy`'s
/// watchdog-and-retry discipline ([`try_dag_stats`],
/// [`try_events_stats`]).
#[allow(clippy::too_many_arguments)]
fn try_stats_with_backend(
    cluster: &ClusterModel,
    backend: Backend,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    per: f64,
    program: CellProgram,
    compile: impl FnOnce(&ClusterModel, usize) -> Result<Schedule, RecordError>,
    threads: impl FnOnce() -> Result<SampleStats, SimError>,
) -> Result<SampleStats, SimError> {
    match backend {
        Backend::Dag => {
            match compiled_dag(
                &recording_cluster(cluster),
                program,
                precision.min_reps,
                compile,
            ) {
                Some(DagCell::Compiled(dag)) => {
                    return try_dag_stats(cluster, &dag, precision, seed, policy, per);
                }
                Some(DagCell::TooLarge(sched)) => {
                    return try_events_stats(cluster, &sched, precision, seed, policy, per);
                }
                None => {}
            }
        }
        Backend::Events => {
            if let Ok(sched) = compile(&recording_cluster(cluster), precision.min_reps) {
                return try_events_stats(cluster, &sched, precision, seed, policy, per);
            }
        }
        Backend::Threads => {}
    }
    threads()
}

/// Records the round-trip program of [`p2p_time`]: `reps` repetitions
/// of `barrier; wtime; ping-pong; wtime` between ranks 0 and 1.
fn compile_timed_p2p(
    cluster: &ClusterModel,
    m: usize,
    reps: usize,
) -> Result<Schedule, RecordError> {
    let msg = payload(m);
    record_schedule(cluster, 2, move |rc| {
        for _ in 0..reps {
            rc.barrier();
            let _ = rc.wtime();
            if rc.rank() == 0 {
                rc.send(1, 0, msg.clone());
                let _ = rc.recv(1, 1);
            } else {
                let (data, _) = rc.recv(0, 0);
                rc.send(0, 1, data);
            }
            let _ = rc.wtime();
        }
    })
}

/// Runs `reps` timed repetitions of `body` inside one simulation and
/// returns the root's per-repetition times in seconds.
///
/// Each repetition is `barrier; t0; body; barrier; t1` measured on the
/// root, so the sample covers the completion of the slowest rank.
///
/// The `expect`s below are documented invariants, not error handling:
/// barrier-synchronised collective programs cannot deadlock on a
/// causally consistent fabric with no watchdog armed, and a completed
/// simulation always yields the root's result. Measurement paths that
/// CAN fail (watchdog deadlines, fault plans) go through
/// [`try_root_samples`] instead and propagate typed errors.
pub(crate) fn timed_reps(
    cluster: &ClusterModel,
    p: usize,
    seed: u64,
    reps: usize,
    body: impl Fn(&mut collsel_mpi::Ctx) + Send + Sync + 'static,
) -> Vec<f64> {
    let out = collsel_mpi::simulate_pooled(cluster, p, seed, SimOptions::default(), move |ctx| {
        let mut ts = Vec::with_capacity(reps);
        for _ in 0..reps {
            ctx.barrier();
            let t0 = ctx.wtime();
            body(ctx);
            ctx.barrier();
            let t1 = ctx.wtime();
            if ctx.rank() == ROOT {
                ts.push((t1 - t0).as_secs_f64());
            }
        }
        ts
    })
    .expect("measurement program cannot deadlock");
    out.results.into_iter().nth(ROOT).expect("root result")
}

/// Measures the execution time of one broadcast configuration until the
/// paper's precision target is met, on the default [`Backend`].
///
/// # Panics
///
/// Panics if `p` exceeds the cluster's slots or `seg_size` is zero for
/// a segmented algorithm.
pub fn bcast_time(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    bcast_time_with(
        cluster,
        alg,
        p,
        m,
        seg_size,
        precision,
        seed,
        Backend::default(),
    )
}

/// [`bcast_time`] on an explicit execution [`Backend`]; both backends
/// return bit-identical statistics.
///
/// # Panics
///
/// Same as [`bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn bcast_time_with(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    backend: Backend,
) -> SampleStats {
    stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        1.0,
        CellProgram::Bcast {
            alg,
            p,
            m,
            seg_size,
        },
        |rec, reps| compile_timed_bcast(rec, alg, p, ROOT, m, seg_size, reps),
        || bcast_time_threads(cluster, alg, p, m, seg_size, precision, seed),
    )
}

/// The threaded-oracle body of [`bcast_time`].
fn bcast_time_threads(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    let msg = payload(m);
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        timed_reps(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            reps,
            move |ctx| {
                let data = (ctx.rank() == ROOT).then(|| msg.clone());
                let _ = bcast(ctx, alg, ROOT, data, m, seg_size);
            },
        )
    })
}

/// Measures the execution time of one collective configuration —
/// any algorithm of any of the seven collectives — until the paper's
/// precision target is met, on the default [`Backend`].
///
/// `m` follows [`run_collective`]'s payload convention: the total
/// vector for rooted one-to-all/all-to-one collectives and allreduce,
/// the per-rank block for gather/scatter/allgather/alltoall. Each
/// repetition is `barrier; t0; collective; barrier; t1` on the root, so
/// the sample covers the slowest rank's completion.
///
/// # Panics
///
/// Panics if `p` exceeds the cluster's slots.
pub fn collective_time(
    cluster: &ClusterModel,
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    collective_time_with(
        cluster,
        alg,
        p,
        m,
        seg_size,
        precision,
        seed,
        Backend::default(),
    )
}

/// [`collective_time`] on an explicit execution [`Backend`]; both
/// backends return bit-identical statistics
/// (`tests/collective_breadth.rs`).
///
/// # Panics
///
/// Same as [`collective_time`].
#[allow(clippy::too_many_arguments)]
pub fn collective_time_with(
    cluster: &ClusterModel,
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    backend: Backend,
) -> SampleStats {
    stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        1.0,
        CellProgram::Collective {
            alg,
            p,
            m,
            seg_size,
        },
        |rec, reps| compile_timed_collective(rec, alg, p, ROOT, m, seg_size, reps),
        || collective_time_threads(cluster, alg, p, m, seg_size, precision, seed),
    )
}

/// The threaded-oracle body of [`collective_time`].
fn collective_time_threads(
    cluster: &ClusterModel,
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        timed_reps(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            reps,
            move |ctx| run_collective(ctx, alg, ROOT, m, seg_size),
        )
    })
}

/// Fallible twin of [`collective_time`] for clusters that may stall
/// under an injected fault plan; see [`try_bcast_time`] for the retry
/// discipline.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_collective_time(
    cluster: &ClusterModel,
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    try_collective_time_with(
        cluster,
        alg,
        p,
        m,
        seg_size,
        precision,
        seed,
        policy,
        Backend::default(),
    )
}

/// [`try_collective_time`] on an explicit execution [`Backend`]; both
/// backends return bit-identical results, including error variants.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_collective_time_with(
    cluster: &ClusterModel,
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    backend: Backend,
) -> Result<SampleStats, SimError> {
    try_stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        policy,
        1.0,
        CellProgram::Collective {
            alg,
            p,
            m,
            seg_size,
        },
        |rec, reps| compile_timed_collective(rec, alg, p, ROOT, m, seg_size, reps),
        || try_collective_time_threads(cluster, alg, p, m, seg_size, precision, seed, policy),
    )
}

/// The threaded-oracle body of [`try_collective_time`].
#[allow(clippy::too_many_arguments)]
fn try_collective_time_threads(
    cluster: &ClusterModel,
    alg: Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    let reps = precision.min_reps;
    sample_adaptive_fallible(precision, |batch| {
        try_root_samples(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            policy,
            move |ctx| {
                let mut ts = Vec::with_capacity(reps);
                for _ in 0..reps {
                    ctx.barrier();
                    let t0 = ctx.wtime();
                    run_collective(ctx, alg, ROOT, m, seg_size);
                    ctx.barrier();
                    let t1 = ctx.wtime();
                    if ctx.rank() == ROOT {
                        ts.push((t1 - t0).as_secs_f64());
                    }
                }
                ts
            },
        )
    })
}

/// Measures the paper's Sect. 4.2 communication experiment: the
/// modelled broadcast of `m` bytes followed by a linear gather of
/// `m_g`-byte contributions, timed on the root (the experiment starts
/// and finishes there, so no closing barrier is needed). Runs on the
/// default [`Backend`].
#[allow(clippy::too_many_arguments)]
pub fn bcast_gather_experiment_time(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    bcast_gather_experiment_time_with(
        cluster,
        alg,
        p,
        m,
        m_g,
        seg_size,
        precision,
        seed,
        Backend::default(),
    )
}

/// [`bcast_gather_experiment_time`] on an explicit execution
/// [`Backend`]; both backends return bit-identical statistics.
#[allow(clippy::too_many_arguments)]
pub fn bcast_gather_experiment_time_with(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    backend: Backend,
) -> SampleStats {
    stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        1.0,
        CellProgram::BcastGather {
            alg,
            p,
            m,
            m_g,
            seg_size,
        },
        |rec, reps| compile_timed_bcast_gather(rec, alg, p, ROOT, m, m_g, seg_size, reps),
        || bcast_gather_experiment_time_threads(cluster, alg, p, m, m_g, seg_size, precision, seed),
    )
}

/// The threaded-oracle body of [`bcast_gather_experiment_time`].
#[allow(clippy::too_many_arguments)]
fn bcast_gather_experiment_time_threads(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    let msg = payload(m);
    let contrib = payload(m_g);
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        let contrib = contrib.clone();
        let out = collsel_mpi::simulate_pooled(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            SimOptions::default(),
            move |ctx| {
                let mut ts = Vec::with_capacity(reps);
                for _ in 0..reps {
                    ctx.barrier();
                    let t0 = ctx.wtime();
                    let data = (ctx.rank() == ROOT).then(|| msg.clone());
                    let _ = bcast(ctx, alg, ROOT, data, m, seg_size);
                    let _ = gather_linear(ctx, ROOT, contrib.clone());
                    let t1 = ctx.wtime();
                    if ctx.rank() == ROOT {
                        ts.push((t1 - t0).as_secs_f64());
                    }
                }
                ts
            },
        )
        .expect("measurement program cannot deadlock");
        out.results.into_iter().nth(ROOT).expect("root result")
    })
}

/// Measures the Sect. 4.1 experiment: `calls` successive non-blocking
/// linear-tree broadcasts of one `seg_size`-byte segment, separated by
/// barriers, measured on the root; the sample is the total divided by
/// `calls` (the paper's `T2(P) = T1(P, N) / N`). Runs on the default
/// [`Backend`].
pub fn linear_segment_bcast_time(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    linear_segment_bcast_time_with(
        cluster,
        p,
        seg_size,
        calls,
        precision,
        seed,
        Backend::default(),
    )
}

/// [`linear_segment_bcast_time`] on an explicit execution [`Backend`];
/// both backends return bit-identical statistics.
pub fn linear_segment_bcast_time_with(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
    backend: Backend,
) -> SampleStats {
    assert!(calls > 0, "need at least one call per sample");
    stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        calls as f64,
        CellProgram::LinearSegment { p, seg_size, calls },
        |rec, _reps| compile_timed_linear_segment(rec, p, ROOT, seg_size, calls),
        || linear_segment_bcast_time_threads(cluster, p, seg_size, calls, precision, seed),
    )
}

/// The threaded-oracle body of [`linear_segment_bcast_time`].
fn linear_segment_bcast_time_threads(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    assert!(calls > 0, "need at least one call per sample");
    let msg = payload(seg_size);
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        let out = collsel_mpi::simulate_pooled(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            SimOptions::default(),
            move |ctx| {
                ctx.barrier();
                let t0 = ctx.wtime();
                for _ in 0..calls {
                    let data = (ctx.rank() == ROOT).then(|| msg.clone());
                    let _ = collsel_coll::bcast_linear(ctx, ROOT, data, msg.len());
                    ctx.barrier();
                }
                let t1 = ctx.wtime();
                (t1 - t0).as_secs_f64() / calls as f64
            },
        )
        .expect("measurement program cannot deadlock");
        vec![out.results[ROOT]]
    })
}

/// Measures the one-way point-to-point time for `m` bytes via a
/// round-trip between ranks 0 and 1 (the Hockney measurement used by
/// the *traditional* models). Runs on the default [`Backend`].
pub fn p2p_time(cluster: &ClusterModel, m: usize, precision: &Precision, seed: u64) -> SampleStats {
    p2p_time_with(cluster, m, precision, seed, Backend::default())
}

/// [`p2p_time`] on an explicit execution [`Backend`]; both backends
/// return bit-identical statistics.
pub fn p2p_time_with(
    cluster: &ClusterModel,
    m: usize,
    precision: &Precision,
    seed: u64,
    backend: Backend,
) -> SampleStats {
    stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        2.0,
        CellProgram::P2p { m },
        |rec, reps| compile_timed_p2p(rec, m, reps),
        || p2p_time_threads(cluster, m, precision, seed),
    )
}

/// The threaded-oracle body of [`p2p_time`].
fn p2p_time_threads(
    cluster: &ClusterModel,
    m: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    let msg = payload(m);
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        let out = collsel_mpi::simulate_pooled(
            cluster,
            2,
            seed.wrapping_add(batch as u64),
            SimOptions::default(),
            move |ctx| {
                let mut ts = Vec::with_capacity(reps);
                for _ in 0..reps {
                    ctx.barrier();
                    let t0 = ctx.wtime();
                    if ctx.rank() == 0 {
                        ctx.send(1, 0, msg.clone());
                        let _ = ctx.recv(1, 1);
                    } else {
                        let (data, _) = ctx.recv(0, 0);
                        ctx.send(0, 1, data);
                    }
                    let t1 = ctx.wtime();
                    if ctx.rank() == 0 {
                        ts.push((t1 - t0).as_secs_f64() / 2.0);
                    }
                }
                ts
            },
        )
        .expect("measurement program cannot deadlock");
        out.results.into_iter().next().expect("rank 0 result")
    })
}

/// Fallible twin of [`bcast_time`] for clusters that may stall under an
/// injected fault plan: batches run under `policy`'s virtual-time
/// watchdog and non-convergence becomes a typed error.
///
/// With [`RetryPolicy::no_deadline`] on a fault-free cluster and a
/// converging sample, the result is bit-identical to [`bcast_time`].
///
/// # Errors
///
/// [`SimError::Timeout`] when every retry exhausts its budget;
/// [`SimError::PrecisionNotReached`] when the sample budget runs out
/// before the precision target (even after the MAD-outlier rescue);
/// any other [`SimError`] from the simulation, unretried.
#[allow(clippy::too_many_arguments)]
pub fn try_bcast_time(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    try_bcast_time_with(
        cluster,
        alg,
        p,
        m,
        seg_size,
        precision,
        seed,
        policy,
        Backend::default(),
    )
}

/// [`try_bcast_time`] on an explicit execution [`Backend`]; both
/// backends return bit-identical results, including error variants.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_bcast_time_with(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    backend: Backend,
) -> Result<SampleStats, SimError> {
    try_stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        policy,
        1.0,
        CellProgram::Bcast {
            alg,
            p,
            m,
            seg_size,
        },
        |rec, reps| compile_timed_bcast(rec, alg, p, ROOT, m, seg_size, reps),
        || try_bcast_time_threads(cluster, alg, p, m, seg_size, precision, seed, policy),
    )
}

/// The threaded-oracle body of [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
fn try_bcast_time_threads(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    let msg = payload(m);
    let reps = precision.min_reps;
    sample_adaptive_fallible(precision, |batch| {
        let msg = msg.clone();
        try_root_samples(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            policy,
            move |ctx| {
                let mut ts = Vec::with_capacity(reps);
                for _ in 0..reps {
                    ctx.barrier();
                    let t0 = ctx.wtime();
                    let data = (ctx.rank() == ROOT).then(|| msg.clone());
                    let _ = bcast(ctx, alg, ROOT, data, m, seg_size);
                    ctx.barrier();
                    let t1 = ctx.wtime();
                    if ctx.rank() == ROOT {
                        ts.push((t1 - t0).as_secs_f64());
                    }
                }
                ts
            },
        )
    })
}

/// Fallible twin of [`bcast_gather_experiment_time`]; see
/// [`try_bcast_time`] for the error contract.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_bcast_gather_experiment_time(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    try_bcast_gather_experiment_time_with(
        cluster,
        alg,
        p,
        m,
        m_g,
        seg_size,
        precision,
        seed,
        policy,
        Backend::default(),
    )
}

/// [`try_bcast_gather_experiment_time`] on an explicit execution
/// [`Backend`]; both backends return bit-identical results, including
/// error variants.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_bcast_gather_experiment_time_with(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    backend: Backend,
) -> Result<SampleStats, SimError> {
    try_stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        policy,
        1.0,
        CellProgram::BcastGather {
            alg,
            p,
            m,
            m_g,
            seg_size,
        },
        |rec, reps| compile_timed_bcast_gather(rec, alg, p, ROOT, m, m_g, seg_size, reps),
        || {
            try_bcast_gather_experiment_time_threads(
                cluster, alg, p, m, m_g, seg_size, precision, seed, policy,
            )
        },
    )
}

/// The threaded-oracle body of [`try_bcast_gather_experiment_time`].
#[allow(clippy::too_many_arguments)]
fn try_bcast_gather_experiment_time_threads(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    let msg = payload(m);
    let contrib = payload(m_g);
    let reps = precision.min_reps;
    sample_adaptive_fallible(precision, |batch| {
        let msg = msg.clone();
        let contrib = contrib.clone();
        try_root_samples(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            policy,
            move |ctx| {
                let mut ts = Vec::with_capacity(reps);
                for _ in 0..reps {
                    ctx.barrier();
                    let t0 = ctx.wtime();
                    let data = (ctx.rank() == ROOT).then(|| msg.clone());
                    let _ = bcast(ctx, alg, ROOT, data, m, seg_size);
                    let _ = gather_linear(ctx, ROOT, contrib.clone());
                    let t1 = ctx.wtime();
                    if ctx.rank() == ROOT {
                        ts.push((t1 - t0).as_secs_f64());
                    }
                }
                ts
            },
        )
    })
}

/// Fallible twin of [`linear_segment_bcast_time`]; see
/// [`try_bcast_time`] for the error contract.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
pub fn try_linear_segment_bcast_time(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    try_linear_segment_bcast_time_with(
        cluster,
        p,
        seg_size,
        calls,
        precision,
        seed,
        policy,
        Backend::default(),
    )
}

/// [`try_linear_segment_bcast_time`] on an explicit execution
/// [`Backend`]; both backends return bit-identical results, including
/// error variants.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
#[allow(clippy::too_many_arguments)]
pub fn try_linear_segment_bcast_time_with(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    backend: Backend,
) -> Result<SampleStats, SimError> {
    assert!(calls > 0, "need at least one call per sample");
    try_stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        policy,
        calls as f64,
        CellProgram::LinearSegment { p, seg_size, calls },
        |rec, _reps| compile_timed_linear_segment(rec, p, ROOT, seg_size, calls),
        || {
            try_linear_segment_bcast_time_threads(
                cluster, p, seg_size, calls, precision, seed, policy,
            )
        },
    )
}

/// The threaded-oracle body of [`try_linear_segment_bcast_time`].
#[allow(clippy::too_many_arguments)]
fn try_linear_segment_bcast_time_threads(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    assert!(calls > 0, "need at least one call per sample");
    let msg = payload(seg_size);
    sample_adaptive_fallible(precision, |batch| {
        let msg = msg.clone();
        try_root_samples(
            cluster,
            p,
            seed.wrapping_add(batch as u64),
            policy,
            move |ctx| {
                ctx.barrier();
                let t0 = ctx.wtime();
                for _ in 0..calls {
                    let data = (ctx.rank() == ROOT).then(|| msg.clone());
                    let _ = collsel_coll::bcast_linear(ctx, ROOT, data, msg.len());
                    ctx.barrier();
                }
                let t1 = ctx.wtime();
                vec![(t1 - t0).as_secs_f64() / calls as f64]
            },
        )
    })
}

/// Fallible twin of [`p2p_time`]; see [`try_bcast_time`] for the error
/// contract.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
pub fn try_p2p_time(
    cluster: &ClusterModel,
    m: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    try_p2p_time_with(cluster, m, precision, seed, policy, Backend::default())
}

/// [`try_p2p_time`] on an explicit execution [`Backend`]; both backends
/// return bit-identical results, including error variants.
///
/// # Errors
///
/// Same contract as [`try_bcast_time`].
pub fn try_p2p_time_with(
    cluster: &ClusterModel,
    m: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
    backend: Backend,
) -> Result<SampleStats, SimError> {
    try_stats_with_backend(
        cluster,
        backend,
        precision,
        seed,
        policy,
        2.0,
        CellProgram::P2p { m },
        |rec, reps| compile_timed_p2p(rec, m, reps),
        || try_p2p_time_threads(cluster, m, precision, seed, policy),
    )
}

/// The threaded-oracle body of [`try_p2p_time`].
fn try_p2p_time_threads(
    cluster: &ClusterModel,
    m: usize,
    precision: &Precision,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<SampleStats, SimError> {
    let msg = payload(m);
    let reps = precision.min_reps;
    sample_adaptive_fallible(precision, |batch| {
        let msg = msg.clone();
        try_root_samples(
            cluster,
            2,
            seed.wrapping_add(batch as u64),
            policy,
            move |ctx| {
                let mut ts = Vec::with_capacity(reps);
                for _ in 0..reps {
                    ctx.barrier();
                    let t0 = ctx.wtime();
                    if ctx.rank() == 0 {
                        ctx.send(1, 0, msg.clone());
                        let _ = ctx.recv(1, 1);
                    } else {
                        let (data, _) = ctx.recv(0, 0);
                        ctx.send(0, 1, data);
                    }
                    let t1 = ctx.wtime();
                    if ctx.rank() == 0 {
                        ts.push((t1 - t0).as_secs_f64() / 2.0);
                    }
                }
                ts
            },
        )
    })
}

/// Specification of one independent [`bcast_time`] measurement inside a
/// batch: the full (algorithm, P, m, segment, seed) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastSpec {
    /// Broadcast algorithm under measurement.
    pub alg: BcastAlg,
    /// Number of ranks.
    pub p: usize,
    /// Message size in bytes.
    pub m: usize,
    /// Segment size for segmented algorithms.
    pub seg_size: usize,
    /// Base seed of this cell's noise stream.
    pub seed: u64,
}

/// Specification of one independent [`collective_time`] measurement
/// inside a batch: the full (algorithm, P, m, segment, seed) cell —
/// the algorithm tag carries its collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveSpec {
    /// Algorithm under measurement (tagged with its collective).
    pub alg: Alg,
    /// Number of ranks.
    pub p: usize,
    /// Payload size in bytes ([`run_collective`]'s convention).
    pub m: usize,
    /// Segment size for segmented algorithms.
    pub seg_size: usize,
    /// Base seed of this cell's noise stream.
    pub seed: u64,
}

/// Specification of one independent
/// [`bcast_gather_experiment_time`] measurement inside a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentSpec {
    /// Broadcast algorithm under measurement.
    pub alg: BcastAlg,
    /// Number of ranks.
    pub p: usize,
    /// Broadcast message size in bytes.
    pub m: usize,
    /// Per-rank gather contribution size in bytes.
    pub m_g: usize,
    /// Segment size for segmented algorithms.
    pub seg_size: usize,
    /// Base seed of this cell's noise stream.
    pub seed: u64,
}

/// Measures a batch of independent broadcast cells across `pool`,
/// returning the statistics in spec order.
///
/// Each cell is a complete adaptive measurement (the MPIBlib stopping
/// rule is inherently sequential *within* a cell); the pool fans the
/// *cells* out. Because every cell carries its own seed, the result is
/// bit-identical to calling [`bcast_time`] per spec in order — at any
/// thread count.
pub fn bcast_time_batch(
    cluster: &ClusterModel,
    specs: &[BcastSpec],
    precision: &Precision,
    pool: Pool,
) -> Vec<SampleStats> {
    bcast_time_batch_with(cluster, specs, precision, pool, Backend::default())
}

/// [`bcast_time_batch`] on an explicit execution [`Backend`]; every
/// cell runs on `backend` and the statistics are bit-identical across
/// backends and thread counts.
pub fn bcast_time_batch_with(
    cluster: &ClusterModel,
    specs: &[BcastSpec],
    precision: &Precision,
    pool: Pool,
    backend: Backend,
) -> Vec<SampleStats> {
    pool.run(specs.iter().map(|spec| {
        let spec = *spec;
        move || {
            bcast_time_with(
                cluster,
                spec.alg,
                spec.p,
                spec.m,
                spec.seg_size,
                precision,
                spec.seed,
                backend,
            )
        }
    }))
}

/// Measures a batch of independent collective cells across `pool`,
/// returning the statistics in spec order; bit-identical to calling
/// [`collective_time`] per spec in order at any thread count (see
/// [`bcast_time_batch`]).
pub fn collective_time_batch(
    cluster: &ClusterModel,
    specs: &[CollectiveSpec],
    precision: &Precision,
    pool: Pool,
) -> Vec<SampleStats> {
    collective_time_batch_with(cluster, specs, precision, pool, Backend::default())
}

/// [`collective_time_batch`] on an explicit execution [`Backend`]; see
/// [`bcast_time_batch_with`].
pub fn collective_time_batch_with(
    cluster: &ClusterModel,
    specs: &[CollectiveSpec],
    precision: &Precision,
    pool: Pool,
    backend: Backend,
) -> Vec<SampleStats> {
    pool.run(specs.iter().map(|spec| {
        let spec = *spec;
        move || {
            collective_time_with(
                cluster,
                spec.alg,
                spec.p,
                spec.m,
                spec.seg_size,
                precision,
                spec.seed,
                backend,
            )
        }
    }))
}

/// Measures a batch of independent Sect. 4.2 bcast+gather experiment
/// cells across `pool`, returning the statistics in spec order;
/// bit-identical to serial [`bcast_gather_experiment_time`] calls (see
/// [`bcast_time_batch`]).
pub fn bcast_gather_experiment_time_batch(
    cluster: &ClusterModel,
    specs: &[ExperimentSpec],
    precision: &Precision,
    pool: Pool,
) -> Vec<SampleStats> {
    bcast_gather_experiment_time_batch_with(cluster, specs, precision, pool, Backend::default())
}

/// [`bcast_gather_experiment_time_batch`] on an explicit execution
/// [`Backend`]; see [`bcast_time_batch_with`].
pub fn bcast_gather_experiment_time_batch_with(
    cluster: &ClusterModel,
    specs: &[ExperimentSpec],
    precision: &Precision,
    pool: Pool,
    backend: Backend,
) -> Vec<SampleStats> {
    pool.run(specs.iter().map(|spec| {
        let spec = *spec;
        move || {
            bcast_gather_experiment_time_with(
                cluster,
                spec.alg,
                spec.p,
                spec.m,
                spec.m_g,
                spec.seg_size,
                precision,
                spec.seed,
                backend,
            )
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;

    fn quiet_gros() -> ClusterModel {
        ClusterModel::gros().with_noise(NoiseParams::OFF)
    }

    #[test]
    fn bcast_time_is_positive_and_converges_without_noise() {
        let s = bcast_time(
            &quiet_gros(),
            BcastAlg::Binomial,
            8,
            64 * 1024,
            8 * 1024,
            &Precision::quick(),
            1,
        );
        assert!(s.mean > 0.0);
        assert!(s.converged);
        assert_eq!(s.std_dev, 0.0, "deterministic runs repeat exactly");
    }

    #[test]
    fn larger_messages_take_longer() {
        let c = quiet_gros();
        let p = Precision::quick();
        let small = bcast_time(&c, BcastAlg::Chain, 8, 16 * 1024, 8 * 1024, &p, 1);
        let large = bcast_time(&c, BcastAlg::Chain, 8, 256 * 1024, 8 * 1024, &p, 1);
        assert!(large.mean > small.mean);
    }

    #[test]
    fn experiment_time_exceeds_bare_bcast() {
        let c = quiet_gros();
        let p = Precision::quick();
        let bare = bcast_time(&c, BcastAlg::Binomial, 8, 64 * 1024, 8 * 1024, &p, 1);
        let with_gather = bcast_gather_experiment_time(
            &c,
            BcastAlg::Binomial,
            8,
            64 * 1024,
            1024,
            8 * 1024,
            &p,
            1,
        );
        assert!(with_gather.mean > bare.mean * 0.9);
    }

    #[test]
    fn linear_segment_time_grows_with_children() {
        let c = quiet_gros();
        let p = Precision::quick();
        let t2 = linear_segment_bcast_time(&c, 2, 8 * 1024, 5, &p, 1);
        let t5 = linear_segment_bcast_time(&c, 5, 8 * 1024, 5, &p, 1);
        let t7 = linear_segment_bcast_time(&c, 7, 8 * 1024, 5, &p, 1);
        assert!(t5.mean > t2.mean);
        assert!(t7.mean > t5.mean);
        // And the ratio stays well below P-1 (non-blocking overlap).
        assert!(t7.mean / t2.mean < 4.0);
    }

    #[test]
    fn p2p_time_scales_affinely() {
        let c = quiet_gros();
        let p = Precision::quick();
        let t1 = p2p_time(&c, 1_000, &p, 1).mean;
        let t2 = p2p_time(&c, 2_000_000, &p, 1).mean;
        assert!(t2 > t1);
        // Rendezvous messages pay extra latency, still far below 2000x.
        assert!(t2 / t1 < 100.0);
    }

    #[test]
    fn try_bcast_time_matches_infallible_without_deadline() {
        let c = quiet_gros();
        let p = Precision::quick();
        let infallible = bcast_time(&c, BcastAlg::Binomial, 8, 64 * 1024, 8 * 1024, &p, 1);
        let fallible = try_bcast_time(
            &c,
            BcastAlg::Binomial,
            8,
            64 * 1024,
            8 * 1024,
            &p,
            1,
            &RetryPolicy::no_deadline(),
        )
        .expect("fault-free run converges");
        assert_eq!(infallible, fallible, "try tier must be bit-identical");
    }

    #[test]
    fn tiny_deadline_times_out_after_retries() {
        let c = quiet_gros();
        let policy = RetryPolicy {
            max_attempts: 2,
            budget: Some(SimSpan::from_nanos(1)),
            backoff: 1,
        };
        let err = try_bcast_time(
            &c,
            BcastAlg::Binomial,
            8,
            64 * 1024,
            8 * 1024,
            &Precision::quick(),
            1,
            &policy,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "{err}");
    }

    #[test]
    fn backoff_grows_the_budget_until_success() {
        // 1 µs is hopeless for this run; two ×1_000_000 backoffs later
        // the budget reaches 10^6 s of virtual time and the run fits.
        let c = quiet_gros();
        let policy = RetryPolicy {
            max_attempts: 3,
            budget: Some(SimSpan::from_micros(1)),
            backoff: 1_000_000,
        };
        let s = try_bcast_time(
            &c,
            BcastAlg::Binomial,
            8,
            64 * 1024,
            8 * 1024,
            &Precision::quick(),
            1,
            &policy,
        )
        .expect("third attempt has ample budget");
        assert!(s.mean > 0.0);
        assert!(s.converged);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // backoff^attempt blows through u64 after ~3 retries here; the
        // deadline must pin at u64::MAX nanoseconds (watchdog
        // effectively unarmed), never wrap to a tiny budget or panic.
        let policy = RetryPolicy {
            max_attempts: 64,
            budget: Some(SimSpan::from_micros(10)),
            backoff: 1_000_000,
        };
        assert_eq!(
            policy.options_for(0).deadline,
            Some(SimSpan::from_micros(10))
        );
        assert_eq!(
            policy.options_for(1).deadline,
            Some(SimSpan::from_micros(10) * 1_000_000)
        );
        for attempt in [4, 63, policy.max_attempts - 1, 10_000] {
            assert_eq!(
                policy.options_for(attempt).deadline,
                Some(SimSpan::from_nanos(u64::MAX)),
                "attempt {attempt} must saturate, not wrap"
            );
        }
        // An unarmed policy stays unarmed at any attempt.
        assert_eq!(RetryPolicy::no_deadline().options_for(999).deadline, None);
    }

    #[test]
    fn straggler_fault_slows_the_measurement() {
        use collsel_netsim::FaultPlan;
        let quiet = quiet_gros();
        let slowed = quiet
            .clone()
            .with_faults(FaultPlan::none().with_straggler(3, 20.0));
        let p = Precision::quick();
        let base = bcast_time(&quiet, BcastAlg::Binomial, 8, 64 * 1024, 8 * 1024, &p, 1);
        let hurt = try_bcast_time(
            &slowed,
            BcastAlg::Binomial,
            8,
            64 * 1024,
            8 * 1024,
            &p,
            1,
            &RetryPolicy::default(),
        )
        .expect("straggler slows but does not stall");
        assert!(hurt.mean > base.mean, "{} vs {}", hurt.mean, base.mean);
    }

    #[test]
    fn batch_measurements_match_serial_at_any_thread_count() {
        let c = quiet_gros();
        let prec = Precision::quick();
        let cells = [
            (BcastAlg::Binomial, 16 * 1024),
            (BcastAlg::Chain, 64 * 1024),
            (BcastAlg::Binary, 32 * 1024),
        ];
        let specs: Vec<BcastSpec> = cells
            .iter()
            .enumerate()
            .map(|(i, &(alg, m))| BcastSpec {
                alg,
                p: 8,
                m,
                seg_size: 8 * 1024,
                seed: 1 + i as u64,
            })
            .collect();
        let serial: Vec<SampleStats> = specs
            .iter()
            .map(|s| bcast_time(&c, s.alg, s.p, s.m, s.seg_size, &prec, s.seed))
            .collect();
        for threads in [1, 4] {
            let batch = bcast_time_batch(&c, &specs, &prec, Pool::with_threads(threads));
            assert_eq!(serial, batch, "threads={threads}");
        }
    }

    #[test]
    fn backends_return_bit_identical_statistics() {
        // Noise ON: the clock values must match exactly, not just the
        // zero-variance deterministic case.
        let c = ClusterModel::grisou();
        let p = Precision::quick();
        let ev = Backend::Events;
        let th = Backend::Threads;
        assert_eq!(
            bcast_time_with(&c, BcastAlg::SplitBinary, 8, 64 * 1024, 8 * 1024, &p, 9, ev),
            bcast_time_with(&c, BcastAlg::SplitBinary, 8, 64 * 1024, 8 * 1024, &p, 9, th),
        );
        assert_eq!(
            bcast_gather_experiment_time_with(
                &c,
                BcastAlg::Binary,
                7,
                32 * 1024,
                2048,
                8 * 1024,
                &p,
                11,
                ev
            ),
            bcast_gather_experiment_time_with(
                &c,
                BcastAlg::Binary,
                7,
                32 * 1024,
                2048,
                8 * 1024,
                &p,
                11,
                th
            ),
        );
        assert_eq!(
            linear_segment_bcast_time_with(&c, 5, 8 * 1024, 4, &p, 13, ev),
            linear_segment_bcast_time_with(&c, 5, 8 * 1024, 4, &p, 13, th),
        );
        assert_eq!(
            p2p_time_with(&c, 100_000, &p, 17, ev),
            p2p_time_with(&c, 100_000, &p, 17, th),
        );
    }

    #[test]
    fn try_backends_agree_on_results_and_errors() {
        use collsel_netsim::FaultPlan;
        let slowed = quiet_gros()
            .clone()
            .with_faults(FaultPlan::none().with_straggler(2, 15.0));
        let p = Precision::quick();
        let policy = RetryPolicy::default();
        let ev = try_bcast_time_with(
            &slowed,
            BcastAlg::Binomial,
            6,
            32 * 1024,
            8 * 1024,
            &p,
            3,
            &policy,
            Backend::Events,
        );
        let th = try_bcast_time_with(
            &slowed,
            BcastAlg::Binomial,
            6,
            32 * 1024,
            8 * 1024,
            &p,
            3,
            &policy,
            Backend::Threads,
        );
        assert_eq!(ev.expect("straggler run fits"), th.expect("oracle fits"));

        // A hopeless budget must time out identically on both backends.
        let tiny = RetryPolicy {
            max_attempts: 2,
            budget: Some(SimSpan::from_nanos(1)),
            backoff: 1,
        };
        let ev = try_bcast_time_with(
            &quiet_gros(),
            BcastAlg::Binomial,
            6,
            32 * 1024,
            8 * 1024,
            &p,
            3,
            &tiny,
            Backend::Events,
        )
        .expect_err("1 ns cannot fit a run");
        let th = try_bcast_time_with(
            &quiet_gros(),
            BcastAlg::Binomial,
            6,
            32 * 1024,
            8 * 1024,
            &p,
            3,
            &tiny,
            Backend::Threads,
        )
        .expect_err("1 ns cannot fit a run");
        assert_eq!(ev, th, "timeout diagnostics must match");
    }

    #[test]
    fn collective_time_is_positive_for_every_family() {
        use collsel_coll::Collective;
        let c = quiet_gros();
        let p = Precision::quick();
        for coll in Collective::ALL {
            let alg = coll.algorithms()[0];
            let s = collective_time(&c, alg, 6, 16 * 1024, 8 * 1024, &p, 1);
            assert!(s.mean > 0.0, "{}", alg.qualified_name());
            assert!(s.converged, "{}", alg.qualified_name());
        }
    }

    #[test]
    fn collective_time_matches_bcast_time_for_bcast_algs() {
        // The universal dispatcher must measure broadcast exactly like
        // the original bcast-only path on both backends.
        let c = ClusterModel::grisou();
        let p = Precision::quick();
        for backend in [Backend::Events, Backend::Threads] {
            assert_eq!(
                collective_time_with(
                    &c,
                    Alg::Bcast(BcastAlg::Binomial),
                    8,
                    64 * 1024,
                    8 * 1024,
                    &p,
                    5,
                    backend
                ),
                bcast_time_with(
                    &c,
                    BcastAlg::Binomial,
                    8,
                    64 * 1024,
                    8 * 1024,
                    &p,
                    5,
                    backend
                ),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn try_collective_time_matches_infallible_without_deadline() {
        use collsel_coll::ReduceAlg;
        let c = quiet_gros();
        let p = Precision::quick();
        let alg = Alg::Reduce(ReduceAlg::Binomial);
        let infallible = collective_time(&c, alg, 8, 64 * 1024, 8 * 1024, &p, 1);
        let fallible = try_collective_time(
            &c,
            alg,
            8,
            64 * 1024,
            8 * 1024,
            &p,
            1,
            &RetryPolicy::no_deadline(),
        )
        .expect("fault-free run converges");
        assert_eq!(infallible, fallible);
    }

    #[test]
    fn collective_batch_matches_serial_at_any_thread_count() {
        use collsel_coll::{AllgatherAlg, AlltoallAlg, ReduceAlg};
        let c = quiet_gros();
        let prec = Precision::quick();
        let specs: Vec<CollectiveSpec> = [
            Alg::Reduce(ReduceAlg::Pipeline),
            Alg::Allgather(AllgatherAlg::Ring),
            Alg::Alltoall(AlltoallAlg::Pairwise),
        ]
        .iter()
        .enumerate()
        .map(|(i, &alg)| CollectiveSpec {
            alg,
            p: 6,
            m: 16 * 1024,
            seg_size: 8 * 1024,
            seed: 1 + i as u64,
        })
        .collect();
        let serial: Vec<SampleStats> = specs
            .iter()
            .map(|s| collective_time(&c, s.alg, s.p, s.m, s.seg_size, &prec, s.seed))
            .collect();
        for threads in [1, 4] {
            let batch = collective_time_batch(&c, &specs, &prec, Pool::with_threads(threads));
            assert_eq!(serial, batch, "threads={threads}");
        }
    }

    #[test]
    fn noisy_measurements_converge_with_adaptive_reps() {
        let c = ClusterModel::gros(); // noise on
        let s = bcast_time(
            &c,
            BcastAlg::Binary,
            6,
            32 * 1024,
            8 * 1024,
            &Precision::paper(),
            7,
        );
        assert!(s.converged, "{s:?}");
        assert!(s.n >= 5);
        assert!(s.normality(), "{s:?}");
    }
}
