//! Measured (simulated) execution times of collectives, with the
//! paper's adaptive repetition methodology.
//!
//! All measurements are framed the MPIBlib way: a barrier, the root's
//! clock around the operation, and (for operations that do not
//! naturally end on the root) a closing barrier so the root observes
//! the completion of the slowest rank.

use crate::stats::{sample_adaptive, Precision, SampleStats};
use collsel_coll::{bcast, gather_linear, BcastAlg};
use collsel_netsim::ClusterModel;
use collsel_support::Bytes;

/// Root rank used by all measurement experiments.
pub const ROOT: usize = 0;

/// A deterministic position-dependent payload of `len` bytes.
pub fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>())
}

/// Runs `reps` timed repetitions of `body` inside one simulation and
/// returns the root's per-repetition times in seconds.
///
/// Each repetition is `barrier; t0; body; barrier; t1` measured on the
/// root, so the sample covers the completion of the slowest rank.
fn timed_reps(
    cluster: &ClusterModel,
    p: usize,
    seed: u64,
    reps: usize,
    body: impl Fn(&mut collsel_mpi::Ctx) + Sync,
) -> Vec<f64> {
    let out = collsel_mpi::simulate(cluster, p, seed, |ctx| {
        let mut ts = Vec::with_capacity(reps);
        for _ in 0..reps {
            ctx.barrier();
            let t0 = ctx.wtime();
            body(ctx);
            ctx.barrier();
            let t1 = ctx.wtime();
            if ctx.rank() == ROOT {
                ts.push((t1 - t0).as_secs_f64());
            }
        }
        ts
    })
    .expect("measurement program cannot deadlock");
    out.results.into_iter().nth(ROOT).expect("root result")
}

/// Measures the execution time of one broadcast configuration until the
/// paper's precision target is met.
///
/// # Panics
///
/// Panics if `p` exceeds the cluster's slots or `seg_size` is zero for
/// a segmented algorithm.
pub fn bcast_time(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    let msg = payload(m);
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        timed_reps(cluster, p, seed.wrapping_add(batch as u64), reps, |ctx| {
            let data = (ctx.rank() == ROOT).then(|| msg.clone());
            let _ = bcast(ctx, alg, ROOT, data, m, seg_size);
        })
    })
}

/// Measures the paper's Sect. 4.2 communication experiment: the
/// modelled broadcast of `m` bytes followed by a linear gather of
/// `m_g`-byte contributions, timed on the root (the experiment starts
/// and finishes there, so no closing barrier is needed).
#[allow(clippy::too_many_arguments)]
pub fn bcast_gather_experiment_time(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    let msg = payload(m);
    let contrib = payload(m_g);
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        let contrib = contrib.clone();
        let out = collsel_mpi::simulate(cluster, p, seed.wrapping_add(batch as u64), move |ctx| {
            let mut ts = Vec::with_capacity(reps);
            for _ in 0..reps {
                ctx.barrier();
                let t0 = ctx.wtime();
                let data = (ctx.rank() == ROOT).then(|| msg.clone());
                let _ = bcast(ctx, alg, ROOT, data, m, seg_size);
                let _ = gather_linear(ctx, ROOT, contrib.clone());
                let t1 = ctx.wtime();
                if ctx.rank() == ROOT {
                    ts.push((t1 - t0).as_secs_f64());
                }
            }
            ts
        })
        .expect("measurement program cannot deadlock");
        out.results.into_iter().nth(ROOT).expect("root result")
    })
}

/// Measures the Sect. 4.1 experiment: `calls` successive non-blocking
/// linear-tree broadcasts of one `seg_size`-byte segment, separated by
/// barriers, measured on the root; the sample is the total divided by
/// `calls` (the paper's `T2(P) = T1(P, N) / N`).
pub fn linear_segment_bcast_time(
    cluster: &ClusterModel,
    p: usize,
    seg_size: usize,
    calls: usize,
    precision: &Precision,
    seed: u64,
) -> SampleStats {
    assert!(calls > 0, "need at least one call per sample");
    let msg = payload(seg_size);
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        let out = collsel_mpi::simulate(cluster, p, seed.wrapping_add(batch as u64), move |ctx| {
            ctx.barrier();
            let t0 = ctx.wtime();
            for _ in 0..calls {
                let data = (ctx.rank() == ROOT).then(|| msg.clone());
                let _ = collsel_coll::bcast_linear(ctx, ROOT, data, msg.len());
                ctx.barrier();
            }
            let t1 = ctx.wtime();
            (t1 - t0).as_secs_f64() / calls as f64
        })
        .expect("measurement program cannot deadlock");
        vec![out.results[ROOT]]
    })
}

/// Measures the one-way point-to-point time for `m` bytes via a
/// round-trip between ranks 0 and 1 (the Hockney measurement used by
/// the *traditional* models).
pub fn p2p_time(cluster: &ClusterModel, m: usize, precision: &Precision, seed: u64) -> SampleStats {
    let msg = payload(m);
    let reps = precision.min_reps;
    sample_adaptive(precision, |batch| {
        let msg = msg.clone();
        let out = collsel_mpi::simulate(cluster, 2, seed.wrapping_add(batch as u64), move |ctx| {
            let mut ts = Vec::with_capacity(reps);
            for _ in 0..reps {
                ctx.barrier();
                let t0 = ctx.wtime();
                if ctx.rank() == 0 {
                    ctx.send(1, 0, msg.clone());
                    let _ = ctx.recv(1, 1);
                } else {
                    let (data, _) = ctx.recv(0, 0);
                    ctx.send(0, 1, data);
                }
                let t1 = ctx.wtime();
                if ctx.rank() == 0 {
                    ts.push((t1 - t0).as_secs_f64() / 2.0);
                }
            }
            ts
        })
        .expect("measurement program cannot deadlock");
        out.results.into_iter().next().expect("rank 0 result")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;

    fn quiet_gros() -> ClusterModel {
        ClusterModel::gros().with_noise(NoiseParams::OFF)
    }

    #[test]
    fn bcast_time_is_positive_and_converges_without_noise() {
        let s = bcast_time(
            &quiet_gros(),
            BcastAlg::Binomial,
            8,
            64 * 1024,
            8 * 1024,
            &Precision::quick(),
            1,
        );
        assert!(s.mean > 0.0);
        assert!(s.converged);
        assert_eq!(s.std_dev, 0.0, "deterministic runs repeat exactly");
    }

    #[test]
    fn larger_messages_take_longer() {
        let c = quiet_gros();
        let p = Precision::quick();
        let small = bcast_time(&c, BcastAlg::Chain, 8, 16 * 1024, 8 * 1024, &p, 1);
        let large = bcast_time(&c, BcastAlg::Chain, 8, 256 * 1024, 8 * 1024, &p, 1);
        assert!(large.mean > small.mean);
    }

    #[test]
    fn experiment_time_exceeds_bare_bcast() {
        let c = quiet_gros();
        let p = Precision::quick();
        let bare = bcast_time(&c, BcastAlg::Binomial, 8, 64 * 1024, 8 * 1024, &p, 1);
        let with_gather = bcast_gather_experiment_time(
            &c,
            BcastAlg::Binomial,
            8,
            64 * 1024,
            1024,
            8 * 1024,
            &p,
            1,
        );
        assert!(with_gather.mean > bare.mean * 0.9);
    }

    #[test]
    fn linear_segment_time_grows_with_children() {
        let c = quiet_gros();
        let p = Precision::quick();
        let t2 = linear_segment_bcast_time(&c, 2, 8 * 1024, 5, &p, 1);
        let t5 = linear_segment_bcast_time(&c, 5, 8 * 1024, 5, &p, 1);
        let t7 = linear_segment_bcast_time(&c, 7, 8 * 1024, 5, &p, 1);
        assert!(t5.mean > t2.mean);
        assert!(t7.mean > t5.mean);
        // And the ratio stays well below P-1 (non-blocking overlap).
        assert!(t7.mean / t2.mean < 4.0);
    }

    #[test]
    fn p2p_time_scales_affinely() {
        let c = quiet_gros();
        let p = Precision::quick();
        let t1 = p2p_time(&c, 1_000, &p, 1).mean;
        let t2 = p2p_time(&c, 2_000_000, &p, 1).mean;
        assert!(t2 > t1);
        // Rendezvous messages pay extra latency, still far below 2000x.
        assert!(t2 / t1 < 100.0);
    }

    #[test]
    fn noisy_measurements_converge_with_adaptive_reps() {
        let c = ClusterModel::gros(); // noise on
        let s = bcast_time(
            &c,
            BcastAlg::Binary,
            6,
            32 * 1024,
            8 * 1024,
            &Precision::paper(),
            7,
        );
        assert!(s.converged, "{s:?}");
        assert!(s.n >= 5);
        assert!(s.normality(), "{s:?}");
    }
}
