//! Per-collective (α, β) estimation — the Sect. 4.2 methodology
//! widened from broadcast to all seven collectives.
//!
//! For each algorithm of a collective, a sweep of payload sizes is
//! measured with the *modelled algorithm itself* as the timed program
//! ([`collective_time_with`]); every size contributes one linear
//! equation `a_i·α + b_i·β = T_i` with the coefficients read off the
//! implementation-derived model of that algorithm
//! ([`collsel_model::collectives::coefficients`]), canonicalised to
//! `α + x_i·β = y_i` and solved with the Huber robust regressor — the
//! same system shape as the broadcast pipeline's Fig. 4, without the
//! appended gather stage. Conditioning instead comes from the size
//! range: the sweep spans payloads *below* the segment size, where a
//! segmented algorithm runs a single segment and the canonical abscissa
//! `x = b/a` tracks `m` freely — above `m_s` the per-stage size pins to
//! the segment and `x` saturates near `m_s` (which is why the broadcast
//! pipeline needed the appended gather for conditioning). The default
//! configs therefore pair a *coarse estimation segment* (64 KB) with
//! sizes reaching well below it, so `x` spans almost two decades and β
//! separates cleanly from α; the fitted pair is segment-independent and
//! serves predictions at any runtime segment size.
//!
//! The result type is the broadcast pipeline's [`AlphaBetaEstimate`]
//! (its [`ExperimentPoint::gather_size`] is 0 here), so fit-validity
//! judgement, JSON persistence and the graceful-degradation path are
//! shared unchanged.

use crate::alpha_beta::{AlphaBetaEstimate, ExperimentPoint};
use crate::measure::{
    collective_time_batch_with, try_collective_time_with, CollectiveSpec, RetryPolicy,
};
use crate::regress::huber_default;
use crate::stats::{Precision, SampleStats};
use collsel_coll::{Alg, Collective};
use collsel_model::{collectives, GammaTable, Hockney};
use collsel_mpi::{Backend, SimError};
use collsel_netsim::ClusterModel;
use collsel_support::pool::Pool;
use std::collections::BTreeMap;

/// The breadth campaigns' estimation segment size (64 KB, coarse so
/// the sub-segment payload sizes condition the fit — see the module
/// docs). Decision serving evaluates the non-broadcast models at this
/// same segment size, keeping prediction consistent with estimation.
pub const BREADTH_SEG_SIZE: usize = 64 * 1024;

/// Configuration of a per-collective estimation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BreadthConfig {
    /// Pipeline segment size `m_s` for segmented algorithms.
    pub seg_size: usize,
    /// Payload sizes swept per algorithm
    /// ([`run_collective`](collsel_coll::run_collective)'s convention).
    pub msg_sizes: Vec<usize>,
    /// Number of processes in the experiments.
    pub p: usize,
    /// Stopping rule per measurement.
    pub precision: Precision,
    /// Execution backend of the measurement simulations.
    pub backend: Backend,
}

impl BreadthConfig {
    /// The paper-scale configuration: a 64 KB estimation segment with
    /// 10 log-spaced sizes in 1 KB..4 MB (the sub-segment sizes
    /// condition the fit, see the module docs).
    pub fn paper(p: usize) -> Self {
        BreadthConfig {
            seg_size: BREADTH_SEG_SIZE,
            msg_sizes: crate::alpha_beta::log_spaced_sizes(1024, 4 * 1024 * 1024, 10),
            p,
            precision: Precision::paper(),
            backend: Backend::default(),
        }
    }

    /// A small, fast configuration for tests.
    pub fn quick(p: usize) -> Self {
        BreadthConfig {
            seg_size: BREADTH_SEG_SIZE,
            msg_sizes: crate::alpha_beta::log_spaced_sizes(1024, 512 * 1024, 5),
            p,
            precision: Precision::quick(),
            backend: Backend::default(),
        }
    }

    fn validate(&self) {
        assert!(self.seg_size > 0, "segment size must be positive");
        assert!(self.p >= 2, "experiments need at least two processes");
        assert!(
            self.msg_sizes.len() >= 2,
            "need at least two experiments to fit two parameters"
        );
    }
}

/// The measurement cells of one algorithm's sweep, in size order, with
/// the same per-point seed derivation as the broadcast pipeline.
fn collective_specs(alg: Alg, cfg: &BreadthConfig, seed: u64) -> Vec<CollectiveSpec> {
    cfg.msg_sizes
        .iter()
        .enumerate()
        .map(|(idx, &m)| CollectiveSpec {
            alg,
            p: cfg.p,
            m,
            seg_size: cfg.seg_size,
            seed: seed.wrapping_add(idx as u64 * 7919),
        })
        .collect()
}

/// Canonicalises the measured cells against `alg`'s model and fits
/// (α, β); `measured` is in size order.
fn fit_from_measurements(
    alg: Alg,
    cfg: &BreadthConfig,
    gamma: &GammaTable,
    measured: Vec<SampleStats>,
) -> AlphaBetaEstimate {
    let points: Vec<ExperimentPoint> = cfg
        .msg_sizes
        .iter()
        .zip(measured)
        .map(|(&m, measured)| {
            let coeff = collectives::coefficients(alg, cfg.p, m, cfg.seg_size, gamma);
            let (x, y) = coeff.canonicalise(measured.mean);
            ExperimentPoint {
                msg_size: m,
                gather_size: 0,
                x,
                y,
                measured,
            }
        })
        .collect();
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let fit = huber_default(&xs, &ys);
    AlphaBetaEstimate {
        hockney: Hockney::new(fit.intercept.max(0.0), fit.slope.max(0.0)),
        points,
    }
}

/// Runs the estimation sweep for one algorithm of any collective and
/// fits its (α, β). Negative fitted values are clamped to zero, as in
/// the broadcast pipeline.
///
/// The per-size cells fan out across the current [`Pool`]; the fit is
/// bit-identical to serial execution at any thread count.
///
/// # Panics
///
/// Panics if the configuration is invalid or `p` exceeds the cluster.
pub fn estimate_collective_alpha_beta(
    cluster: &ClusterModel,
    alg: Alg,
    cfg: &BreadthConfig,
    gamma: &GammaTable,
    seed: u64,
) -> AlphaBetaEstimate {
    cfg.validate();
    let specs = collective_specs(alg, cfg, seed);
    let measured = collective_time_batch_with(
        cluster,
        &specs,
        &cfg.precision,
        Pool::current(),
        cfg.backend,
    );
    fit_from_measurements(alg, cfg, gamma, measured)
}

/// Runs the estimation for every algorithm of `collective`, flattening
/// the whole algorithm × size grid into one batch (the pool
/// load-balances across all cells at once).
pub fn estimate_collective_family(
    cluster: &ClusterModel,
    collective: Collective,
    cfg: &BreadthConfig,
    gamma: &GammaTable,
    seed: u64,
) -> BTreeMap<Alg, AlphaBetaEstimate> {
    cfg.validate();
    let algs = collective.algorithms();
    let specs: Vec<CollectiveSpec> = algs
        .iter()
        .enumerate()
        .flat_map(|(i, &alg)| collective_specs(alg, cfg, seed.wrapping_add((i as u64) << 32)))
        .collect();
    let measured = collective_time_batch_with(
        cluster,
        &specs,
        &cfg.precision,
        Pool::current(),
        cfg.backend,
    );
    let n = cfg.msg_sizes.len();
    let mut cells = measured.into_iter();
    algs.iter()
        .map(|&alg| {
            let alg_cells: Vec<SampleStats> = cells.by_ref().take(n).collect();
            (alg, fit_from_measurements(alg, cfg, gamma, alg_cells))
        })
        .collect()
}

/// Fallible twin of [`estimate_collective_family`], keeping
/// per-algorithm outcomes separate: one algorithm stalling under a
/// fault plan must not discard the fits that succeeded (the tuner skips
/// `Err` algorithms and the selection layer falls back to the fixed
/// rules for them).
pub fn try_estimate_collective_family(
    cluster: &ClusterModel,
    collective: Collective,
    cfg: &BreadthConfig,
    gamma: &GammaTable,
    seed: u64,
    policy: &RetryPolicy,
) -> BTreeMap<Alg, Result<AlphaBetaEstimate, SimError>> {
    cfg.validate();
    let algs = collective.algorithms();
    let flat: Vec<CollectiveSpec> = algs
        .iter()
        .enumerate()
        .flat_map(|(i, &alg)| collective_specs(alg, cfg, seed.wrapping_add((i as u64) << 32)))
        .collect();
    let outcomes = Pool::current().run(flat.iter().map(|spec| {
        let spec = *spec;
        move || {
            try_collective_time_with(
                cluster,
                spec.alg,
                spec.p,
                spec.m,
                spec.seg_size,
                &cfg.precision,
                spec.seed,
                policy,
                cfg.backend,
            )
        }
    }));
    let n = cfg.msg_sizes.len();
    let mut cells = outcomes.into_iter();
    algs.iter()
        .map(|&alg| {
            let alg_cells: Result<Vec<SampleStats>, SimError> = cells.by_ref().take(n).collect();
            (
                alg,
                alg_cells.map(|measured| fit_from_measurements(alg, cfg, gamma, measured)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_model::FitValidity;
    use collsel_netsim::NoiseParams;

    fn quiet_gros() -> ClusterModel {
        ClusterModel::gros().with_noise(NoiseParams::OFF)
    }

    fn gamma() -> GammaTable {
        GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)])
    }

    #[test]
    fn every_collective_family_fits_valid_parameters() {
        let cluster = quiet_gros();
        let cfg = BreadthConfig::quick(8);
        for coll in Collective::ALL {
            let fits = estimate_collective_family(&cluster, coll, &cfg, &gamma(), 1);
            assert_eq!(fits.len(), coll.algorithms().len(), "{coll}");
            for (alg, est) in &fits {
                assert_eq!(alg.collective(), coll);
                // gather_bcast is the one algorithm whose canonical
                // abscissa saturates structurally (both of its stages
                // segment internally at a fixed 8 KB, so x spans less
                // than a factor 3); its β may collapse to the clamp.
                // Every other algorithm must resolve a positive β.
                use collsel_coll::AllgatherAlg;
                if *alg != Alg::Allgather(AllgatherAlg::GatherBcast) {
                    assert!(
                        est.hockney.beta > 0.0,
                        "{}: {:?}",
                        alg.qualified_name(),
                        est.hockney
                    );
                }
                assert_eq!(
                    est.validity(),
                    FitValidity::Valid,
                    "{}: {}",
                    alg.qualified_name(),
                    est.validity()
                );
            }
        }
    }

    #[test]
    fn single_algorithm_estimate_matches_family_entry() {
        let cluster = quiet_gros();
        let cfg = BreadthConfig::quick(6);
        let coll = Collective::Allgather;
        let family = estimate_collective_family(&cluster, coll, &cfg, &gamma(), 9);
        let alg = coll.algorithms()[0];
        let single = estimate_collective_alpha_beta(&cluster, alg, &cfg, &gamma(), 9);
        assert_eq!(family[&alg], single, "same seed derivation, same fit");
    }

    #[test]
    fn try_family_keeps_per_algorithm_outcomes() {
        use collsel_netsim::SimSpan;
        let cluster = quiet_gros();
        let cfg = BreadthConfig::quick(6);
        let hopeless = RetryPolicy {
            max_attempts: 1,
            budget: Some(SimSpan::from_nanos(1)),
            backoff: 1,
        };
        let all = try_estimate_collective_family(
            &cluster,
            Collective::Scatter,
            &cfg,
            &gamma(),
            1,
            &hopeless,
        );
        assert_eq!(all.len(), Collective::Scatter.algorithms().len());
        for (alg, outcome) in &all {
            let err = outcome.as_ref().expect_err("1 ns budget cannot fit a run");
            assert!(
                matches!(err, SimError::Timeout { .. }),
                "{}: {err}",
                alg.qualified_name()
            );
        }
        let fine = try_estimate_collective_family(
            &cluster,
            Collective::Scatter,
            &cfg,
            &gamma(),
            1,
            &RetryPolicy::no_deadline(),
        );
        let plain = estimate_collective_family(&cluster, Collective::Scatter, &cfg, &gamma(), 1);
        for (alg, outcome) in fine {
            assert_eq!(outcome.expect("fault-free"), plain[&alg]);
        }
    }
}
