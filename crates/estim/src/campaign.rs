//! Adaptive campaign primitives: leader-settled family cells and the
//! crossover-bisection planner.
//!
//! The exhaustive tuning sweep measures every (algorithm, P, m) cell of
//! a decision grid to a fixed CI precision, even though the decision
//! table only depends on where the argmin *changes* ("Fast Tuning of
//! Intra-Cluster Collective Communications", cs/0408034). This module
//! supplies the two mechanisms that remove the waste, both built so the
//! adaptive path is **differentially comparable** against the
//! exhaustive sweep:
//!
//! * [`measure_family_cell`] measures one collective's whole algorithm
//!   family at one (P, m) point, round-robining adaptive batches across
//!   the algorithms. With `leader_early_stop`, an algorithm whose 95%
//!   confidence interval is disjoint *above* the current leader's stops
//!   sampling immediately, and once every rival has settled the leader
//!   stops too — repetitions are spent only while the argmin is
//!   statistically contested, and contested rivals run to the full
//!   precision target so near-tie winners match the exhaustive path's
//!   converged argmin. With `leader_early_stop` off, every algorithm's
//!   statistics are bit-identical to [`collective_time_with`] — that is
//!   the differential oracle.
//! * [`plan_crossover_fill`] decides *which* m-grid indices to measure:
//!   coarse anchors first, bisection only inside intervals whose
//!   endpoint winners differ, whose endpoint wins are not *decisive*
//!   (the winner's lead over the runner-up is below
//!   [`DECISIVE_MARGIN`] — near-ties are exactly where narrow winner
//!   islands live, so they are densified instead of interpolated), or
//!   where a warm-start hint disagrees with a fresh measurement;
//!   interpolation everywhere else. It is a pure function of the
//!   evaluator — memoised by index, so the traversal order can never
//!   change a winner.
//!
//! Both primitives derive every seed from the grid position, keeping
//! campaigns bit-identical at any thread count and on either execution
//! backend.

use crate::measure::{paired_samples, recording_cluster, timed_reps, ROOT};
use crate::memo::{compiled_dag, CellProgram, DagCell};
use crate::stats::{AdaptiveAccumulator, Precision, SampleStats};
use collsel_coll::compile::compile_timed_collective;
use collsel_coll::{run_collective, Collective};
use collsel_mpi::{simulate_scheduled, Backend, DagEvaluator, Schedule, SimOptions};
use collsel_netsim::ClusterModel;

/// Minimum relative lead of a cell's winner over its runner-up for the
/// win to count as *decisive*. Two algorithms within this margin of
/// each other can trade places on adjacent grid cells (their time
/// curves cross repeatedly while staying nearly parallel), so the
/// planner refuses to interpolate across such cells and bisects them
/// densely instead.
pub const DECISIVE_MARGIN: f64 = 0.10;

/// Safety factor applied to [`DECISIVE_MARGIN`] when the margin comes
/// from a *model prediction* (a warm-start hint) instead of a
/// measurement: predictions carry fitting error, so a hint is only
/// trusted where the model predicts the win by at least
/// `HINT_MARGIN_FACTOR * DECISIVE_MARGIN`. Everywhere the model itself
/// says the race is close, the planner measures instead of trusting.
pub const HINT_MARGIN_FACTOR: f64 = 2.0;

/// The measured outcome of one (collective, P, m) family cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyCell {
    /// Per-algorithm statistics, in `collective.algorithms()` order.
    pub stats: Vec<SampleStats>,
    /// Index of the winning algorithm within the family (strict argmin
    /// of the means; the first algorithm wins exact ties).
    pub winner: usize,
    /// Total adaptive batches simulated across the family — the cost
    /// the leader-settled rule reduces.
    pub batches: usize,
}

impl FamilyCell {
    /// The winner's relative lead over the runner-up:
    /// `(second_best_mean - best_mean) / best_mean`. Infinite for
    /// single-algorithm families or a zero winning mean.
    pub fn runner_up_margin(&self) -> f64 {
        let best = self.stats[self.winner].mean;
        let runner_up = self
            .stats
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.winner)
            .map(|(_, s)| s.mean)
            .fold(f64::INFINITY, f64::min);
        if best > 0.0 && runner_up.is_finite() {
            (runner_up - best) / best
        } else {
            f64::INFINITY
        }
    }

    /// Whether the win is decisive under [`DECISIVE_MARGIN`] — the
    /// planner only interpolates between decisively-won cells.
    pub fn decisive(&self) -> bool {
        self.runner_up_margin() >= DECISIVE_MARGIN
    }
}

/// Strict argmin over means: the earliest algorithm strictly below
/// every later one wins, so exact ties resolve to family order (the
/// same stable rule on the adaptive and exhaustive paths).
fn argmin_mean(stats: &[SampleStats]) -> usize {
    let mut best = 0;
    for (i, s) in stats.iter().enumerate().skip(1) {
        if s.mean < stats[best].mean {
            best = i;
        }
    }
    best
}

/// How one algorithm's batches execute: a compiled timing DAG
/// batch-evaluated in place (dag backend), a compiled schedule
/// replayed per batch (events backend), or the OS-thread oracle.
enum AlgExec {
    Dag(DagEvaluator),
    Sched(Schedule),
    Threads,
}

/// One algorithm's sampling state inside a family cell: its execution
/// tier ([`AlgExec`]) plus the incremental stopping rule.
struct AlgSampler {
    alg: collsel_coll::Alg,
    p: usize,
    m: usize,
    seg_size: usize,
    seed: u64,
    exec: AlgExec,
    acc: AdaptiveAccumulator,
    /// Set by the leader-settled rule: this algorithm's CI is disjoint
    /// above the leader's, so it stops sampling as a settled loser.
    settled: bool,
}

impl AlgSampler {
    /// Pulls one adaptive batch: the batch seed, repetition count and
    /// per-sample arithmetic are exactly [`collective_time_with`]'s,
    /// so a sampler driven to completion is bit-identical to it.
    fn pull(&mut self, cluster: &ClusterModel, precision: &Precision) {
        let batch_seed = self.seed.wrapping_add(self.acc.batches() as u64);
        let samples = match &mut self.exec {
            AlgExec::Dag(ev) => {
                let run = ev
                    .run(batch_seed, SimOptions::default())
                    .expect("measurement program cannot deadlock");
                paired_samples(&run, 1.0)
            }
            AlgExec::Sched(sched) => {
                let run = simulate_scheduled(cluster, sched, batch_seed, SimOptions::default())
                    .expect("measurement program cannot deadlock");
                paired_samples(&run, 1.0)
            }
            AlgExec::Threads => {
                let (alg, m, seg) = (self.alg, self.m, self.seg_size);
                timed_reps(
                    cluster,
                    self.p,
                    batch_seed,
                    precision.min_reps,
                    move |ctx| run_collective(ctx, alg, ROOT, m, seg),
                )
            }
        };
        self.acc.push_batch(samples, precision);
    }
}

/// Marks every algorithm whose 95% CI lies wholly above the current
/// leader's as a settled loser. The leader is the lowest running mean
/// among non-settled algorithms with at least `min_reps` samples; it is
/// never settled itself, so it always runs to its own precision target.
fn settle_losers(samplers: &mut [AlgSampler], precision: &Precision) {
    let mut leader: Option<usize> = None;
    for (i, s) in samplers.iter().enumerate() {
        if s.settled || s.acc.n() < precision.min_reps {
            continue;
        }
        match leader {
            Some(l) if samplers[l].acc.mean() <= s.acc.mean() => {}
            _ => leader = Some(i),
        }
    }
    let Some(l) = leader else { return };
    let leader_high = samplers[l].acc.mean() + samplers[l].acc.ci_half_width();
    for (i, s) in samplers.iter_mut().enumerate() {
        if i == l || s.settled || s.acc.n() < precision.min_reps {
            continue;
        }
        if s.acc.mean() - s.acc.ci_half_width() > leader_high {
            s.settled = true;
        }
    }
}

/// Measures one collective's whole algorithm family at one (P, m)
/// point, round-robining adaptive batches across the algorithms.
///
/// Algorithm `i` samples with seed `seed + (i << 32)` (the breadth
/// campaigns' per-algorithm convention), so the family's noise streams
/// are decorrelated and independent of the measurement order. With
/// `leader_early_stop` off, every algorithm's statistics are
/// bit-identical to [`collective_time_with`] with the same arguments;
/// with it on, algorithms whose CI separates above the leader stop
/// early ([`settle_losers`]), and the leader itself stops once every
/// rival has settled — only still-contested rivals run to the full
/// precision target, so the argmin (the only thing the decision table
/// reads) is decided at the same confidence as the exhaustive path.
///
/// # Panics
///
/// Panics if `p` exceeds the cluster's slots.
#[allow(clippy::too_many_arguments)]
pub fn measure_family_cell(
    cluster: &ClusterModel,
    collective: Collective,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
    backend: Backend,
    leader_early_stop: bool,
) -> FamilyCell {
    precision.validate();
    let mut samplers: Vec<AlgSampler> = collective
        .algorithms()
        .iter()
        .enumerate()
        .map(|(i, &alg)| {
            let alg_seed = seed.wrapping_add((i as u64) << 32);
            let exec = match backend {
                Backend::Dag => compiled_dag(
                    &recording_cluster(cluster),
                    CellProgram::Collective {
                        alg,
                        p,
                        m,
                        seg_size,
                    },
                    precision.min_reps,
                    |rec, reps| compile_timed_collective(rec, alg, p, ROOT, m, seg_size, reps),
                )
                .map(|cell| match cell {
                    DagCell::Compiled(dag) => AlgExec::Dag(DagEvaluator::new(cluster, dag)),
                    // Beyond the DAG index space: replay the recorded
                    // schedule through the events tier instead.
                    DagCell::TooLarge(sched) => AlgExec::Sched(sched),
                })
                .unwrap_or(AlgExec::Threads),
                Backend::Events => compile_timed_collective(
                    &recording_cluster(cluster),
                    alg,
                    p,
                    ROOT,
                    m,
                    seg_size,
                    precision.min_reps,
                )
                .map(AlgExec::Sched)
                .unwrap_or(AlgExec::Threads),
                Backend::Threads => AlgExec::Threads,
            };
            AlgSampler {
                alg,
                p,
                m,
                seg_size,
                seed: alg_seed,
                exec,
                acc: AdaptiveAccumulator::new(),
                settled: false,
            }
        })
        .collect();
    loop {
        let mut progressed = false;
        for s in samplers.iter_mut() {
            if s.settled || s.acc.done(precision) {
                continue;
            }
            s.pull(cluster, precision);
            progressed = true;
        }
        if leader_early_stop {
            settle_losers(&mut samplers, precision);
            // Once every rival is a settled loser the argmin is decided
            // at the same 95% confidence — the leader stops too instead
            // of polishing a mean the decision table never reads. (In
            // contested cells nothing settles, so every contender still
            // runs to the full precision target and the argmin matches
            // the exhaustive path's converged argmin.)
            if samplers.len() > 1 && samplers.iter().filter(|s| !s.settled).count() <= 1 {
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    let batches = samplers.iter().map(|s| s.acc.batches()).sum();
    let stats: Vec<SampleStats> = samplers.iter().map(|s| s.acc.finish()).collect();
    let winner = argmin_mean(&stats);
    FamilyCell {
        stats,
        winner,
        batches,
    }
}

/// The resolved winner column of one (collective, P) row: which grid
/// index got which winner, and which indices were actually measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossoverPlan {
    /// Winner per m-grid index (family-local algorithm index).
    pub winners: Vec<usize>,
    /// Whether each index was measured (`true`) or interpolated.
    pub measured: Vec<bool>,
    /// Whether the evaluation budget ran out before the plan resolved
    /// every contested interval (remaining gaps are filled from the
    /// nearest measured anchors).
    pub budget_exhausted: bool,
}

impl CrossoverPlan {
    /// Number of indices actually measured.
    pub fn measured_count(&self) -> usize {
        self.measured.iter().filter(|&&m| m).count()
    }
}

/// Memoised, budget-aware evaluator: each index is measured at most
/// once, so the traversal order can never change a winner. The memo
/// holds `(winner, decisive)` per measured index.
struct Prober<F> {
    memo: Vec<Option<(usize, bool)>>,
    measured: Vec<bool>,
    evals: usize,
    budget: Option<usize>,
    exhausted: bool,
    eval: F,
}

impl<F: FnMut(usize) -> (usize, bool)> Prober<F> {
    /// Evaluates index `i` (memoised). `force` bypasses the budget —
    /// the grid endpoints must always be measured so every gap has a
    /// measured anchor to fill from.
    fn probe(&mut self, i: usize, force: bool) -> Option<(usize, bool)> {
        if let Some(w) = self.memo[i] {
            return Some(w);
        }
        if !force {
            if let Some(b) = self.budget {
                if self.evals >= b {
                    self.exhausted = true;
                    return None;
                }
            }
        }
        let w = (self.eval)(i);
        self.evals += 1;
        self.memo[i] = Some(w);
        self.measured[i] = true;
        Some(w)
    }
}

/// Resolves one (collective, P) row's winner column by crossover
/// bisection: measure coarse anchors, bisect only the contested
/// intervals, interpolate the rest.
///
/// `eval(i)` measures grid index `i` and returns `(winner, decisive)`
/// — typically the family-local [`FamilyCell::winner`] and
/// [`FamilyCell::decisive`]. An interval between two measured indices
/// is *interpolated* (filled with the shared winner, no measurements
/// inside) only when both endpoints report the same winner **and**
/// both wins are decisive; otherwise it is bisected. Near-ties — two
/// algorithm curves within [`DECISIVE_MARGIN`] of each other — are
/// exactly where winners trade places on adjacent cells, so those
/// regions densify down to every cell instead of being guessed.
///
/// Without `hints`, the anchors are every `anchor_step`-th index plus
/// the last. With `hints` (a warm-start prediction per index — the
/// predicted winner and whether the model predicts that win
/// *decisively*, e.g. by [`HINT_MARGIN_FACTOR`] times the measured
/// margin), the anchors shrink to the endpoints, both sides of every
/// predicted winner change, and every index whose prediction is
/// non-decisive — the model is only trusted where it is confident. An
/// interval is then interpolated only when the measured endpoints
/// *and* every hint inside agree decisively, so a wrong or shaky
/// prediction triggers dense verification instead of a silently wrong
/// table.
///
/// The residual blind spot: a winner island strictly inside an
/// interval whose endpoints are decisively won by the same algorithm
/// (and hint-consistent, when warm-started) is invisible. The
/// differential gates in `tests/adaptive_campaign.rs` and the campaign
/// bench check that no such island exists on the shipped presets'
/// grids.
///
/// `budget` caps the number of `eval` calls (the endpoints are always
/// measured regardless); once spent, unresolved intervals are filled
/// from their nearest measured anchors and
/// [`budget_exhausted`](CrossoverPlan::budget_exhausted) is set.
///
/// # Panics
///
/// Panics if `n` is zero, `anchor_step` is zero, or `hints` has the
/// wrong length.
pub fn plan_crossover_fill(
    n: usize,
    anchor_step: usize,
    hints: Option<&[(usize, bool)]>,
    budget: Option<usize>,
    eval: impl FnMut(usize) -> (usize, bool),
) -> CrossoverPlan {
    assert!(n > 0, "need at least one grid index");
    assert!(anchor_step > 0, "anchor step must be at least 1");
    if let Some(h) = hints {
        assert_eq!(h.len(), n, "hints must cover the grid");
    }
    let mut prober = Prober {
        memo: vec![None; n],
        measured: vec![false; n],
        evals: 0,
        budget,
        exhausted: false,
        eval,
    };
    let mut anchors: Vec<usize> = match hints {
        Some(h) => {
            let mut a = vec![0, n - 1];
            for i in 1..n {
                if h[i].0 != h[i - 1].0 {
                    a.push(i - 1);
                    a.push(i);
                }
            }
            // Wherever the model itself predicts a near-tie, its
            // winner pick is one fitting error away from wrong — those
            // cells are measured, never trusted.
            a.extend((0..n).filter(|&i| !h[i].1));
            a
        }
        None => (0..n).step_by(anchor_step).chain([n - 1]).collect(),
    };
    anchors.sort_unstable();
    anchors.dedup();
    // Endpoints first (budget-exempt), then interior anchors in order.
    prober.probe(0, true);
    prober.probe(n - 1, true);
    for &a in &anchors {
        prober.probe(a, false);
    }
    // An interval is interpolable only when its measured endpoints
    // agree — and, when warm-started, only when every hint strictly
    // inside agrees with them decisively (a model/measurement
    // disagreement, or a model-predicted near-tie, must be verified,
    // not trusted; the endpoints themselves are already measured).
    let fill_ok = |a: usize, b: usize, w: usize| -> bool {
        hints.map_or(true, |h| (a + 1..b).all(|i| h[i] == (w, true)))
    };
    // Left-to-right worklist over measured-anchor intervals; bisection
    // pushes sub-intervals. Deterministic order, and winners are
    // memoised by index, so ordering is cosmetic anyway.
    let mut stack: Vec<(usize, usize)> = anchors.windows(2).rev().map(|w| (w[0], w[1])).collect();
    while let Some((a, b)) = stack.pop() {
        let (Some((wa, da)), Some((wb, db))) = (prober.memo[a], prober.memo[b]) else {
            // An unmeasured anchor (budget ran out during the anchor
            // pass): leave the gap for the final fill.
            continue;
        };
        if b - a <= 1 {
            continue;
        }
        if wa == wb && da && db && fill_ok(a, b, wa) {
            for i in a + 1..b {
                if prober.memo[i].is_none() {
                    prober.memo[i] = Some((wa, true));
                }
            }
            continue;
        }
        let mid = (a + b) / 2;
        match prober.probe(mid, false) {
            Some(_) => {
                stack.push((mid, b));
                stack.push((a, mid));
            }
            None => {
                // Budget spent mid-bisection: split the interval at its
                // midpoint between the two measured endpoint winners.
                for i in a + 1..b {
                    if prober.memo[i].is_none() {
                        prober.memo[i] = Some((if i < mid { wa } else { wb }, false));
                    }
                }
            }
        }
    }
    // Any index still unresolved (anchors skipped under a tiny budget)
    // snaps to the nearest measured value on its left; index 0 is
    // always measured, so the scan never lacks an anchor.
    let mut winners = Vec::with_capacity(n);
    let mut last = prober.memo[0].expect("endpoint is always measured").0;
    for i in 0..n {
        if let Some((w, _)) = prober.memo[i] {
            last = w;
        }
        winners.push(last);
    }
    CrossoverPlan {
        winners,
        measured: prober.measured,
        budget_exhausted: prober.exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;

    #[test]
    fn family_cell_without_early_stop_matches_collective_time() {
        let cluster = ClusterModel::gros();
        let precision = Precision::quick();
        let (c, p, m, seg) = (Collective::Reduce, 8usize, 64 * 1024usize, 64 * 1024usize);
        let seed = 0xFEED;
        let cell = measure_family_cell(
            &cluster,
            c,
            p,
            m,
            seg,
            &precision,
            seed,
            Backend::Events,
            false,
        );
        for (i, &alg) in c.algorithms().iter().enumerate() {
            let direct = crate::measure::collective_time_with(
                &cluster,
                alg,
                p,
                m,
                seg,
                &precision,
                seed.wrapping_add((i as u64) << 32),
                Backend::Events,
            );
            assert_eq!(cell.stats[i], direct, "alg {alg}");
        }
    }

    #[test]
    fn family_cell_is_backend_invariant() {
        let cluster = ClusterModel::gros();
        let precision = Precision::quick();
        for early in [false, true] {
            let ev = measure_family_cell(
                &cluster,
                Collective::Allgather,
                6,
                32 * 1024,
                64 * 1024,
                &precision,
                7,
                Backend::Events,
                early,
            );
            let th = measure_family_cell(
                &cluster,
                Collective::Allgather,
                6,
                32 * 1024,
                64 * 1024,
                &precision,
                7,
                Backend::Threads,
                early,
            );
            let dag = measure_family_cell(
                &cluster,
                Collective::Allgather,
                6,
                32 * 1024,
                64 * 1024,
                &precision,
                7,
                Backend::Dag,
                early,
            );
            assert_eq!(ev, th, "early_stop={early}");
            assert_eq!(ev, dag, "early_stop={early}");
        }
    }

    #[test]
    fn early_stop_never_simulates_more_batches() {
        let cluster = ClusterModel::gros(); // noise ON: contested cells
        let precision = Precision::quick();
        let full = measure_family_cell(
            &cluster,
            Collective::Bcast,
            12,
            256 * 1024,
            8 * 1024,
            &precision,
            3,
            Backend::Events,
            false,
        );
        let early = measure_family_cell(
            &cluster,
            Collective::Bcast,
            12,
            256 * 1024,
            8 * 1024,
            &precision,
            3,
            Backend::Events,
            true,
        );
        assert!(early.batches <= full.batches);
        assert_eq!(early.winner, full.winner);
    }

    #[test]
    fn quiet_cluster_converges_in_one_batch_per_algorithm() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let precision = Precision::quick();
        let cell = measure_family_cell(
            &cluster,
            Collective::Scatter,
            8,
            16 * 1024,
            64 * 1024,
            &precision,
            1,
            Backend::Events,
            false,
        );
        // Zero variance: the CI collapses at min_reps.
        assert_eq!(cell.batches, Collective::Scatter.algorithms().len());
    }

    #[test]
    fn planner_recovers_step_functions_with_wide_runs() {
        // Runs at least as wide as the anchor stride are always found.
        let seq = |i: usize| match i {
            0..=9 => 0usize,
            10..=24 => 2,
            _ => 1,
        };
        let n = 40;
        let mut evals = 0;
        let plan = plan_crossover_fill(n, 8, None, None, |i| {
            evals += 1;
            (seq(i), true)
        });
        assert_eq!(plan.winners, (0..n).map(seq).collect::<Vec<_>>());
        assert_eq!(plan.measured_count(), evals);
        assert!(evals < n, "bisection must beat the exhaustive sweep");
        assert!(!plan.budget_exhausted);
    }

    #[test]
    fn planner_with_correct_hints_measures_only_boundaries() {
        let seq: Vec<usize> = (0..64).map(|i| usize::from(i >= 40)).collect();
        let hints: Vec<(usize, bool)> = seq.iter().map(|&w| (w, true)).collect();
        let plan = plan_crossover_fill(64, 8, Some(&hints), None, |i| (seq[i], true));
        assert_eq!(plan.winners, seq);
        // Endpoints + the two hinted boundary cells.
        assert_eq!(plan.measured_count(), 4);
    }

    #[test]
    fn planner_distrusts_wrong_hints() {
        // The model predicts a crossover at 8; the measurements say 12.
        let truth: Vec<usize> = (0..24).map(|i| usize::from(i >= 12)).collect();
        let hints: Vec<(usize, bool)> = (0..24).map(|i| (usize::from(i >= 8), true)).collect();
        let plan = plan_crossover_fill(24, 8, Some(&hints), None, |i| (truth[i], true));
        assert_eq!(plan.winners, truth, "disagreement must densify, not fill");
    }

    #[test]
    fn planner_measures_non_decisive_hints() {
        // The model predicts winner 0 everywhere, but flags indices
        // 10..=14 as a predicted near-tie; the truth hides a winner
        // island there. Winner-agreement alone would interpolate the
        // whole row from its endpoints — the uncertainty flags force
        // those cells to be measured and the island to be found.
        let truth = |i: usize| usize::from((11..=13).contains(&i));
        let hints: Vec<(usize, bool)> = (0..32).map(|i| (0, !(10..=14).contains(&i))).collect();
        let plan = plan_crossover_fill(32, 8, Some(&hints), None, |i| (truth(i), true));
        assert_eq!(plan.winners, (0..32).map(truth).collect::<Vec<_>>());
        assert!((10..=14).all(|i| plan.measured[i]));
        assert!(plan.measured_count() < 32);
    }

    #[test]
    fn planner_budget_caps_measurements_and_reports_exhaustion() {
        let truth: Vec<usize> = (0..64).map(|i| usize::from(i >= 31)).collect();
        let plan = plan_crossover_fill(64, 4, None, Some(6), |i| (truth[i], true));
        assert!(plan.budget_exhausted);
        // Endpoints are budget-exempt; everything else respects the cap.
        assert!(plan.measured_count() <= 6 + 2);
        assert_eq!(plan.winners.len(), 64);
    }

    #[test]
    fn planner_is_deterministic() {
        let truth: Vec<usize> = (0..50).map(|i| (i / 17) % 3).collect();
        let a = plan_crossover_fill(50, 8, None, None, |i| (truth[i], true));
        let b = plan_crossover_fill(50, 8, None, None, |i| (truth[i], true));
        assert_eq!(a, b);
    }

    #[test]
    fn planner_densifies_non_decisive_regions() {
        // A one-cell winner island inside a near-tie band: anchors on
        // both sides agree, so winner-equality alone would interpolate
        // right over it. The non-decisive flag forces full bisection.
        let truth = |i: usize| usize::from(i == 11);
        let contested = |i: usize| (8..=14).contains(&i);
        let n = 24;
        let plan = plan_crossover_fill(n, 8, None, None, |i| (truth(i), !contested(i)));
        assert_eq!(plan.winners, (0..n).map(truth).collect::<Vec<_>>());
        // Every contested cell was measured, decisive spans were not.
        assert!((8..=14).all(|i| plan.measured[i]));
        assert!(plan.measured_count() < n);
    }
}
