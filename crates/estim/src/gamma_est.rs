//! Estimation of γ(P) — the paper's Sect. 4.1.
//!
//! For each process count `P` in `2..=max_width`, the root measures the
//! time `T1(P, N)` of `N` successive *non-blocking linear-tree*
//! broadcasts of one segment, separated by barriers, and estimates the
//! per-call time `T2(P) = T1(P, N) / N`. The discrete function
//! `γ(P) = T2(P) / T2(2)` is the platform-specific, algorithm-independent
//! factor used by every implementation-derived model.

use crate::measure::{
    linear_segment_bcast_time_with, try_linear_segment_bcast_time_with, RetryPolicy,
};
use crate::stats::{Precision, SampleStats};
use collsel_model::GammaTable;
use collsel_mpi::{Backend, SimError};
use collsel_netsim::ClusterModel;
use collsel_support::pool::Pool;

/// Configuration of the γ estimation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaConfig {
    /// Segment size `m_s` (the paper uses 8 KB).
    pub seg_size: usize,
    /// Largest linear-tree width to measure (the paper measures 2..=7,
    /// the maximum child count of the segmented broadcast trees plus
    /// one).
    pub max_width: usize,
    /// Successive calls per sample (`N`).
    pub calls_per_sample: usize,
    /// Stopping rule for each `T2(P)`.
    pub precision: Precision,
    /// Execution backend of the measurement simulations (both return
    /// bit-identical statistics; events is the campaign hot path).
    pub backend: Backend,
}

impl GammaConfig {
    /// The paper's configuration: 8 KB segments, widths 2..=7.
    pub fn paper() -> Self {
        GammaConfig {
            seg_size: 8 * 1024,
            max_width: 7,
            calls_per_sample: 10,
            precision: Precision::paper(),
            backend: Backend::default(),
        }
    }

    /// A loose, fast configuration for tests.
    pub fn quick() -> Self {
        GammaConfig {
            seg_size: 8 * 1024,
            max_width: 5,
            calls_per_sample: 3,
            precision: Precision::quick(),
            backend: Backend::default(),
        }
    }
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig::paper()
    }
}

/// Result of the γ estimation: the table plus the raw measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaEstimate {
    /// The fitted table, ready for the models.
    pub table: GammaTable,
    /// Per-width measured `T2(P)` statistics.
    pub t2: Vec<(usize, SampleStats)>,
}

/// Runs the Sect. 4.1 experiments on `cluster` and returns the γ table.
///
/// # Panics
///
/// Panics if `max_width` is below 2 or exceeds the cluster's slots.
pub fn estimate_gamma(cluster: &ClusterModel, cfg: &GammaConfig, seed: u64) -> GammaEstimate {
    assert!(cfg.max_width >= 2, "gamma needs widths of at least 2");
    assert!(
        cfg.max_width <= cluster.max_ranks(),
        "cluster {} cannot host {} processes",
        cluster.name(),
        cfg.max_width
    );
    // Each width is an independent experiment with its own seed, so the
    // widths fan out across the pool; results come back in width order
    // and are bit-identical to the serial loop at any thread count.
    let stats = Pool::current().run((2..=cfg.max_width).map(|p| {
        move || {
            linear_segment_bcast_time_with(
                cluster,
                p,
                cfg.seg_size,
                cfg.calls_per_sample,
                &cfg.precision,
                seed.wrapping_add(p as u64 * 1009),
                cfg.backend,
            )
        }
    }));
    let t2: Vec<(usize, SampleStats)> = (2..=cfg.max_width).zip(stats).collect();
    let base = t2[0].1.mean;
    assert!(base > 0.0, "T2(2) must be positive");
    let pairs: Vec<(usize, f64)> = t2
        .iter()
        .skip(1)
        .map(|&(p, s)| (p, (s.mean / base).max(1.0)))
        .collect();
    GammaEstimate {
        table: GammaTable::from_pairs(pairs),
        t2,
    }
}

/// Fallible twin of [`estimate_gamma`] for clusters running under an
/// injected fault plan: each `T2(P)` measurement runs under `policy`'s
/// virtual-time watchdog, and a width whose sample cannot reach the
/// precision target (or whose run stalls past every retry) aborts the
/// whole estimation — γ(P) is the foundation every derived model shares,
/// so a partial table is not a usable table.
///
/// # Errors
///
/// Propagates the first [`SimError`] from any width's measurement
/// (typically [`SimError::Timeout`] or
/// [`SimError::PrecisionNotReached`]).
///
/// # Panics
///
/// Panics if `max_width` is below 2 or exceeds the cluster's slots, and
/// if a completed estimation yields a non-positive `T2(2)` (impossible
/// on a causally consistent fabric).
pub fn try_estimate_gamma(
    cluster: &ClusterModel,
    cfg: &GammaConfig,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<GammaEstimate, SimError> {
    assert!(cfg.max_width >= 2, "gamma needs widths of at least 2");
    assert!(
        cfg.max_width <= cluster.max_ranks(),
        "cluster {} cannot host {} processes",
        cluster.name(),
        cfg.max_width
    );
    // All widths run (even past a failure — unlike the serial loop's
    // early exit, the pool cannot cancel in-flight cells), but the
    // reported error is the first one in width order, so the outcome is
    // deterministic and identical to serial execution.
    let outcomes = Pool::current().run((2..=cfg.max_width).map(|p| {
        move || {
            try_linear_segment_bcast_time_with(
                cluster,
                p,
                cfg.seg_size,
                cfg.calls_per_sample,
                &cfg.precision,
                seed.wrapping_add(p as u64 * 1009),
                policy,
                cfg.backend,
            )
        }
    }));
    let mut t2 = Vec::with_capacity(cfg.max_width - 1);
    for (p, outcome) in (2..=cfg.max_width).zip(outcomes) {
        t2.push((p, outcome?));
    }
    let base = t2[0].1.mean;
    assert!(base > 0.0, "T2(2) must be positive");
    let pairs: Vec<(usize, f64)> = t2
        .iter()
        .skip(1)
        .map(|&(p, s)| (p, (s.mean / base).max(1.0)))
        .collect();
    Ok(GammaEstimate {
        table: GammaTable::from_pairs(pairs),
        t2,
    })
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(GammaEstimate { table, t2 });

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;

    #[test]
    fn gamma_is_monotone_between_one_and_pminus1() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let est = estimate_gamma(&cluster, &GammaConfig::quick(), 3);
        let mut prev = 1.0;
        for p in 2..=5 {
            let g = est.table.gamma(p);
            assert!(g >= prev - 1e-9, "gamma({p}) = {g} not monotone");
            assert!(g <= (p - 1) as f64 + 1e-9, "gamma({p}) = {g} above P-1");
            prev = g;
        }
    }

    #[test]
    fn calibrated_presets_land_near_paper_table_1() {
        // Paper Table 1: Grisou 1.114..1.540, Gros 1.084..1.424 for
        // P = 3..7. The presets are calibrated to land in that
        // neighbourhood; allow a generous tolerance.
        let cfg = GammaConfig {
            max_width: 7,
            ..GammaConfig::quick()
        };
        for (cluster, g3_paper, g7_paper) in [
            (ClusterModel::grisou(), 1.114, 1.540),
            (ClusterModel::gros(), 1.084, 1.424),
        ] {
            let cluster = cluster.with_noise(NoiseParams::OFF);
            let est = estimate_gamma(&cluster, &cfg, 5);
            let g3 = est.table.gamma(3);
            let g7 = est.table.gamma(7);
            assert!(
                (g3 - g3_paper).abs() < 0.15,
                "{}: gamma(3) = {g3} vs paper {g3_paper}",
                cluster.name()
            );
            assert!(
                (g7 - g7_paper).abs() < 0.3,
                "{}: gamma(7) = {g7} vs paper {g7_paper}",
                cluster.name()
            );
        }
    }

    #[test]
    fn estimate_reports_raw_measurements() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let est = estimate_gamma(&cluster, &GammaConfig::quick(), 3);
        assert_eq!(est.t2.len(), 4); // widths 2..=5
        assert!(est.t2.iter().all(|(_, s)| s.mean > 0.0));
    }

    #[test]
    fn try_estimate_matches_infallible_without_deadline() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let cfg = GammaConfig::quick();
        let plain = estimate_gamma(&cluster, &cfg, 3);
        let tried = try_estimate_gamma(&cluster, &cfg, 3, &RetryPolicy::no_deadline())
            .expect("fault-free estimation succeeds");
        assert_eq!(plain, tried);
    }

    #[test]
    fn try_estimate_times_out_under_hopeless_deadline() {
        use collsel_netsim::SimSpan;
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let policy = RetryPolicy {
            max_attempts: 2,
            budget: Some(SimSpan::from_nanos(1)),
            backoff: 1,
        };
        let err = try_estimate_gamma(&cluster, &GammaConfig::quick(), 3, &policy).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "widths of at least 2")]
    fn rejects_tiny_width() {
        let cluster = ClusterModel::gros();
        let cfg = GammaConfig {
            max_width: 1,
            ..GammaConfig::quick()
        };
        let _ = estimate_gamma(&cluster, &cfg, 0);
    }
}
