//! Network-level Hockney estimation from point-to-point round-trips.
//!
//! This is the *traditional* parameter measurement (Hockney 1994): fit
//! `T(m) = α + β·m` to one-way times obtained from ping-pong
//! experiments. The paper's prior-work models (our
//! [`collsel_model::traditional`] family) are evaluated with these
//! network-level parameters; the contrast with the per-algorithm
//! parameters of Sect. 4.2 is the heart of the paper.

use crate::measure::p2p_time;
use crate::regress::ols;
use crate::stats::{Precision, SampleStats};
use collsel_model::Hockney;
use collsel_netsim::ClusterModel;

/// Result of the network-level Hockney measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkHockneyEstimate {
    /// The fitted network-level pair.
    pub hockney: Hockney,
    /// Per-size one-way time measurements.
    pub samples: Vec<(usize, SampleStats)>,
}

/// Measures one-way point-to-point times for each size and fits the
/// Hockney line by ordinary least squares.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
pub fn estimate_network_hockney(
    cluster: &ClusterModel,
    sizes: &[usize],
    precision: &Precision,
    seed: u64,
) -> NetworkHockneyEstimate {
    assert!(sizes.len() >= 2, "need at least two sizes to fit a line");
    let samples: Vec<(usize, SampleStats)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            (
                m,
                p2p_time(cluster, m, precision, seed.wrapping_add(i as u64 * 131)),
            )
        })
        .collect();
    let xs: Vec<f64> = samples.iter().map(|&(m, _)| m as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|(_, s)| s.mean).collect();
    let fit = ols(&xs, &ys);
    NetworkHockneyEstimate {
        hockney: Hockney::new(fit.intercept.max(0.0), fit.slope.max(0.0)),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;

    #[test]
    fn recovers_configured_bandwidth_approximately() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let est = estimate_network_hockney(
            &cluster,
            &[1024, 4096, 16 * 1024, 48 * 1024],
            &Precision::quick(),
            1,
        );
        // Gros: 25 Gbps = 3.125 GB/s -> beta = 0.32 ns/B.
        let beta_true = 1.0 / cluster.bandwidth();
        let ratio = est.hockney.beta / beta_true;
        assert!(
            (0.7..1.5).contains(&ratio),
            "beta {} vs true {beta_true}",
            est.hockney.beta
        );
        // Alpha should be on the order of the one-way latency.
        assert!(est.hockney.alpha > 1e-6);
        assert!(est.hockney.alpha < 1e-3);
    }

    #[test]
    fn keeps_per_size_samples() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let est = estimate_network_hockney(&cluster, &[1024, 8192], &Precision::quick(), 2);
        assert_eq!(est.samples.len(), 2);
        assert!(est.samples[1].1.mean > est.samples[0].1.mean);
    }

    #[test]
    #[should_panic(expected = "at least two sizes")]
    fn rejects_single_size() {
        let cluster = ClusterModel::gros();
        let _ = estimate_network_hockney(&cluster, &[1024], &Precision::quick(), 0);
    }
}
