//! Measurement statistics following the paper's methodology.
//!
//! The paper (Sect. 5.1) measures every data point with the MPIBlib
//! methodology: *"the sample mean is used, which is calculated by
//! executing the application repeatedly until the sample mean lies in
//! the 95% confidence interval and a precision of 0.025 (2.5%) has been
//! achieved"*. [`sample_adaptive`] implements exactly that stopping
//! rule, with Student-t confidence intervals and Welford accumulation;
//! [`SampleStats::normality`] provides the paper's independence/
//! normality sanity diagnostics (skewness and excess kurtosis of the
//! sample).
//!
//! For measurements that may *fail* (watchdog timeouts on a faulted
//! cluster) or never converge (heavy-tailed jitter), the fallible
//! sibling [`sample_adaptive_fallible`] propagates [`SimError`]s from
//! the supplier and escalates through an outlier-robust rescue
//! ([`mad_filter`]) before giving up with
//! [`SimError::PrecisionNotReached`] carrying the achieved CI width.

use collsel_mpi::SimError;

/// Stopping rule for adaptive measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Target half-width of the confidence interval relative to the
    /// mean (the paper uses 0.025).
    pub rel_precision: f64,
    /// Minimum number of samples before the rule may fire.
    pub min_reps: usize,
    /// Hard cap on samples.
    pub max_reps: usize,
}

impl Precision {
    /// The paper's setting: 2.5% precision at 95% confidence.
    pub fn paper() -> Self {
        Precision {
            rel_precision: 0.025,
            min_reps: 5,
            max_reps: 200,
        }
    }

    /// A loose, fast setting for smoke tests and benchmarks.
    pub fn quick() -> Self {
        Precision {
            rel_precision: 0.10,
            min_reps: 3,
            max_reps: 10,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the precision is not in `(0, 1)` or the rep bounds are
    /// inconsistent.
    pub fn validate(&self) {
        assert!(
            self.rel_precision > 0.0 && self.rel_precision < 1.0,
            "relative precision must be in (0, 1), got {}",
            self.rel_precision
        );
        assert!(self.min_reps >= 2, "need at least two samples for a CI");
        assert!(self.max_reps >= self.min_reps, "max_reps < min_reps");
    }
}

impl Default for Precision {
    fn default() -> Self {
        Precision::paper()
    }
}

/// Welford online accumulator for mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: usize,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table for small `df`, asymptotic 1.96 beyond 30.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=60 => 2.00,
        _ => 1.96,
    }
}

/// Result of an adaptive measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of samples taken.
    pub n: usize,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci_half_width: f64,
    /// Whether the precision target was met before `max_reps`.
    pub converged: bool,
    /// Sample skewness (0 for a symmetric distribution).
    pub skewness: f64,
    /// Sample excess kurtosis (0 for a normal distribution).
    pub excess_kurtosis: f64,
}

impl SampleStats {
    /// A loose normality diagnostic: moderate skewness and kurtosis.
    /// The paper checks that observations "follow the normal
    /// distribution"; with seeded log-normal jitter this holds for
    /// small σ.
    pub fn normality(&self) -> bool {
        self.skewness.abs() < 2.0 && self.excess_kurtosis.abs() < 7.0
    }
}

/// Incremental state of one adaptive measurement: the MPIBlib stopping
/// rule of [`sample_adaptive`], exposed one batch at a time so several
/// interleaved measurements can share a round-robin driver (the
/// leader-settled family cells of
/// [`measure_family_cell`](crate::measure_family_cell)).
///
/// Feeding the accumulator the same batches in the same order as
/// [`sample_adaptive`] would pull them produces **bit-identical**
/// statistics: the convergence check, the Welford pushes and the final
/// summary reuse the exact float arithmetic of the closed-loop
/// function (which is itself implemented on top of this type).
#[derive(Debug, Clone, Default)]
pub struct AdaptiveAccumulator {
    samples: Vec<f64>,
    acc: Welford,
    batches: usize,
    converged: bool,
}

impl AdaptiveAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        AdaptiveAccumulator::default()
    }

    /// Number of batches pushed so far — the `batch_index` the next
    /// supplier call should receive.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Number of samples accumulated so far.
    pub fn n(&self) -> usize {
        self.acc.count()
    }

    /// Running sample mean.
    pub fn mean(&self) -> f64 {
        self.acc.mean()
    }

    /// Half-width of the running 95% confidence interval of the mean
    /// (infinite below two samples).
    pub fn ci_half_width(&self) -> f64 {
        let n = self.acc.count();
        if n >= 2 {
            t_critical_95(n - 1) * self.acc.std_dev() / (n as f64).sqrt()
        } else {
            f64::INFINITY
        }
    }

    /// Whether the precision target was met by a previous batch.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Whether the stopping rule would pull no further batch: the
    /// precision target was met or the sample budget is spent.
    pub fn done(&self, precision: &Precision) -> bool {
        self.converged || self.samples.len() >= precision.max_reps
    }

    /// Folds one non-empty batch in and re-evaluates the stopping rule.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or a non-finite sample.
    pub fn push_batch(&mut self, batch: Vec<f64>, precision: &Precision) {
        assert!(!batch.is_empty(), "sample supplier returned an empty batch");
        self.batches += 1;
        for x in batch {
            assert!(x.is_finite(), "non-finite sample {x}");
            self.samples.push(x);
            self.acc.push(x);
        }
        if self.samples.len() >= precision.min_reps {
            let half = t_critical_95(self.acc.count() - 1) * self.acc.std_dev()
                / (self.acc.count() as f64).sqrt();
            let mean = self.acc.mean();
            if mean == 0.0 || half / mean.abs() <= precision.rel_precision {
                self.converged = true;
            }
        }
    }

    /// The final summary over everything pushed so far — identical to
    /// what [`sample_adaptive`] returns for the same sample sequence.
    pub fn finish(&self) -> SampleStats {
        stats_from(&self.samples, self.converged)
    }
}

/// Draws samples from `supplier` until the sample mean lies within
/// `precision.rel_precision` of its 95% confidence interval (or the
/// sample budget runs out).
///
/// `supplier(batch_index)` returns a non-empty batch of fresh samples
/// (letting callers amortise setup over several repetitions).
///
/// # Panics
///
/// Panics if the configuration is invalid or a batch is empty.
pub fn sample_adaptive(
    precision: &Precision,
    mut supplier: impl FnMut(usize) -> Vec<f64>,
) -> SampleStats {
    precision.validate();
    let mut acc = AdaptiveAccumulator::new();
    while !acc.done(precision) {
        let batch = supplier(acc.batches());
        acc.push_batch(batch, precision);
    }
    acc.finish()
}

/// Draws samples from a fallible `supplier` under the same stopping rule
/// as [`sample_adaptive`], but with two escalation steps when things go
/// wrong:
///
/// 1. any [`SimError`] from the supplier (e.g. a watchdog
///    [`SimError::Timeout`] on a faulted cluster) is propagated;
/// 2. if the sample budget runs out without convergence, an
///    outlier-robust rescue is attempted: samples outside `k = 3` MADs
///    of the median ([`mad_filter`]) are dropped and the CI recomputed.
///    If the filtered sample converges (and still holds at least
///    `min_reps` points), its statistics are returned with a note that
///    outliers were discarded; otherwise
///    [`SimError::PrecisionNotReached`] is returned carrying the
///    achieved relative CI half-width.
///
/// The happy path (every batch `Ok`, convergence before `max_reps`) is
/// numerically identical to [`sample_adaptive`].
///
/// # Errors
///
/// Propagates supplier errors; returns [`SimError::PrecisionNotReached`]
/// when neither the raw nor the MAD-filtered sample meets the target.
///
/// # Panics
///
/// Panics if the configuration is invalid or a batch is empty.
pub fn sample_adaptive_fallible(
    precision: &Precision,
    mut supplier: impl FnMut(usize) -> Result<Vec<f64>, SimError>,
) -> Result<SampleStats, SimError> {
    precision.validate();
    let mut samples: Vec<f64> = Vec::new();
    let mut acc = Welford::new();
    let mut batch_index = 0;
    while samples.len() < precision.max_reps {
        let batch = supplier(batch_index)?;
        assert!(!batch.is_empty(), "sample supplier returned an empty batch");
        batch_index += 1;
        for x in batch {
            assert!(x.is_finite(), "non-finite sample {x}");
            samples.push(x);
            acc.push(x);
        }
        if samples.len() >= precision.min_reps {
            let half = t_critical_95(acc.count() - 1) * acc.std_dev() / (acc.count() as f64).sqrt();
            let mean = acc.mean();
            if mean == 0.0 || half / mean.abs() <= precision.rel_precision {
                return Ok(stats_from(&samples, true));
            }
        }
    }
    // Budget exhausted without convergence: MAD-filter rescue.
    let filtered = mad_filter(&samples, 3.0);
    if filtered.len() >= precision.min_reps && filtered.len() < samples.len() {
        let rescued = stats_from(&filtered, false);
        let rel = if rescued.mean == 0.0 {
            0.0
        } else {
            rescued.ci_half_width / rescued.mean.abs()
        };
        if rel <= precision.rel_precision {
            return Ok(SampleStats {
                converged: true,
                ..rescued
            });
        }
    }
    let raw = stats_from(&samples, false);
    let achieved = if raw.mean == 0.0 {
        0.0
    } else {
        raw.ci_half_width / raw.mean.abs()
    };
    Err(SimError::PrecisionNotReached {
        target: precision.rel_precision,
        achieved,
        samples: raw.n,
    })
}

/// Builds [`SampleStats`] from a complete sample.
fn stats_from(samples: &[f64], converged: bool) -> SampleStats {
    let mut acc = Welford::new();
    for &x in samples {
        acc.push(x);
    }
    let mean = acc.mean();
    let std_dev = acc.std_dev();
    let n = acc.count();
    let ci_half_width = if n >= 2 {
        t_critical_95(n - 1) * std_dev / (n as f64).sqrt()
    } else {
        f64::INFINITY
    };
    let (skewness, excess_kurtosis) = higher_moments(samples, mean, std_dev);
    SampleStats {
        mean,
        std_dev,
        n,
        ci_half_width,
        converged,
        skewness,
        excess_kurtosis,
    }
}

/// Sample median (average of the central pair for even lengths).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// Median absolute deviation from the median (unscaled).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Mean of the sample after dropping the `trim_frac` fraction of
/// smallest and largest observations (each side).
///
/// # Panics
///
/// Panics on an empty slice, or if `trim_frac` is not in `[0, 0.5)`.
pub fn trimmed_mean(xs: &[f64], trim_frac: f64) -> f64 {
    assert!(!xs.is_empty(), "trimmed mean of an empty sample");
    assert!(
        (0.0..0.5).contains(&trim_frac),
        "trim fraction must be in [0, 0.5), got {trim_frac}"
    );
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let cut = (sorted.len() as f64 * trim_frac).floor() as usize;
    let kept = &sorted[cut..sorted.len() - cut];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Keeps the observations within `k` MADs of the sample median.
///
/// With a zero MAD (at least half the sample identical) only exact
/// ties with the median survive — which is the right call for a
/// measurement stream polluted by a few straggler spikes.
pub fn mad_filter(xs: &[f64], k: f64) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = median(xs);
    let spread = mad(xs);
    xs.iter()
        .copied()
        .filter(|x| (x - m).abs() <= k * spread)
        .collect()
}

fn higher_moments(samples: &[f64], mean: f64, std_dev: f64) -> (f64, f64) {
    let n = samples.len() as f64;
    if samples.len() < 3 || std_dev == 0.0 {
        return (0.0, 0.0);
    }
    let m3: f64 = samples
        .iter()
        .map(|x| ((x - mean) / std_dev).powi(3))
        .sum::<f64>()
        / n;
    let m4: f64 = samples
        .iter()
        .map(|x| ((x - mean) / std_dev).powi(4))
        .sum::<f64>()
        / n;
    (m3, m4 - 3.0)
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(SampleStats {
    mean,
    std_dev,
    n,
    ci_half_width,
    converged,
    skewness,
    excess_kurtosis
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert_eq!(t_critical_95(1000), 1.96);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn constant_samples_converge_at_min_reps() {
        let p = Precision::paper();
        let stats = sample_adaptive(&p, |_| vec![3.5]);
        assert_eq!(stats.n, p.min_reps);
        assert!(stats.converged);
        assert_eq!(stats.mean, 3.5);
        assert_eq!(stats.ci_half_width, 0.0);
    }

    #[test]
    fn noisy_samples_run_until_precision() {
        // Deterministic pseudo-noise around 100 with ~5% spread.
        let mut k = 0u64;
        let stats = sample_adaptive(&Precision::paper(), move |_| {
            k += 1;
            let wobble = ((k * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            vec![100.0 * (1.0 + 0.05 * wobble)]
        });
        assert!(stats.converged, "{stats:?}");
        assert!((stats.mean - 100.0).abs() < 2.0);
        assert!(stats.ci_half_width / stats.mean <= 0.025);
    }

    #[test]
    fn hits_max_reps_without_convergence() {
        // Alternating extreme values never tighten the CI to 2.5%.
        let mut flip = false;
        let p = Precision {
            rel_precision: 0.025,
            min_reps: 4,
            max_reps: 12,
        };
        let stats = sample_adaptive(&p, move |_| {
            flip = !flip;
            vec![if flip { 1.0 } else { 100.0 }]
        });
        assert!(!stats.converged);
        assert_eq!(stats.n, 12);
    }

    #[test]
    fn batches_are_accumulated() {
        let stats = sample_adaptive(&Precision::paper(), |_| vec![2.0, 2.0, 2.0]);
        assert!(stats.n >= Precision::paper().min_reps);
        assert_eq!(stats.mean, 2.0);
    }

    #[test]
    fn zero_mean_short_circuits() {
        let stats = sample_adaptive(&Precision::paper(), |_| vec![0.0]);
        assert!(stats.converged);
        assert_eq!(stats.mean, 0.0);
    }

    #[test]
    fn moments_of_symmetric_sample_are_small() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 - 49.5) / 10.0).collect();
        let mean = 0.0;
        let sd = (xs.iter().map(|x| x * x).sum::<f64>() / 99.0).sqrt();
        let (skew, kurt) = higher_moments(&xs, mean, sd);
        assert!(skew.abs() < 1e-9);
        assert!(kurt < 0.0, "uniform-ish sample is platykurtic");
    }

    #[test]
    fn normality_flag() {
        let s = SampleStats {
            mean: 1.0,
            std_dev: 0.1,
            n: 10,
            ci_half_width: 0.01,
            converged: true,
            skewness: 0.2,
            excess_kurtosis: 0.5,
        };
        assert!(s.normality());
        let bad = SampleStats { skewness: 5.0, ..s };
        assert!(!bad.normality());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = sample_adaptive(&Precision::paper(), |_| Vec::new());
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 100.0]), 1.0);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let xs = [1.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1000.0];
        assert_eq!(trimmed_mean(&xs, 0.1), 10.0);
        // No trimming: plain mean.
        let plain = trimmed_mean(&xs, 0.0);
        assert!((plain - xs.iter().sum::<f64>() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn mad_filter_removes_spikes() {
        let xs = [10.0, 10.2, 9.8, 10.1, 9.9, 500.0];
        let kept = mad_filter(&xs, 3.0);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|&x| x < 11.0));
    }

    #[test]
    fn fallible_happy_path_matches_infallible() {
        let mk = || {
            let mut k = 0u64;
            move |_: usize| {
                k += 1;
                let wobble = ((k * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                vec![100.0 * (1.0 + 0.05 * wobble)]
            }
        };
        let p = Precision::paper();
        let infallible = sample_adaptive(&p, mk());
        let mut sup = mk();
        let fallible = sample_adaptive_fallible(&p, |b| Ok(sup(b))).expect("converges");
        assert_eq!(infallible, fallible);
    }

    #[test]
    fn fallible_propagates_supplier_error() {
        let p = Precision::quick();
        let err = sample_adaptive_fallible(&p, |b| {
            if b == 0 {
                Ok(vec![1.0])
            } else {
                Err(SimError::Timeout {
                    deadline: collsel_netsim::SimSpan::from_micros(10),
                    detail: "test".into(),
                })
            }
        })
        .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }));
    }

    #[test]
    fn fallible_rescues_with_mad_filter() {
        // Tight cluster around 10 with periodic huge spikes: the raw CI
        // never reaches 2.5%, the filtered one trivially does.
        let mut k = 0usize;
        let p = Precision {
            rel_precision: 0.025,
            min_reps: 5,
            max_reps: 20,
        };
        let stats = sample_adaptive_fallible(&p, |_| {
            k += 1;
            Ok(vec![if k % 4 == 0 { 500.0 } else { 10.0 }])
        })
        .expect("MAD rescue should save this");
        assert!(stats.converged);
        assert!((stats.mean - 10.0).abs() < 1e-9, "{stats:?}");
        assert!(stats.n < 20, "outliers were dropped");
    }

    #[test]
    fn fallible_reports_precision_not_reached() {
        // Alternating extremes: median-based filtering cannot rescue a
        // bimodal sample, so the typed error must carry the CI width.
        let mut flip = false;
        let p = Precision {
            rel_precision: 0.025,
            min_reps: 4,
            max_reps: 12,
        };
        let err = sample_adaptive_fallible(&p, |_| {
            flip = !flip;
            Ok(vec![if flip { 1.0 } else { 100.0 }])
        })
        .unwrap_err();
        match err {
            SimError::PrecisionNotReached {
                target,
                achieved,
                samples,
            } => {
                assert_eq!(target, 0.025);
                assert!(achieved > 0.025);
                assert_eq!(samples, 12);
            }
            other => panic!("expected PrecisionNotReached, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn median_of_empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    #[should_panic(expected = "relative precision")]
    fn invalid_precision_panics() {
        let p = Precision {
            rel_precision: 0.0,
            min_reps: 2,
            max_reps: 5,
        };
        let _ = sample_adaptive(&p, |_| vec![1.0]);
    }
}
