//! Process-wide memo for compiled measurement cells, with the cache
//! effectiveness counters campaign accounting surfaces.
//!
//! On the timing-DAG backend a measurement cell costs three phases:
//! record the program (a full threaded simulation), lower the schedule
//! to a [`TimingDag`], then evaluate repetitions. The first two are a
//! pure function of the cell identity — the program shape
//! ([`CellProgram`]), the repetitions per batch and the cluster's
//! eager threshold (the only cluster property that reaches the
//! compiled artifact; schedules themselves are cluster-independent).
//! Tuning campaigns and `DecisionServer` refits re-measure the same
//! grid cells across batches, retries and generations, so the DAG for
//! each cell is compiled once here and shared (`Arc`) afterwards.
//!
//! [`memo_counters`] snapshots the hit/miss counters of this cache
//! *and* of the shared payload store
//! ([`collsel_support::payload`]); `colltune` attaches the
//! campaign-phase delta to its coverage accounting JSON.

use collsel_coll::compile::GroupCall;
use collsel_coll::{Alg, BcastAlg};
use collsel_mpi::{RecordError, Schedule, TimingDag};
use collsel_netsim::ClusterModel;
use collsel_support::payload::payload_counters;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The identity of one measurement cell's recorded program — every
/// parameter that can change the operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CellProgram {
    /// [`crate::measure::bcast_time`]'s timed broadcast.
    Bcast {
        alg: BcastAlg,
        p: usize,
        m: usize,
        seg_size: usize,
    },
    /// [`collective_time`](crate::measure::collective_time)'s timed
    /// collective (the tag carries which collective).
    Collective {
        alg: Alg,
        p: usize,
        m: usize,
        seg_size: usize,
    },
    /// The Sect. 4.2 broadcast + linear-gather experiment.
    BcastGather {
        alg: BcastAlg,
        p: usize,
        m: usize,
        m_g: usize,
        seg_size: usize,
    },
    /// The Sect. 4.1 repeated linear-segment broadcast.
    LinearSegment {
        p: usize,
        seg_size: usize,
        calls: usize,
    },
    /// The Hockney round-trip between ranks 0 and 1.
    P2p { m: usize },
}

/// Full cache key: the program, the repetitions baked into the
/// recording, and the eager threshold the edges were classified
/// against.
type DagKey = (CellProgram, usize, usize);

/// Entry cap. Compiled DAGs hold the full flattened op stream
/// (`reps × P × ops`), so the cache is bounded by entry count rather
/// than evicted: a campaign grid wider than this keeps its first
/// `DAG_CACHE_CAP` cells cached and recompiles the rest (visible as
/// misses in [`memo_counters`]).
const DAG_CACHE_CAP: usize = 256;

static CACHE: OnceLock<Mutex<HashMap<DagKey, Arc<TimingDag>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Locks a memo map, propagating recorder panics: a poisoned cache
/// means a recording thread died mid-insert, and serving from it could
/// hand out a half-built artifact.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().expect("memo cache lock (a recorder panicked)")
}

/// A recorded cell after DAG lowering was attempted: either the
/// compiled artifact, or — when the schedule overflows the DAG's index
/// space ([`collsel_mpi::CompileError::TooLarge`]) — the schedule
/// itself so the caller can fall back to the events backend without
/// re-recording.
#[derive(Debug)]
pub(crate) enum DagCell {
    /// Lowering succeeded; evaluate with the DAG tier.
    Compiled(Arc<TimingDag>),
    /// The schedule is too large to compile; replay it with
    /// [`collsel_mpi::simulate_scheduled`] instead.
    TooLarge(Schedule),
}

/// Returns the compiled timing DAG for a measurement cell, recording
/// and lowering it on a miss (`None` if recording fails — impossible
/// for the wildcard-free measurement programs, but the contract is
/// kept open like the backend dispatch it serves). A schedule too
/// large for the DAG's index space comes back as
/// [`DagCell::TooLarge`]; such cells are never cached (they would dwarf
/// the cache, and the events fallback re-records per call anyway).
///
/// `rec_cluster` must be the fault-free recording topology; only its
/// eager threshold reaches the compiled artifact, so any cluster with
/// the same threshold shares the entry.
pub(crate) fn compiled_dag(
    rec_cluster: &ClusterModel,
    program: CellProgram,
    reps: usize,
    compile: impl FnOnce(&ClusterModel, usize) -> Result<Schedule, RecordError>,
) -> Option<DagCell> {
    let key = (program, reps, rec_cluster.eager_threshold());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(dag) = locked(cache).get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Some(DagCell::Compiled(Arc::clone(dag)));
    }
    // Record and compile outside the lock — recording runs a full
    // threaded simulation, far too slow to serialise globally. Two
    // threads racing on one cell both compile the same (deterministic)
    // DAG; the loser's insert is a no-op overwrite with an equal value.
    MISSES.fetch_add(1, Ordering::Relaxed);
    let sched = compile(rec_cluster, reps).ok()?;
    let dag = match TimingDag::compile(rec_cluster, &sched) {
        Ok(dag) => Arc::new(dag),
        Err(collsel_mpi::CompileError::TooLarge { .. }) => {
            return Some(DagCell::TooLarge(sched));
        }
    };
    let mut cache = locked(cache);
    if cache.len() < DAG_CACHE_CAP || cache.contains_key(&key) {
        cache.insert(key, Arc::clone(&dag));
    }
    Some(DagCell::Compiled(dag))
}

/// The identity of one replay step's recorded program: the world size
/// plus every group call (algorithm, exact member ranks, message size,
/// segment size) in issue order. Two trace steps with equal cells
/// replay the same schedule, whatever their position in the trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StepCell {
    /// Global communicator size the step was recorded at.
    pub world: usize,
    /// Per call: `(alg, group ranks, message size, segment size)`.
    pub calls: Vec<(Alg, Vec<usize>, usize, usize)>,
}

/// A replay step after DAG lowering was attempted — the public twin of
/// the measurement tier's cell artifact (see [`compiled_step_dag`]).
#[derive(Debug, Clone)]
pub enum StepDag {
    /// Lowering succeeded; evaluate with [`collsel_mpi::DagEvaluator`].
    Compiled(Arc<TimingDag>),
    /// Schedule too large for the DAG index space; replay with
    /// [`collsel_mpi::simulate_scheduled`].
    TooLarge(Arc<Schedule>),
}

type StepKey = (StepCell, usize);

static STEP_CACHE: OnceLock<Mutex<HashMap<StepKey, StepDag>>> = OnceLock::new();

/// Builds the [`StepCell`] key for a resolved list of group calls.
pub fn step_cell(world: usize, calls: &[GroupCall]) -> StepCell {
    StepCell {
        world,
        calls: calls
            .iter()
            .map(|c| (c.alg, c.ranks.clone(), c.m, c.seg_size))
            .collect(),
    }
}

/// Returns the compiled timing DAG (or, for schedules beyond the DAG
/// index space, the recorded schedule) for one replay step, recording
/// and lowering on a miss. Shares the measurement-cell cache's
/// hit/miss counters ([`memo_counters`]) and entry cap, but lives in
/// its own map: step shapes are keyed by their full group/call
/// geometry, not a [`CellProgram`].
///
/// `rec_cluster` must be the fault-free recording topology; only its
/// eager threshold reaches the compiled artifact. Returns `None` if
/// recording fails.
pub fn compiled_step_dag(
    rec_cluster: &ClusterModel,
    cell: StepCell,
    compile: impl FnOnce(&ClusterModel) -> Result<Schedule, RecordError>,
) -> Option<StepDag> {
    let key = (cell, rec_cluster.eager_threshold());
    let cache = STEP_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(dag) = locked(cache).get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Some(dag.clone());
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let sched = compile(rec_cluster).ok()?;
    let dag = match TimingDag::compile(rec_cluster, &sched) {
        Ok(dag) => StepDag::Compiled(Arc::new(dag)),
        Err(collsel_mpi::CompileError::TooLarge { .. }) => StepDag::TooLarge(Arc::new(sched)),
    };
    let mut cache = locked(cache);
    if cache.len() < DAG_CACHE_CAP || cache.contains_key(&key) {
        cache.insert(key, dag.clone());
    }
    Some(dag)
}

/// Monotonic process-wide cache counters: the compiled-DAG memo and
/// the shared payload store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoCounters {
    /// Payload-store requests served from cache.
    pub payload_hits: u64,
    /// Payload-store requests that allocated.
    pub payload_misses: u64,
    /// Measurement cells whose compiled DAG was reused.
    pub dag_hits: u64,
    /// Measurement cells that recorded and compiled.
    pub dag_misses: u64,
}

impl MemoCounters {
    /// Counter-wise difference since an earlier snapshot (for
    /// per-phase accounting of the global monotonic counters).
    #[must_use]
    pub fn since(self, earlier: MemoCounters) -> MemoCounters {
        MemoCounters {
            payload_hits: self.payload_hits - earlier.payload_hits,
            payload_misses: self.payload_misses - earlier.payload_misses,
            dag_hits: self.dag_hits - earlier.dag_hits,
            dag_misses: self.dag_misses - earlier.dag_misses,
        }
    }
}

/// Snapshot of all memo counters since process start.
pub fn memo_counters() -> MemoCounters {
    let payload = payload_counters();
    MemoCounters {
        payload_hits: payload.hits,
        payload_misses: payload.misses,
        dag_hits: HITS.load(Ordering::Relaxed),
        dag_misses: MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_coll::compile::compile_timed_collective;

    #[test]
    fn cell_dag_is_compiled_once_and_shared() {
        let cluster = ClusterModel::gros();
        let alg = Alg::Scatter(collsel_coll::ScatterAlg::Binomial);
        let program = CellProgram::Collective {
            alg,
            p: 4,
            m: 12_345,
            seg_size: 12_345,
        };
        let compile_count = std::cell::Cell::new(0u32);
        let get = || match compiled_dag(&cluster, program, 2, |rec, reps| {
            compile_count.set(compile_count.get() + 1);
            compile_timed_collective(rec, alg, 4, 0, 12_345, 12_345, reps)
        })
        .expect("scatter records cleanly")
        {
            DagCell::Compiled(dag) => dag,
            DagCell::TooLarge(_) => panic!("tiny cell cannot overflow the DAG"),
        };
        let a = get();
        let b = get();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        assert_eq!(compile_count.get(), 1, "recording must run exactly once");
        let c = memo_counters();
        assert!(c.dag_hits >= 1 && c.dag_misses >= 1);
    }

    #[test]
    fn step_dag_is_compiled_once_and_shared() {
        let cluster = ClusterModel::gros();
        let calls = vec![GroupCall {
            alg: Alg::Bcast(BcastAlg::Binomial),
            ranks: vec![0, 2, 4, 5],
            m: 8_192,
            seg_size: 8_192,
        }];
        let compile_count = std::cell::Cell::new(0u32);
        let get = || match compiled_step_dag(&cluster, step_cell(6, &calls), |rec| {
            compile_count.set(compile_count.get() + 1);
            collsel_coll::compile::compile_step(rec, 6, &calls)
        }) {
            Some(StepDag::Compiled(dag)) => dag,
            other => panic!("tiny step must record and compile, got {other:?}"),
        };
        let a = get();
        let b = get();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        assert_eq!(compile_count.get(), 1, "recording must run exactly once");
    }
}
