//! One-stop tuning workflow: from a cluster description to a runtime
//! decision function.
//!
//! [`Tuner`] packages the paper's whole pipeline:
//!
//! 1. estimate γ(P) from non-blocking linear broadcast experiments
//!    (Sect. 4.1);
//! 2. estimate a per-algorithm `(α, β)` pair from broadcast + gather
//!    experiments solved by Huber regression (Sect. 4.2);
//! 3. assemble the [`ModelBasedSelector`] that picks the
//!    predicted-fastest algorithm at runtime (Sect. 5.3).
//!
//! Tuning campaigns parallelise: the independent measurement cells of
//! both estimation stages (γ widths; the algorithm × message-size
//! experiment grid) fan out across a
//! [`collsel_support::pool::Pool`] sized by the `COLLSEL_THREADS`
//! environment variable or the CLI's `-j` (default: the host's
//! available parallelism). Every cell derives its seed from its grid
//! position, so the tuned model is **bit-identical at any thread
//! count** — parallelism changes wall-clock, never results.
//!
//! Within each cell, measurements run by default on the timing-DAG
//! backend ([`collsel_mpi::Backend::Dag`]): the measurement program is
//! recorded and lowered to a static timing DAG once per cell (memoised
//! process-wide), then repetitions are batch-evaluated payload-free
//! with zero OS threads per run, so a campaign's threads are spent
//! *across* cells, not inside them. Set the `backend` field of
//! [`GammaConfig`] / [`AlphaBetaConfig`] (or `colltune tune --backend
//! events|threads`) to use the event-driven replay or the threaded
//! oracle instead; the tuned model is bit-identical on all three.

use collsel_coll::{Alg, BcastAlg, Collective};
use collsel_estim::{
    estimate_all_alpha_beta, estimate_collective_family, estimate_gamma, measure_family_cell,
    plan_crossover_fill, try_estimate_all_alpha_beta, try_estimate_collective_family,
    try_estimate_gamma, AlphaBetaConfig, AlphaBetaEstimate, BreadthConfig, GammaConfig,
    GammaEstimate, Precision, RetryPolicy,
};
use collsel_model::{FitValidity, Hockney};
use collsel_mpi::{Backend, SimError};
use collsel_netsim::ClusterModel;
use collsel_select::{
    CollDecisionTable, CollSelection, CollectiveModelSelector, CollectiveSelector,
    CompiledCollectiveSelector, CompiledSelector, FallbackReason, GracefulCollectiveSelector,
    GracefulSelector, ModelBasedSelector,
};
use collsel_support::pool::Pool;
use collsel_support::FromJson;
use std::collections::BTreeMap;

/// Configuration of a full tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerConfig {
    /// γ estimation settings (Sect. 4.1).
    pub gamma: GammaConfig,
    /// α/β estimation settings (Sect. 4.2).
    pub alpha_beta: AlphaBetaConfig,
    /// Per-collective estimation sweep settings (the Sect. 4.2
    /// methodology widened beyond broadcast; used by
    /// [`Tuner::tune_collectives`]).
    pub breadth: BreadthConfig,
    /// Segment size the tuned selector will use for segmented
    /// algorithms (the paper fixes 8 KB).
    pub seg_size: usize,
    /// Seed for the (simulated) measurement noise.
    pub seed: u64,
}

impl TunerConfig {
    /// The paper's configuration for a cluster: experiments at
    /// `experiment_p` processes (the paper uses ~half the cluster on
    /// Grisou, the whole cluster on Gros).
    pub fn paper(experiment_p: usize) -> Self {
        TunerConfig {
            gamma: GammaConfig::paper(),
            alpha_beta: AlphaBetaConfig::paper(experiment_p),
            breadth: BreadthConfig::paper(experiment_p),
            seg_size: 8 * 1024,
            seed: 0xC0115E1,
        }
    }

    /// A fast, loose configuration for tests and demos.
    pub fn quick(experiment_p: usize) -> Self {
        TunerConfig {
            gamma: GammaConfig::quick(),
            alpha_beta: AlphaBetaConfig::quick(experiment_p),
            breadth: BreadthConfig::quick(experiment_p),
            seg_size: 8 * 1024,
            seed: 0xC0115E1,
        }
    }
}

/// The output of a tuning run: everything needed to select algorithms
/// at runtime, plus the raw estimates for inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedModel {
    /// Name of the cluster the model was tuned for.
    pub cluster_name: String,
    /// The γ estimation result (paper Table 1).
    pub gamma: GammaEstimate,
    /// Per-algorithm estimation results (paper Table 2).
    pub params: BTreeMap<BcastAlg, AlphaBetaEstimate>,
    /// Per-collective estimation results beyond broadcast, keyed by
    /// collective then by qualified algorithm (empty for models tuned
    /// by the broadcast-only [`Tuner::tune`]).
    pub collectives: BTreeMap<Collective, BTreeMap<Alg, AlphaBetaEstimate>>,
    /// Segment size of the tuned selector.
    pub seg_size: usize,
}

impl TunedModel {
    /// The per-algorithm Hockney pairs (paper Table 2's content).
    pub fn hockney_table(&self) -> BTreeMap<BcastAlg, Hockney> {
        self.params
            .iter()
            .map(|(&alg, est)| (alg, est.hockney))
            .collect()
    }

    /// Builds the runtime decision function.
    pub fn selector(&self) -> ModelBasedSelector {
        ModelBasedSelector::new(
            self.gamma.table.clone(),
            self.hockney_table(),
            self.seg_size,
        )
    }

    /// Compiles the runtime decision function into a flat
    /// [`CompiledSelector`] over the given grids: the serving-time
    /// shape of the model (two binary searches per query, no
    /// allocation) for call sites that query at MPI_Bcast rates.
    /// Off-grid queries snap exactly like
    /// [`collsel_select::rules::DecisionTable::lookup`].
    ///
    /// # Panics
    ///
    /// Panics if either grid is empty or unsorted.
    pub fn compiled_selector(&self, comm_sizes: &[usize], msg_sizes: &[usize]) -> CompiledSelector {
        CompiledSelector::compile(&self.selector(), comm_sizes, msg_sizes)
    }

    /// [`compiled_selector`](Self::compiled_selector) over the default
    /// deployment grids (the ones `colltune export` uses): communicator
    /// sizes 2..128 in powers of two, fourteen log-spaced message sizes
    /// from 1 KB to 8 MB.
    pub fn compiled_selector_default(&self) -> CompiledSelector {
        let msg_sizes = collsel_estim::log_spaced_sizes(1024, 8 * 1024 * 1024, 14);
        self.compiled_selector(&[2, 4, 8, 16, 32, 64, 128], &msg_sizes)
    }

    /// Judges every stored fit (computed from the stored data, never
    /// persisted — older model files gain verdicts for free).
    pub fn validity(&self) -> BTreeMap<BcastAlg, FitValidity> {
        self.params
            .iter()
            .map(|(&alg, est)| (alg, est.validity()))
            .collect()
    }

    /// Builds the graceful runtime decision function: algorithms whose
    /// fits fail validation are excluded from the model ranking, and
    /// queries no valid model can decide fall back to the Open MPI
    /// fixed rules with the reason reported per decision.
    pub fn degraded_selector(&self) -> GracefulSelector {
        GracefulSelector::new(
            self.gamma.table.clone(),
            self.hockney_table(),
            self.validity(),
            self.seg_size,
        )
    }

    /// The collectives carrying per-algorithm fits, in
    /// [`Collective::ALL`] order.
    pub fn tuned_collectives(&self) -> Vec<Collective> {
        Collective::ALL
            .into_iter()
            .filter(|c| self.collectives.contains_key(c))
            .collect()
    }

    /// The per-algorithm Hockney pairs across every tuned collective,
    /// keyed by qualified algorithm.
    pub fn multi_hockney_table(&self) -> BTreeMap<Alg, Hockney> {
        self.collectives
            .values()
            .flatten()
            .map(|(&alg, est)| (alg, est.hockney))
            .collect()
    }

    /// Validity verdicts for every tuned collective's fits.
    pub fn multi_validity(&self) -> BTreeMap<Alg, FitValidity> {
        self.collectives
            .values()
            .flatten()
            .map(|(&alg, est)| (alg, est.validity()))
            .collect()
    }

    /// Builds the multi-collective runtime decision function: argmin
    /// over the tuned fits per collective, falling back to the fixed
    /// rules for collectives without usable fits.
    ///
    /// The broadcast arm evaluates at the tuned broadcast segment (so
    /// it agrees with [`selector`](Self::selector) by construction);
    /// every other collective evaluates at the breadth campaigns'
    /// coarser [`BREADTH_SEG_SIZE`](collsel_estim::BREADTH_SEG_SIZE) —
    /// the segment its fits were estimated with. Serving them at the
    /// broadcast segment instead would charge the pipelined algorithms
    /// eight times the per-segment overheads their fits absorbed,
    /// mis-ranking them at large payloads.
    pub fn multi_selector(&self) -> CollectiveModelSelector {
        let mut selector = CollectiveModelSelector::new(
            self.gamma.table.clone(),
            self.multi_hockney_table(),
            self.seg_size,
        );
        for c in Collective::ALL {
            if c != Collective::Bcast {
                selector = selector.with_seg_size(c, collsel_estim::BREADTH_SEG_SIZE);
            }
        }
        selector
    }

    /// The graceful multi-collective decision function: only fits that
    /// pass validation join the rankings, and per decision the fallback
    /// reason is reported. Segment sizes follow
    /// [`multi_selector`](Self::multi_selector).
    pub fn degraded_multi_selector(&self) -> GracefulCollectiveSelector {
        let mut selector = GracefulCollectiveSelector::new(
            self.gamma.table.clone(),
            self.multi_hockney_table(),
            self.multi_validity(),
            self.seg_size,
        );
        for c in Collective::ALL {
            if c != Collective::Bcast {
                selector = selector.with_seg_size(c, collsel_estim::BREADTH_SEG_SIZE);
            }
        }
        selector
    }

    /// Materialises the decision table of one tuned collective over the
    /// given grids.
    ///
    /// # Panics
    ///
    /// Panics if either grid is empty or unsorted.
    pub fn decision_table(
        &self,
        collective: Collective,
        comm_sizes: &[usize],
        msg_sizes: &[usize],
    ) -> CollDecisionTable {
        CollDecisionTable::generate(&self.multi_selector(), collective, comm_sizes, msg_sizes)
    }

    /// Compiles every tuned collective's decision table into one
    /// [`CompiledCollectiveSelector`] over the given grids.
    ///
    /// # Panics
    ///
    /// Panics if no collective was tuned ([`Tuner::tune_collectives`]
    /// fills the fits) or either grid is empty or unsorted.
    pub fn compiled_multi_selector(
        &self,
        comm_sizes: &[usize],
        msg_sizes: &[usize],
    ) -> CompiledCollectiveSelector {
        let tuned = self.tuned_collectives();
        assert!(
            !tuned.is_empty(),
            "no collective fits: tune with tune_collectives first"
        );
        CompiledCollectiveSelector::compile(&self.multi_selector(), &tuned, comm_sizes, msg_sizes)
    }

    /// [`compiled_multi_selector`](Self::compiled_multi_selector) over
    /// the default deployment grids (same grids as
    /// [`compiled_selector_default`](Self::compiled_selector_default)).
    pub fn compiled_multi_selector_default(&self) -> CompiledCollectiveSelector {
        let msg_sizes = collsel_estim::log_spaced_sizes(1024, 8 * 1024 * 1024, 14);
        self.compiled_multi_selector(&[2, 4, 8, 16, 32, 64, 128], &msg_sizes)
    }
}

/// The output of a fault-tolerant tuning run: the model assembled from
/// whatever fits survived, plus the per-algorithm failures.
#[derive(Debug)]
pub struct TuneReport {
    /// The tuned model over the algorithms that fitted.
    pub model: TunedModel,
    /// Broadcast algorithms whose estimation failed, with the typed
    /// reason.
    pub skipped: BTreeMap<BcastAlg, SimError>,
    /// Algorithms of the breadth campaigns whose estimation failed
    /// (empty for broadcast-only runs).
    pub skipped_multi: BTreeMap<Alg, SimError>,
}

impl TuneReport {
    /// Whether every algorithm fitted (nothing was skipped).
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty() && self.skipped_multi.is_empty()
    }

    /// Like [`TunedModel::degraded_multi_selector`], but with the
    /// report's skipped-algorithm errors attached as fallback causes:
    /// a decision for a collective whose fits are all missing carries
    /// `EstimationTimeout` / `PrecisionNotReached` instead of the
    /// generic `NoUsableModel`.
    pub fn degraded_multi_selector(&self) -> GracefulCollectiveSelector {
        let failures = self
            .skipped_multi
            .iter()
            .map(|(&alg, e)| (alg, FallbackReason::from_sim_error(e)))
            .collect();
        self.model.degraded_multi_selector().with_failures(failures)
    }
}

/// Runs the paper's estimation pipeline on a cluster.
#[derive(Debug, Clone)]
pub struct Tuner {
    cluster: ClusterModel,
    config: TunerConfig,
}

impl Tuner {
    /// Creates a tuner.
    ///
    /// # Panics
    ///
    /// Panics if the experiment process count exceeds the cluster's
    /// slots.
    pub fn new(cluster: ClusterModel, config: TunerConfig) -> Self {
        assert!(
            config.alpha_beta.p <= cluster.max_ranks(),
            "experiment process count {} exceeds cluster {} slots {}",
            config.alpha_beta.p,
            cluster.name(),
            cluster.max_ranks()
        );
        Tuner { cluster, config }
    }

    /// The cluster under tuning.
    pub fn cluster(&self) -> &ClusterModel {
        &self.cluster
    }

    /// The configuration in use.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Runs the full pipeline: γ, then per-algorithm (α, β).
    ///
    /// This performs simulated communication experiments and can take
    /// seconds for paper-scale configurations. Within each stage the
    /// independent cells run across the current thread pool (see the
    /// module docs); the result does not depend on the thread count.
    pub fn tune(&self) -> TunedModel {
        let gamma = estimate_gamma(&self.cluster, &self.config.gamma, self.config.seed);
        let params = estimate_all_alpha_beta(
            &self.cluster,
            &self.config.alpha_beta,
            &gamma.table,
            self.config.seed.wrapping_add(1),
        );
        TunedModel {
            cluster_name: self.cluster.name().to_owned(),
            gamma,
            params,
            collectives: BTreeMap::new(),
            seg_size: self.config.seg_size,
        }
    }

    /// Runs the full pipeline *plus* a breadth campaign per listed
    /// collective: after γ and the broadcast fits, each collective's
    /// algorithm family is fitted from its own timed sweeps
    /// ([`estimate_collective_family`]).
    ///
    /// Broadcast's per-collective entry reuses the Sect. 4.2
    /// gather-conditioned fits rather than re-measuring — the dedicated
    /// broadcast estimation is strictly better conditioned, and this
    /// keeps the mono and multi selectors consistent by construction.
    pub fn tune_collectives(&self, collectives: &[Collective]) -> TunedModel {
        let mut model = self.tune();
        for &c in collectives {
            let fits = if c == Collective::Bcast {
                model
                    .params
                    .iter()
                    .map(|(&b, est)| (Alg::Bcast(b), est.clone()))
                    .collect()
            } else {
                estimate_collective_family(
                    &self.cluster,
                    c,
                    &self.config.breadth,
                    &model.gamma.table,
                    self.breadth_seed(c),
                )
            };
            model.collectives.insert(c, fits);
        }
        model
    }

    /// [`tune_collectives`](Self::tune_collectives) over all seven
    /// collectives.
    pub fn tune_all(&self) -> TunedModel {
        self.tune_collectives(&Collective::ALL)
    }

    /// The seed of one collective's breadth campaign: decorrelated from
    /// the γ (seed) and broadcast (seed+1) stages and from the other
    /// collectives.
    fn breadth_seed(&self, c: Collective) -> u64 {
        self.config
            .seed
            .wrapping_add(2)
            .wrapping_add((c.index() as u64) << 40)
    }

    /// Fault-tolerant pipeline for clusters running under an injected
    /// [`collsel_netsim::FaultPlan`]: every measurement runs under
    /// `policy`'s virtual-time watchdog with retry-and-backoff.
    ///
    /// Failure is graded, not binary:
    ///
    /// * a γ estimation failure is **fatal** (`Err`) — every derived
    ///   model shares the γ table, so nothing useful can be built;
    /// * a per-algorithm (α, β) failure **skips that algorithm** — the
    ///   report records the typed reason and
    ///   [`TunedModel::degraded_selector`] falls back to the Open MPI
    ///   rules wherever the surviving models cannot decide.
    ///
    /// # Errors
    ///
    /// Returns the γ estimation's [`SimError`] (timeout, precision not
    /// reached, deadlock, rank panic) when the foundation cannot be
    /// measured.
    pub fn try_tune(&self, policy: &RetryPolicy) -> Result<TuneReport, SimError> {
        let gamma =
            try_estimate_gamma(&self.cluster, &self.config.gamma, self.config.seed, policy)?;
        let outcomes = try_estimate_all_alpha_beta(
            &self.cluster,
            &self.config.alpha_beta,
            &gamma.table,
            self.config.seed.wrapping_add(1),
            policy,
        );
        let mut params = BTreeMap::new();
        let mut skipped = BTreeMap::new();
        for (alg, outcome) in outcomes {
            match outcome {
                Ok(est) => {
                    params.insert(alg, est);
                }
                Err(e) => {
                    skipped.insert(alg, e);
                }
            }
        }
        Ok(TuneReport {
            model: TunedModel {
                cluster_name: self.cluster.name().to_owned(),
                gamma,
                params,
                collectives: BTreeMap::new(),
                seg_size: self.config.seg_size,
            },
            skipped,
            skipped_multi: BTreeMap::new(),
        })
    }

    /// Fault-tolerant twin of [`tune_collectives`]
    /// (Self::tune_collectives): the γ and broadcast stages follow
    /// [`try_tune`](Self::try_tune)'s grading, and each breadth
    /// algorithm that stalls is skipped individually — its collective
    /// keeps the fits that survived, and the graceful selector falls
    /// back to the fixed rules wherever a family lost every fit.
    ///
    /// # Errors
    ///
    /// Returns the γ estimation's [`SimError`] when the foundation
    /// cannot be measured.
    pub fn try_tune_collectives(
        &self,
        collectives: &[Collective],
        policy: &RetryPolicy,
    ) -> Result<TuneReport, SimError> {
        let mut report = self.try_tune(policy)?;
        for &c in collectives {
            let mut fits = BTreeMap::new();
            if c == Collective::Bcast {
                for (&b, est) in &report.model.params {
                    fits.insert(Alg::Bcast(b), est.clone());
                }
                // Broadcast algorithms skipped by the Sect. 4.2 stage
                // stay skipped here, under their qualified name.
                for (&b, e) in &report.skipped {
                    report.skipped_multi.insert(Alg::Bcast(b), e.clone());
                }
            } else {
                let outcomes = try_estimate_collective_family(
                    &self.cluster,
                    c,
                    &self.config.breadth,
                    &report.model.gamma.table,
                    self.breadth_seed(c),
                    policy,
                );
                for (alg, outcome) in outcomes {
                    match outcome {
                        Ok(est) => {
                            fits.insert(alg, est);
                        }
                        Err(e) => {
                            report.skipped_multi.insert(alg, e);
                        }
                    }
                }
            }
            report.model.collectives.insert(c, fits);
        }
        Ok(report)
    }
}

/// How a measurement campaign covers its (collective, P, m) grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStrategy {
    /// Measure every grid cell to full precision — the differential
    /// oracle the adaptive path is gated against.
    Exhaustive,
    /// Crossover bisection on m plus leader-settled repetitions.
    Adaptive {
        /// Anchor stride on the m grid: every `anchor_step`-th index is
        /// measured unconditionally, bounding how narrow a winner
        /// island can hide between anchors.
        anchor_step: usize,
        /// Stop sampling an algorithm as soon as its CI separates
        /// above the leader's
        /// ([`measure_family_cell`]'s early-stop rule).
        leader_early_stop: bool,
    },
}

/// A measured-winner campaign over a decision grid: for every
/// (collective, P, m) cell the algorithm family is *measured* (not
/// model-predicted) and the argmin becomes the decision-table entry.
///
/// This is the (algorithm × P × m) sweep the adaptive experiment
/// design makes affordable; [`Tuner::run_campaign`] executes it on
/// either strategy, and the two must produce byte-identical tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Collectives to build tables for.
    pub collectives: Vec<Collective>,
    /// Communicator-size grid (ascending; every entry must fit the
    /// cluster's slots, since cells are simulated at that size).
    pub comm_sizes: Vec<usize>,
    /// Message-size grid (ascending).
    pub msg_sizes: Vec<usize>,
    /// Adaptive-repetition precision of each cell.
    pub precision: Precision,
    /// Execution backend of every simulated cell.
    pub backend: Backend,
    /// Base seed; every cell derives its own seed from its grid
    /// position, so campaigns are bit-identical at any thread count.
    pub seed: u64,
    /// Grid-coverage strategy.
    pub strategy: CampaignStrategy,
    /// Cap on *measured* cells per (collective, P) row (adaptive
    /// strategy only; the m-grid endpoints are always measured). When
    /// the budget runs out, unresolved intervals fill from the nearest
    /// measured anchors and the report flags the exhaustion.
    pub budget: Option<usize>,
    /// Minimum relative winner-over-runner-up lead for a measured cell
    /// to anchor an interpolation (see
    /// [`collsel_estim::DECISIVE_MARGIN`], the default). Raising it
    /// densifies more of the near-tie regions; lowering it interpolates
    /// more aggressively.
    pub decisive_margin: f64,
}

impl CampaignPlan {
    /// An exhaustive plan over the given grids with the quick
    /// precision and the default backend.
    pub fn exhaustive(
        collectives: Vec<Collective>,
        comm_sizes: Vec<usize>,
        msg_sizes: Vec<usize>,
    ) -> Self {
        CampaignPlan {
            collectives,
            comm_sizes,
            msg_sizes,
            precision: Precision::quick(),
            backend: Backend::default(),
            seed: 0xC0115E1,
            strategy: CampaignStrategy::Exhaustive,
            budget: None,
            decisive_margin: collsel_estim::DECISIVE_MARGIN,
        }
    }

    /// An adaptive plan over the given grids: anchors every
    /// `anchor_step` indices, leader-settled repetitions on, otherwise
    /// the same defaults as [`exhaustive`](Self::exhaustive) — so the
    /// pair differs *only* in strategy.
    pub fn adaptive(
        collectives: Vec<Collective>,
        comm_sizes: Vec<usize>,
        msg_sizes: Vec<usize>,
        anchor_step: usize,
    ) -> Self {
        CampaignPlan {
            strategy: CampaignStrategy::Adaptive {
                anchor_step,
                leader_early_stop: true,
            },
            ..CampaignPlan::exhaustive(collectives, comm_sizes, msg_sizes)
        }
    }

    /// Total grid cells ((P, m) pairs summed over the collectives).
    pub fn grid_cells(&self) -> usize {
        self.collectives.len() * self.comm_sizes.len() * self.msg_sizes.len()
    }
}

/// Per-collective cost accounting of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveCampaignStats {
    /// The collective.
    pub collective: Collective,
    /// (P, m) grid cells of this collective's table.
    pub grid_cells: usize,
    /// Family cells actually simulated (the rest were interpolated).
    pub measured_cells: usize,
    /// Total adaptive batches simulated across the measured cells.
    pub simulated_batches: usize,
}

/// The outcome of [`Tuner::run_campaign`]: one measured-winner
/// decision table per collective, plus the cost accounting the
/// campaign bench and the CI gate assert over.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Decision tables in plan order, keyed by collective.
    pub tables: BTreeMap<Collective, CollDecisionTable>,
    /// Per-collective cost accounting, in plan order.
    pub per_collective: Vec<CollectiveCampaignStats>,
    /// Whether any (collective, P) row hit the measurement budget.
    pub budget_exhausted: bool,
}

impl CampaignReport {
    /// Total (P, m) grid cells across the collectives.
    pub fn grid_cells(&self) -> usize {
        self.per_collective.iter().map(|s| s.grid_cells).sum()
    }

    /// Total family cells actually simulated.
    pub fn measured_cells(&self) -> usize {
        self.per_collective.iter().map(|s| s.measured_cells).sum()
    }

    /// Total adaptive batches simulated.
    pub fn simulated_batches(&self) -> usize {
        self.per_collective
            .iter()
            .map(|s| s.simulated_batches)
            .sum()
    }

    /// Grid cells per measured cell — the headline coverage saving.
    pub fn cell_reduction(&self) -> f64 {
        self.grid_cells() as f64 / self.measured_cells().max(1) as f64
    }
}

/// Serves a measured winner grid to [`CollDecisionTable::generate`],
/// which only queries exactly on the grid.
#[derive(Debug)]
struct GridWinnerSelector<'a> {
    comm_sizes: &'a [usize],
    msg_sizes: &'a [usize],
    /// `winners[pi][mi]`, resolved over the full grid.
    winners: &'a [Vec<Alg>],
    seg_size: usize,
}

impl CollectiveSelector for GridWinnerSelector<'_> {
    fn select_for(&self, _collective: Collective, p: usize, m: usize) -> CollSelection {
        let pi = self
            .comm_sizes
            .iter()
            .position(|&x| x == p)
            .expect("table generation stays on the campaign grid");
        let mi = self
            .msg_sizes
            .iter()
            .position(|&x| x == m)
            .expect("table generation stays on the campaign grid");
        CollSelection::segmented(self.winners[pi][mi], self.seg_size)
    }

    fn name(&self) -> &str {
        "measured-grid"
    }
}

/// One (collective, P) row's resolved winner column plus its costs.
struct CampaignRow {
    winners: Vec<usize>,
    measured: usize,
    batches: usize,
    budget_exhausted: bool,
}

impl Tuner {
    /// Runs a measured-winner campaign: simulates (a subset of) the
    /// plan's grid cells, resolves every cell's winning algorithm and
    /// materialises one [`CollDecisionTable`] per collective through
    /// the same merge contract as the model-predicted tables.
    ///
    /// The (collective, P) rows fan out across the current
    /// [`Pool`]; within a row the bisection is sequential (each probe
    /// decides the next). Every cell's seed derives from its grid
    /// position — campaigns are **bit-identical at any thread count
    /// and on either backend**, and an adaptive plan must produce the
    /// byte-identical tables of its exhaustive twin
    /// (`tests/adaptive_campaign.rs`, the campaign bench and the CI
    /// gate all assert this).
    ///
    /// `warm` seeds the anchors from an already-tuned neighbor: its
    /// model predicts the winner column, and only the predicted
    /// crossover neighborhoods — plus wherever a fresh measurement
    /// disagrees with the prediction — are measured. Ignored by the
    /// exhaustive strategy.
    ///
    /// Segment sizes follow the serving convention of
    /// [`TunedModel::multi_selector`]: broadcast cells run at the
    /// tuned segment, every other collective at
    /// [`BREADTH_SEG_SIZE`](collsel_estim::BREADTH_SEG_SIZE).
    ///
    /// # Panics
    ///
    /// Panics if a grid is empty or not strictly ascending, or a
    /// communicator size exceeds the cluster's slots.
    pub fn run_campaign(&self, plan: &CampaignPlan, warm: Option<&TunedModel>) -> CampaignReport {
        assert!(!plan.collectives.is_empty(), "need at least one collective");
        assert!(
            plan.comm_sizes.windows(2).all(|w| w[0] < w[1]) && !plan.comm_sizes.is_empty(),
            "communicator sizes must be non-empty ascending"
        );
        assert!(
            plan.msg_sizes.windows(2).all(|w| w[0] < w[1]) && !plan.msg_sizes.is_empty(),
            "message sizes must be non-empty ascending"
        );
        for &p in &plan.comm_sizes {
            assert!(
                p <= self.cluster.max_ranks(),
                "campaign communicator size {p} exceeds cluster {} slots {}",
                self.cluster.name(),
                self.cluster.max_ranks()
            );
        }
        let warm_selector = warm.map(|m| m.multi_selector());
        let jobs: Vec<_> = plan
            .collectives
            .iter()
            .enumerate()
            .flat_map(|(ci, &c)| {
                plan.comm_sizes
                    .iter()
                    .enumerate()
                    .map(move |(pi, &p)| (ci, c, pi, p))
            })
            .map(|(_ci, c, pi, p)| {
                let warm_selector = &warm_selector;
                move || self.campaign_row(plan, c, p, pi, warm_selector.as_ref())
            })
            .collect();
        let rows = Pool::current().run(jobs);
        let comm_count = plan.comm_sizes.len();
        let mut tables = BTreeMap::new();
        let mut per_collective = Vec::with_capacity(plan.collectives.len());
        let mut budget_exhausted = false;
        for (ci, &c) in plan.collectives.iter().enumerate() {
            let rows = &rows[ci * comm_count..(ci + 1) * comm_count];
            let algs = c.algorithms();
            let winners: Vec<Vec<Alg>> = rows
                .iter()
                .map(|r| r.winners.iter().map(|&w| algs[w]).collect())
                .collect();
            let selector = GridWinnerSelector {
                comm_sizes: &plan.comm_sizes,
                msg_sizes: &plan.msg_sizes,
                winners: &winners,
                seg_size: self.campaign_seg(c),
            };
            tables.insert(
                c,
                CollDecisionTable::generate(&selector, c, &plan.comm_sizes, &plan.msg_sizes),
            );
            per_collective.push(CollectiveCampaignStats {
                collective: c,
                grid_cells: comm_count * plan.msg_sizes.len(),
                measured_cells: rows.iter().map(|r| r.measured).sum(),
                simulated_batches: rows.iter().map(|r| r.batches).sum(),
            });
            budget_exhausted |= rows.iter().any(|r| r.budget_exhausted);
        }
        CampaignReport {
            tables,
            per_collective,
            budget_exhausted,
        }
    }

    /// The segment size campaign cells run at — the serving convention
    /// of [`TunedModel::multi_selector`].
    fn campaign_seg(&self, c: Collective) -> usize {
        if c == Collective::Bcast {
            self.config.seg_size
        } else {
            collsel_estim::BREADTH_SEG_SIZE
        }
    }

    /// Resolves one (collective, P) row's winner column under the
    /// plan's strategy. The cell seed packs (collective, P-index,
    /// m-index) into disjoint bit ranges above the per-algorithm
    /// (`<< 32`) and per-batch (low bits) offsets used inside
    /// [`measure_family_cell`].
    fn campaign_row(
        &self,
        plan: &CampaignPlan,
        c: Collective,
        p: usize,
        pi: usize,
        warm: Option<&CollectiveModelSelector>,
    ) -> CampaignRow {
        let seg = self.campaign_seg(c);
        let row_seed = plan
            .seed
            .wrapping_add((c.index() as u64) << 56)
            .wrapping_add((pi as u64) << 48);
        let n = plan.msg_sizes.len();
        let measure = |mi: usize, early: bool, batches: &mut usize| -> (usize, bool) {
            let cell = measure_family_cell(
                &self.cluster,
                c,
                p,
                plan.msg_sizes[mi],
                seg,
                &plan.precision,
                row_seed.wrapping_add((mi as u64) << 16),
                plan.backend,
                early,
            );
            *batches += cell.batches;
            (cell.winner, cell.runner_up_margin() >= plan.decisive_margin)
        };
        match plan.strategy {
            CampaignStrategy::Exhaustive => {
                let mut batches = 0;
                let winners = (0..n)
                    .map(|mi| measure(mi, false, &mut batches).0)
                    .collect();
                CampaignRow {
                    winners,
                    measured: n,
                    batches,
                    budget_exhausted: false,
                }
            }
            CampaignStrategy::Adaptive {
                anchor_step,
                leader_early_stop,
            } => {
                // A hint is the model's predicted winner plus whether
                // the model predicts that win decisively — by
                // HINT_MARGIN_FACTOR times the measured margin, since
                // predictions carry fitting error. Cells the model
                // itself calls close are measured, never trusted.
                let hint_margin = collsel_estim::HINT_MARGIN_FACTOR * plan.decisive_margin;
                let hints: Option<Vec<(usize, bool)>> = warm.map(|sel| {
                    let algs = c.algorithms();
                    plan.msg_sizes
                        .iter()
                        .map(|&m| {
                            let pick = sel.select_for(c, p, m).alg;
                            let wi = algs.iter().position(|&a| a == pick).unwrap_or(0);
                            let decisive = match sel.ranking(c, p, m).as_slice() {
                                [(_, best), (_, next), ..] if *best > 0.0 => {
                                    (next - best) / best >= hint_margin
                                }
                                _ => true,
                            };
                            (wi, decisive)
                        })
                        .collect()
                });
                let mut batches = 0;
                let crossover =
                    plan_crossover_fill(n, anchor_step, hints.as_deref(), plan.budget, |mi| {
                        measure(mi, leader_early_stop, &mut batches)
                    });
                CampaignRow {
                    measured: crossover.measured_count(),
                    winners: crossover.winners,
                    batches,
                    budget_exhausted: crossover.budget_exhausted,
                }
            }
        }
    }
}

// JSON persistence (layout-compatible with the former serde derives).
// Hand-written rather than `json_struct!` so that `collectives` is
// optional on decode: model files written before the breadth campaigns
// existed (including the committed `results/table2.json` artifact and
// any user's saved broadcast-only model) must keep loading, with the
// per-collective fits defaulting to empty.
impl collsel_support::ToJson for TunedModel {
    fn to_json(&self) -> collsel_support::Json {
        collsel_support::Json::Obj(vec![
            ("cluster_name".to_string(), self.cluster_name.to_json()),
            ("gamma".to_string(), self.gamma.to_json()),
            ("params".to_string(), self.params.to_json()),
            ("collectives".to_string(), self.collectives.to_json()),
            ("seg_size".to_string(), self.seg_size.to_json()),
        ])
    }
}
impl collsel_support::FromJson for TunedModel {
    fn from_json(v: &collsel_support::Json) -> Result<Self, collsel_support::JsonError> {
        Ok(TunedModel {
            cluster_name: FromJson::from_json(v.field("cluster_name")?)?,
            gamma: FromJson::from_json(v.field("gamma")?)?,
            params: FromJson::from_json(v.field("params")?)?,
            collectives: match v.get("collectives") {
                Some(c) => FromJson::from_json(c)?,
                None => BTreeMap::new(),
            },
            seg_size: FromJson::from_json(v.field("seg_size")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_netsim::NoiseParams;
    use collsel_select::Selector;

    #[test]
    fn quick_tune_produces_complete_model() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let tuner = Tuner::new(cluster, TunerConfig::quick(16));
        let model = tuner.tune();
        assert_eq!(model.cluster_name, "gros");
        assert_eq!(model.params.len(), 6, "all six algorithms tuned");
        let selector = model.selector();
        let sel = selector.select(16, 64 * 1024);
        assert_eq!(sel.seg_size, Some(8 * 1024));
    }

    #[test]
    fn tuned_selector_never_picks_linear_at_scale() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(16)).tune();
        let selector = model.selector();
        for m in [8 * 1024, 64 * 1024, 1 << 20] {
            assert_ne!(selector.select(100, m).alg, collsel_coll::BcastAlg::Linear);
        }
    }

    #[test]
    fn tune_is_bit_identical_across_backends() {
        use collsel_mpi::Backend;
        // Noise stays ON: the tuned parameters must match to the last
        // bit even when every sample carries jitter.
        let cluster = ClusterModel::gros();
        let dag_cfg = TunerConfig::quick(10);
        assert_eq!(dag_cfg.gamma.backend, Backend::Dag, "dag is the default");
        assert_eq!(dag_cfg.alpha_beta.backend, Backend::Dag);
        let mut events_cfg = dag_cfg.clone();
        events_cfg.gamma.backend = Backend::Events;
        events_cfg.alpha_beta.backend = Backend::Events;
        let mut threads_cfg = dag_cfg.clone();
        threads_cfg.gamma.backend = Backend::Threads;
        threads_cfg.alpha_beta.backend = Backend::Threads;
        let dag = Tuner::new(cluster.clone(), dag_cfg).tune();
        let events = Tuner::new(cluster.clone(), events_cfg).tune();
        let threads = Tuner::new(cluster, threads_cfg).tune();
        assert_eq!(dag, events, "backends must tune identical models");
        assert_eq!(events, threads, "backends must tune identical models");
    }

    #[test]
    fn compiled_selector_agrees_with_live_on_grid() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(12)).tune();
        let live = model.selector();
        let compiled = model.compiled_selector_default();
        for &p in &[2usize, 4, 8, 16, 32, 64, 128] {
            for m in collsel_estim::log_spaced_sizes(1024, 8 * 1024 * 1024, 14) {
                assert_eq!(compiled.lookup(p, m), live.select(p, m), "p={p} m={m}");
            }
        }
        assert!(compiled.rule_count() >= compiled.comm_block_count());
    }

    #[test]
    fn tune_all_fits_every_collective_family() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(8)).tune_all();
        assert_eq!(model.tuned_collectives(), Collective::ALL.to_vec());
        for (c, fits) in &model.collectives {
            assert_eq!(fits.len(), c.algorithms().len(), "{c}");
            for alg in fits.keys() {
                assert_eq!(alg.collective(), *c);
            }
        }
        // Broadcast's entry is the Sect. 4.2 fits, re-keyed.
        for (&b, est) in &model.params {
            assert_eq!(model.collectives[&Collective::Bcast][&Alg::Bcast(b)], *est);
        }
    }

    #[test]
    fn multi_selector_serves_every_collective_and_matches_mono_bcast() {
        use collsel_select::CollectiveSelector;
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(8)).tune_all();
        let multi = model.multi_selector();
        let mono = model.selector();
        for &(p, m) in &[(4usize, 8192usize), (16, 64 * 1024), (90, 1 << 20)] {
            for c in Collective::ALL {
                let s = multi.select_for(c, p, m);
                assert_eq!(s.alg.collective(), c, "p={p} m={m}");
            }
            // Same fits, same γ, same argmin: the multi selector's
            // broadcast arm must agree with the dedicated selector.
            use collsel_select::Selector;
            let from_multi = multi.select_for(Collective::Bcast, p, m);
            let from_mono = mono.select(p, m);
            assert_eq!(from_multi.alg, Alg::Bcast(from_mono.alg), "p={p} m={m}");
        }
    }

    #[test]
    fn compiled_multi_selector_matches_live_on_grid() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(8)).tune_all();
        use collsel_select::CollectiveSelector;
        let live = model.multi_selector();
        let compiled = model.compiled_multi_selector_default();
        for c in Collective::ALL {
            for &p in &[2usize, 8, 32, 128] {
                for m in collsel_estim::log_spaced_sizes(1024, 8 * 1024 * 1024, 14) {
                    assert_eq!(
                        compiled.lookup(c, p, m),
                        live.select_for(c, p, m),
                        "{c} p={p} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn try_tune_collectives_matches_infallible_on_a_healthy_cluster() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let tuner = Tuner::new(cluster, TunerConfig::quick(6));
        let collectives = [Collective::Bcast, Collective::Reduce, Collective::Alltoall];
        let plain = tuner.tune_collectives(&collectives);
        let report = tuner
            .try_tune_collectives(&collectives, &RetryPolicy::no_deadline())
            .expect("healthy cluster tunes");
        assert!(report.is_complete());
        assert_eq!(report.model, plain, "fault-tolerant path is bit-identical");
    }

    #[test]
    #[should_panic(expected = "exceeds cluster")]
    fn rejects_oversized_experiments() {
        let cluster = ClusterModel::builder("tiny", 4).build();
        let _ = Tuner::new(cluster, TunerConfig::quick(16));
    }

    #[test]
    fn try_tune_matches_tune_on_a_healthy_cluster() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let tuner = Tuner::new(cluster, TunerConfig::quick(12));
        let plain = tuner.tune();
        let report = tuner
            .try_tune(&RetryPolicy::no_deadline())
            .expect("healthy cluster tunes");
        assert!(report.is_complete());
        assert_eq!(report.model, plain, "fault-tolerant path is bit-identical");
        for v in tuner.tune().validity().values() {
            assert!(v.is_valid(), "{v}");
        }
    }

    #[test]
    fn try_tune_fails_fast_when_gamma_cannot_be_measured() {
        use collsel_netsim::SimSpan;
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let tuner = Tuner::new(cluster, TunerConfig::quick(12));
        let policy = RetryPolicy {
            max_attempts: 1,
            budget: Some(SimSpan::from_nanos(1)),
            backoff: 1,
        };
        let err = tuner.try_tune(&policy).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "{err}");
    }

    #[test]
    fn degraded_selector_survives_missing_algorithms() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let mut model = Tuner::new(cluster, TunerConfig::quick(12)).tune();
        // Pretend half the algorithms were skipped under faults.
        model.params.remove(&BcastAlg::Linear);
        model.params.remove(&BcastAlg::Chain);
        model.params.remove(&BcastAlg::KChain);
        let sel = model.degraded_selector();
        assert_eq!(sel.modelled_algorithms().len(), 3);
        for &(p, m) in &[(4usize, 512usize), (16, 64 * 1024), (100, 1 << 20)] {
            let d = sel.decide(p, m);
            assert!(d.source.is_model(), "three valid models remain: {d:?}");
            assert!(
                matches!(
                    d.selection.alg,
                    BcastAlg::SplitBinary | BcastAlg::Binary | BcastAlg::Binomial
                ),
                "the model path must only pick surviving algorithms: {d:?}"
            );
        }
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use collsel_netsim::NoiseParams;
    use collsel_select::Selector;

    #[test]
    fn tuned_model_round_trips_through_json() {
        // The colltune workflow persists models as JSON; selections
        // must survive the round trip bit-for-bit.
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(12)).tune();
        let json = collsel_support::ToJson::to_json(&model).to_string_pretty();
        let value = collsel_support::Json::parse(&json).expect("parses");
        let back: TunedModel = collsel_support::FromJson::from_json(&value).expect("decodes");
        // Floats may lose the last ulp through the JSON text form, so
        // compare behaviourally: same structure, same parameters to
        // high precision, identical runtime selections.
        assert_eq!(back.cluster_name, model.cluster_name);
        assert_eq!(back.seg_size, model.seg_size);
        assert_eq!(back.params.len(), model.params.len());
        for (alg, est) in &model.params {
            let h1 = est.hockney;
            let h2 = back.params[alg].hockney;
            assert!((h1.alpha - h2.alpha).abs() <= 1e-12 * h1.alpha.abs().max(1e-30));
            assert!((h1.beta - h2.beta).abs() <= 1e-12 * h1.beta.abs().max(1e-30));
        }
        let (a, b) = (model.selector(), back.selector());
        for m in [4 * 1024, 64 * 1024, 1 << 20] {
            assert_eq!(a.select(64, m), b.select(64, m));
        }
    }

    #[test]
    fn pre_breadth_model_files_still_decode() {
        // Model JSON written before the breadth campaigns existed has
        // no `collectives` field; it must load with the per-collective
        // fits empty, not fail (regression: the committed
        // results/table2.json artifact and any saved broadcast-only
        // model).
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let model = Tuner::new(cluster, TunerConfig::quick(12)).tune();
        let json = collsel_support::ToJson::to_json(&model).to_string_pretty();
        let value = collsel_support::Json::parse(&json).expect("parses");
        let legacy = match value {
            collsel_support::Json::Obj(fields) => collsel_support::Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "collectives")
                    .collect(),
            ),
            other => other,
        };
        let back: TunedModel = collsel_support::FromJson::from_json(&legacy).expect("decodes");
        assert!(back.collectives.is_empty());
        assert_eq!(back.tuned_collectives(), Vec::new());
        assert_eq!(back.cluster_name, model.cluster_name);
        assert_eq!(back.params.len(), model.params.len());
    }
}
