//! # collsel
//!
//! **Model-based selection of optimal MPI collective algorithms** — a
//! production-quality Rust reproduction of Nuriyev & Lastovetsky,
//! *"A New Model-Based Approach to Performance Comparison of MPI
//! Collective Algorithms"* (PaCT 2021).
//!
//! This facade crate re-exports the whole stack and adds the
//! high-level [`Tuner`] workflow:
//!
//! | Layer | Crate | Re-exported as |
//! |---|---|---|
//! | Cluster/network simulator | `collsel-netsim` | [`netsim`] |
//! | MPI-like runtime | `collsel-mpi` | [`mpi`] |
//! | Open MPI algorithm ports | `collsel-coll` | [`coll`] |
//! | Analytical models | `collsel-model` | [`model`] |
//! | Parameter estimation | `collsel-estim` | [`estim`] |
//! | Decision functions | `collsel-select` | [`select`] |
//!
//! # Quickstart
//!
//! ```
//! use collsel::netsim::{ClusterModel, NoiseParams};
//! use collsel::select::Selector;
//! use collsel::{Tuner, TunerConfig};
//!
//! // Tune the selector for a (simulated) cluster...
//! let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
//! let model = Tuner::new(cluster, TunerConfig::quick(12)).tune();
//!
//! // ...and use it as the runtime decision function.
//! let selector = model.selector();
//! let pick = selector.select(100, 1 << 20);
//! println!("broadcast 1 MB to 100 ranks with {}", pick.alg);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod tuner;

pub use tuner::{
    CampaignPlan, CampaignReport, CampaignStrategy, CollectiveCampaignStats, TuneReport,
    TunedModel, Tuner, TunerConfig,
};

/// The cluster/network simulation substrate.
pub use collsel_netsim as netsim;

/// The MPI-like deterministic runtime.
pub use collsel_mpi as mpi;

/// Ports of the Open MPI collective algorithms.
pub use collsel_coll as coll;

/// Analytical performance models.
pub use collsel_model as model;

/// Parameter estimation (γ, per-algorithm α/β).
pub use collsel_estim as estim;

/// Decision functions and selection analysis.
pub use collsel_select as select;
