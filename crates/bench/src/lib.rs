//! # collsel-bench
//!
//! Criterion benchmarks, one per paper table/figure plus design
//! ablations. Each bench first regenerates a reduced-scale version of
//! its artifact (printed to stdout), then measures the cost of the
//! computational kernels behind it.
//!
//! Shared helpers for the bench targets live here.

use collsel::estim::Precision;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel_expt::{scenarios, Fidelity, Scenario};

/// A noise-free Gros-like scenario trimmed for benchmarking.
pub fn bench_scenario() -> Scenario {
    let mut sc = scenarios(Fidelity::Quick).remove(1);
    sc.cluster = sc.cluster.clone().with_noise(NoiseParams::OFF);
    sc.msg_sizes = vec![8 * 1024, 128 * 1024];
    sc.fig5_ps = vec![16];
    sc.table3_p = 16;
    sc.tune_p = 12;
    sc.precision = Precision {
        rel_precision: 0.2,
        min_reps: 2,
        max_reps: 4,
    };
    sc
}

/// A quiet small cluster for micro-benchmarks of the runtime itself.
pub fn quiet_cluster() -> ClusterModel {
    ClusterModel::gros().with_noise(NoiseParams::OFF)
}
