//! Perf-trajectory benchmark for the parallel tuning campaign: runs a
//! Table-2-style full tuning campaign (γ then per-algorithm α/β)
//! serially and across the job pool, checks the two models are
//! bit-identical, and writes the wall-clock numbers to
//! `BENCH_tune.json` at the repository root so successive PRs can track
//! the trajectory.
//!
//! This target deliberately skips the criterion harness: a campaign is
//! a seconds-long unit of work, so explicit best-of-N wall-clock timing
//! is both cheaper and easier to serialise. Set `COLLSEL_BENCH_SMOKE=1`
//! for the CI-sized run (fewer repetitions, looser precision).

use collsel::{TunedModel, Tuner, TunerConfig};
use collsel_bench::quiet_cluster;
use collsel_support::pool;
use collsel_support::Json;
use std::time::Instant;

/// Times one full campaign at a fixed thread count, returning the
/// model and the elapsed seconds.
fn run_campaign(threads: usize, config: &TunerConfig) -> (TunedModel, f64) {
    pool::set_thread_override(threads);
    let start = Instant::now();
    let model = Tuner::new(quiet_cluster(), config.clone()).tune();
    let elapsed = start.elapsed().as_secs_f64();
    pool::clear_thread_override();
    (model, elapsed)
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let runs = if smoke { 1 } else { 3 };
    let tune_p = 12;
    let mut config = TunerConfig::quick(tune_p);
    if smoke {
        // CI-sized: loosen the stopping rule so each cell settles fast.
        config.gamma.precision.min_reps = 2;
        config.gamma.precision.max_reps = 4;
        config.alpha_beta.precision.min_reps = 2;
        config.alpha_beta.precision.max_reps = 4;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The threaded leg uses the pool's configured width (COLLSEL_THREADS
    // or the host), but always at least 2 so the parallel path is
    // exercised even on a single-core host.
    let threads = pool::current_threads().max(2);

    println!("campaign bench: tune_p={tune_p} smoke={smoke} runs={runs}");
    println!("host parallelism: {host}; threaded leg: {threads} threads");

    let mut serial_s = f64::INFINITY;
    let mut threaded_s = f64::INFINITY;
    let mut serial_model = None;
    let mut threaded_model = None;
    for run in 0..runs {
        let (m1, t1) = run_campaign(1, &config);
        let (mn, tn) = run_campaign(threads, &config);
        println!("  run {run}: serial {t1:.3}s, {threads} threads {tn:.3}s");
        serial_s = serial_s.min(t1);
        threaded_s = threaded_s.min(tn);
        serial_model = Some(m1);
        threaded_model = Some(mn);
    }
    let (serial_model, threaded_model) = (
        serial_model.expect("runs >= 1"),
        threaded_model.expect("runs >= 1"),
    );

    // The campaign's core invariant: thread count changes wall-clock,
    // never results.
    assert_eq!(
        serial_model, threaded_model,
        "tuned models diverged between serial and threaded campaigns"
    );
    println!("determinism: serial and threaded models are identical");

    let speedup = serial_s / threaded_s;
    println!("serial (best of {runs}):   {serial_s:.3}s");
    println!("threaded (best of {runs}): {threaded_s:.3}s at {threads} threads");
    println!("speedup: {speedup:.2}x on a host with parallelism {host}");

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("campaign".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("runs".to_owned(), Json::Num(runs as f64)),
        ("tune_p".to_owned(), Json::Num(tune_p as f64)),
        ("threads".to_owned(), Json::Num(threads as f64)),
        ("host_parallelism".to_owned(), Json::Num(host as f64)),
        ("serial_s".to_owned(), Json::Num(serial_s)),
        ("threaded_s".to_owned(), Json::Num(threaded_s)),
        ("speedup".to_owned(), Json::Num(speedup)),
        (
            "models_identical".to_owned(),
            Json::Bool(serial_model == threaded_model),
        ),
        (
            "sim_backend".to_owned(),
            Json::Str(config.gamma.backend.name().to_owned()),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tune.json");
    match std::fs::write(out, json.to_string_pretty()) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
