//! Perf-trajectory benchmark for the tuning campaign, in two parts:
//!
//! 1. **Model tuning determinism** — runs a Table-2-style full tuning
//!    campaign (γ then per-algorithm α/β) serially and across the job
//!    pool and checks the two models are bit-identical.
//! 2. **Adaptive campaign cost** — on each preset cluster (noise on),
//!    runs the exhaustive measured-winner sweep over all seven
//!    collectives and the adaptive campaign (crossover bisection +
//!    leader-settled repetitions, cold and warm-started), asserts the
//!    decision tables are byte-identical, and records how many
//!    simulated batches the adaptive planner saved. The headline gate:
//!    the warm-started campaign must simulate at least 10x fewer
//!    batches than the exhaustive sweep (2x in smoke mode's small
//!    grid).
//!
//! Wall-clock numbers depend on the host's parallelism (recorded in
//! the artifact); every model, table and batch count is bit-identical
//! at any thread count, so the trajectory metrics to compare across
//! hosts are the batch counts, not the seconds.
//!
//! This target deliberately skips the criterion harness: a campaign is
//! a seconds-long unit of work, so explicit best-of-N wall-clock timing
//! is both cheaper and easier to serialise. Set `COLLSEL_BENCH_SMOKE=1`
//! for the CI-sized run (smaller grid, looser precision).

use collsel::coll::Collective;
use collsel::estim::{log_spaced_sizes, Precision};
use collsel::netsim::ClusterModel;
use collsel::{CampaignPlan, CampaignReport, TunedModel, Tuner, TunerConfig};
use collsel_support::pool;
use collsel_support::Json;
use std::time::Instant;

/// Times one full tuning campaign at a fixed thread count, returning
/// the model and the elapsed seconds.
fn run_tune(threads: usize, config: &TunerConfig) -> (TunedModel, f64) {
    pool::set_thread_override(threads);
    let start = Instant::now();
    let model = Tuner::new(collsel_bench::quiet_cluster(), config.clone()).tune();
    let elapsed = start.elapsed().as_secs_f64();
    pool::clear_thread_override();
    (model, elapsed)
}

/// One campaign leg: wall seconds plus the report.
fn run_leg(tuner: &Tuner, plan: &CampaignPlan, warm: Option<&TunedModel>) -> (CampaignReport, f64) {
    let start = Instant::now();
    let report = tuner.run_campaign(plan, warm);
    (report, start.elapsed().as_secs_f64())
}

/// Exhaustive-vs-adaptive comparison on one preset cluster (noise on:
/// the leader-settled rule only saves repetitions when cells are
/// noisy). Returns the artifact cell; panics if the adaptive tables
/// deviate from the exhaustive oracle or the cost gate fails.
fn campaign_cell(cluster: ClusterModel, smoke: bool, min_reduction: f64) -> Json {
    let name = cluster.name().to_owned();
    let tuner = Tuner::new(cluster, TunerConfig::quick(8));
    let model = tuner.tune_all();

    let (max_m, points) = if smoke {
        (256 * 1024, 10)
    } else {
        (8 * 1024 * 1024, 32)
    };
    let mut msgs = log_spaced_sizes(1024, max_m, points);
    msgs.dedup();
    let precision = if smoke {
        Precision {
            rel_precision: 0.005,
            min_reps: 3,
            max_reps: 50,
        }
    } else {
        // Below the simulated clusters' noise floor: repetitions are
        // the dominant cost, exactly the regime uncertainty-directed
        // early stopping is for.
        Precision {
            rel_precision: 0.001,
            min_reps: 5,
            max_reps: 500,
        }
    };
    let mut exhaustive = CampaignPlan::exhaustive(Collective::ALL.to_vec(), vec![8], msgs.clone());
    exhaustive.precision = precision;
    let mut adaptive = CampaignPlan::adaptive(Collective::ALL.to_vec(), vec![8], msgs, 6);
    adaptive.precision = precision;

    let (full, full_s) = run_leg(&tuner, &exhaustive, None);
    let (cold, cold_s) = run_leg(&tuner, &adaptive, None);
    let (warm, warm_s) = run_leg(&tuner, &adaptive, Some(&model));

    assert_eq!(
        full.tables, cold.tables,
        "{name}: cold adaptive tables deviate from the exhaustive sweep"
    );
    assert_eq!(
        full.tables, warm.tables,
        "{name}: warm adaptive tables deviate from the exhaustive sweep"
    );
    let cold_x = full.simulated_batches() as f64 / cold.simulated_batches().max(1) as f64;
    let warm_x = full.simulated_batches() as f64 / warm.simulated_batches().max(1) as f64;
    let best = cold_x.max(warm_x);
    println!(
        "  {name}: cells {} -> {} (cold) / {} (warm); batches {} -> {} (cold {cold_x:.1}x) / \
         {} (warm {warm_x:.1}x); wall {full_s:.1}s / {cold_s:.1}s / {warm_s:.1}s",
        full.measured_cells(),
        cold.measured_cells(),
        warm.measured_cells(),
        full.simulated_batches(),
        cold.simulated_batches(),
        warm.simulated_batches(),
    );
    assert!(
        best >= min_reduction,
        "{name}: expected >= {min_reduction}x fewer simulated batches, got {best:.1}x"
    );

    Json::Obj(vec![
        ("preset".to_owned(), Json::Str(name)),
        ("grid_cells".to_owned(), Json::Num(full.grid_cells() as f64)),
        (
            "exhaustive_batches".to_owned(),
            Json::Num(full.simulated_batches() as f64),
        ),
        (
            "cold_batches".to_owned(),
            Json::Num(cold.simulated_batches() as f64),
        ),
        (
            "warm_batches".to_owned(),
            Json::Num(warm.simulated_batches() as f64),
        ),
        (
            "cold_measured_cells".to_owned(),
            Json::Num(cold.measured_cells() as f64),
        ),
        (
            "warm_measured_cells".to_owned(),
            Json::Num(warm.measured_cells() as f64),
        ),
        ("cold_batch_reduction".to_owned(), Json::Num(cold_x)),
        ("warm_batch_reduction".to_owned(), Json::Num(warm_x)),
        (
            "cold_cell_reduction".to_owned(),
            Json::Num(cold.cell_reduction()),
        ),
        (
            "warm_cell_reduction".to_owned(),
            Json::Num(warm.cell_reduction()),
        ),
        ("tables_identical".to_owned(), Json::Bool(true)),
        ("exhaustive_s".to_owned(), Json::Num(full_s)),
        ("cold_s".to_owned(), Json::Num(cold_s)),
        ("warm_s".to_owned(), Json::Num(warm_s)),
    ])
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let runs = if smoke { 1 } else { 3 };
    let tune_p = 12;
    let mut config = TunerConfig::quick(tune_p);
    if smoke {
        // CI-sized: loosen the stopping rule so each cell settles fast.
        config.gamma.precision.min_reps = 2;
        config.gamma.precision.max_reps = 4;
        config.alpha_beta.precision.min_reps = 2;
        config.alpha_beta.precision.max_reps = 4;
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The threaded leg uses the pool's configured width (COLLSEL_THREADS
    // or the host), but always at least 2 so the parallel path is
    // exercised even on a single-core host.
    let threads = pool::current_threads().max(2);

    println!("campaign bench: tune_p={tune_p} smoke={smoke} runs={runs}");
    println!("host parallelism: {host}; threaded leg: {threads} threads");

    let mut serial_s = f64::INFINITY;
    let mut threaded_s = f64::INFINITY;
    let mut serial_model = None;
    let mut threaded_model = None;
    for run in 0..runs {
        let (m1, t1) = run_tune(1, &config);
        let (mn, tn) = run_tune(threads, &config);
        println!("  run {run}: serial {t1:.3}s, {threads} threads {tn:.3}s");
        serial_s = serial_s.min(t1);
        threaded_s = threaded_s.min(tn);
        serial_model = Some(m1);
        threaded_model = Some(mn);
    }
    let (serial_model, threaded_model) = (
        serial_model.expect("runs >= 1"),
        threaded_model.expect("runs >= 1"),
    );

    // The campaign's core invariant: thread count changes wall-clock,
    // never results.
    assert_eq!(
        serial_model, threaded_model,
        "tuned models diverged between serial and threaded campaigns"
    );
    println!("determinism: serial and threaded models are identical");

    let speedup = serial_s / threaded_s;
    println!("serial (best of {runs}):   {serial_s:.3}s");
    println!("threaded (best of {runs}): {threaded_s:.3}s at {threads} threads");
    println!("speedup: {speedup:.2}x on a host with parallelism {host}");

    // Adaptive campaign cost gate: byte-identical tables at a fraction
    // of the simulated batches, on both presets.
    let min_reduction = if smoke { 2.0 } else { 10.0 };
    println!("adaptive campaign vs exhaustive sweep (gate: >= {min_reduction}x fewer batches):");
    let cells = vec![
        campaign_cell(ClusterModel::gros(), smoke, min_reduction),
        campaign_cell(ClusterModel::grisou(), smoke, min_reduction),
    ];

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("campaign".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("runs".to_owned(), Json::Num(runs as f64)),
        ("tune_p".to_owned(), Json::Num(tune_p as f64)),
        ("threads".to_owned(), Json::Num(threads as f64)),
        ("host_parallelism".to_owned(), Json::Num(host as f64)),
        (
            "wall_clock_caveat".to_owned(),
            Json::Str(
                "seconds vary with host parallelism; models, tables and batch \
                 counts are bit-identical at any thread count"
                    .to_owned(),
            ),
        ),
        ("serial_s".to_owned(), Json::Num(serial_s)),
        ("threaded_s".to_owned(), Json::Num(threaded_s)),
        ("speedup".to_owned(), Json::Num(speedup)),
        (
            "models_identical".to_owned(),
            Json::Bool(serial_model == threaded_model),
        ),
        (
            "sim_backend".to_owned(),
            Json::Str(config.gamma.backend.name().to_owned()),
        ),
        ("cells".to_owned(), Json::Arr(cells)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tune.json");
    match collsel_support::bench::write_artifact(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
