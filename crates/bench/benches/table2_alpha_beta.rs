//! Bench for Table 2: regenerates the per-algorithm (α, β) estimation
//! at reduced scale, then measures its kernels: the Huber regression
//! and one full per-algorithm estimation.

use collsel::coll::BcastAlg;
use collsel::estim::{estimate_alpha_beta, huber_default, ols, AlphaBetaConfig, Precision};
use collsel::model::GammaTable;
use collsel_bench::bench_scenario;
use collsel_expt::table2::run_table2;
use collsel_expt::{scenarios, Fidelity};
use collsel_support::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let mut scs = scenarios(Fidelity::Quick);
    for sc in &mut scs {
        sc.cluster = sc
            .cluster
            .clone()
            .with_noise(collsel::netsim::NoiseParams::OFF);
        sc.tune_p = sc.tune_p.min(12);
    }
    let t2 = run_table2(&scs, Fidelity::Quick);
    println!("\n{}", t2.to_text());

    // Regression kernels on a Fig. 4-shaped system.
    let xs: Vec<f64> = (0..10).map(|i| 1000.0 * (1.6f64).powi(i)).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0e-5 + 4.7e-9 * x).collect();
    c.bench_function("table2/ols_fit_10pts", |b| {
        b.iter(|| ols(black_box(&xs), black_box(&ys)))
    });
    c.bench_function("table2/huber_fit_10pts", |b| {
        b.iter(|| huber_default(black_box(&xs), black_box(&ys)))
    });

    // One full per-algorithm estimation at bench scale.
    let sc = bench_scenario();
    let gamma = GammaTable::from_pairs([(3, 1.08), (5, 1.25), (7, 1.42)]);
    let cfg = AlphaBetaConfig {
        seg_size: 8 * 1024,
        msg_sizes: vec![8 * 1024, 64 * 1024, 256 * 1024],
        gather_sizes: vec![2 * 1024, 8 * 1024, 32 * 1024],
        p: 12,
        precision: Precision {
            rel_precision: 0.2,
            min_reps: 2,
            max_reps: 4,
        },
        backend: collsel::mpi::Backend::default(),
    };
    c.bench_function("table2/estimate_alpha_beta_binomial_p12", |b| {
        b.iter(|| estimate_alpha_beta(black_box(&sc.cluster), BcastAlg::Binomial, &cfg, &gamma, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
