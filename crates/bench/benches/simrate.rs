//! Single-cell simulation throughput: dag vs events vs threads.
//!
//! A tuning campaign is tens of thousands of short simulation runs, so
//! the unit that decides campaign wall-clock is runs/second of one
//! cell. This bench records a broadcast into a [`Schedule`] once,
//! lowers it to a [`TimingDag`], then times all three execution tiers
//! on the same program: batched payload-free DAG evaluation, schedule
//! replay (the event-driven backend) and the thread-per-rank oracle.
//! It writes the rates plus both speedups to `BENCH_sim.json` at the
//! repository root.
//!
//! One-time costs are reported separately from steady-state
//! throughput: `record_s` (recording the schedule — a full threaded
//! simulation — plus lowering it to the DAG) never pollutes the
//! replay-rate window, and `reps_per_compile` says how many DAG
//! evaluations one record+compile buys — the break-even batch size
//! beyond which the compiled tier is pure profit. `host_threads`
//! records the parallelism available to the run for context, since
//! the threaded oracle's rate depends on it.
//!
//! Like `campaign.rs`, this target skips the criterion harness: the
//! grid is explicit and the JSON artifact is the point. Set
//! `COLLSEL_BENCH_SMOKE=1` for the CI-sized run (smaller grid, shorter
//! timing windows); smoke mode asserts the dag backend is not slower
//! than events and events not slower than threads in any cell.

use collsel::coll::compile::compile_bcast;
use collsel::coll::{bcast, BcastAlg};
use collsel::mpi::{simulate_pooled, simulate_scheduled, DagEvaluator, SimOptions, TimingDag};
use collsel::netsim::ClusterModel;
use collsel_bench::quiet_cluster;
use collsel_support::payload::payload;
use collsel_support::Json;
use std::sync::Arc;
use std::time::Instant;

const SEG_SIZE: usize = 8 * 1024;
const ALG: BcastAlg = BcastAlg::Binomial;
const SEED: u64 = 0xBE7C;

/// Times `run` by doubling the batch size until the timed window is
/// long enough to trust, returning runs per second.
fn runs_per_sec(min_window_s: f64, mut run: impl FnMut(u64)) -> f64 {
    let mut batch = 1u64;
    let mut next_seed = 0u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            run(SEED.wrapping_add(next_seed));
            next_seed += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window_s {
            return batch as f64 / elapsed;
        }
        batch *= 2;
    }
}

/// One (preset, P, m) cell: all three backends timed, the one-time
/// record+compile cost measured separately, plus a makespan
/// cross-check at a fixed seed.
fn bench_cell(cluster: &ClusterModel, p_requested: usize, m: usize, min_window_s: f64) -> Json {
    let p = p_requested.min(cluster.max_ranks());
    let root = 0;

    // One-time cost: record the schedule (a full threaded simulation)
    // and lower it to the timing DAG. Timed apart from the replay
    // windows so compile time never masquerades as replay throughput.
    let record_start = Instant::now();
    let sched =
        compile_bcast(cluster, ALG, p, root, m, SEG_SIZE).expect("broadcast records cleanly");
    let dag = Arc::new(TimingDag::compile(cluster, &sched).expect("schedule fits the DAG"));
    let record_s = record_start.elapsed().as_secs_f64();

    let msg = payload(m);

    // The backends must agree before their speeds are worth comparing.
    let mut evaluator = DagEvaluator::new(cluster, Arc::clone(&dag));
    let dag_run = evaluator
        .run(SEED, SimOptions::default())
        .expect("dag run completes");
    let replay = simulate_scheduled(cluster, &sched, SEED, SimOptions::default())
        .expect("replay run completes");
    let threaded = {
        let msg = msg.clone();
        simulate_pooled(cluster, p, SEED, SimOptions::default(), move |ctx| {
            let data = (ctx.rank() == root).then(|| msg.clone());
            bcast(ctx, ALG, root, data, m, SEG_SIZE);
        })
        .expect("threaded run completes")
    };
    assert_eq!(
        dag_run.report,
        replay.report,
        "dag and replay diverged at {} p={p} m={m}",
        cluster.name()
    );
    assert_eq!(
        replay.report.makespan,
        threaded.report.makespan,
        "backends diverged at {} p={p} m={m}",
        cluster.name()
    );

    let dag_rps = runs_per_sec(min_window_s, |seed| {
        let _ = evaluator
            .run(seed, SimOptions::default())
            .expect("dag run completes");
    });
    let events_rps = runs_per_sec(min_window_s, |seed| {
        let _ = simulate_scheduled(cluster, &sched, seed, SimOptions::default())
            .expect("replay run completes");
    });
    let threads_rps = runs_per_sec(min_window_s, |seed| {
        let msg = msg.clone();
        let _ = simulate_pooled(cluster, p, seed, SimOptions::default(), move |ctx| {
            let data = (ctx.rank() == root).then(|| msg.clone());
            bcast(ctx, ALG, root, data, m, SEG_SIZE);
        })
        .expect("threaded run completes");
    });
    let speedup = events_rps / threads_rps;
    let dag_speedup = dag_rps / events_rps;
    // How many steady-state DAG evaluations the one-time record+compile
    // cost is worth: past this batch size the compiled tier amortises.
    let reps_per_compile = record_s * dag_rps;
    println!(
        "  {:<6} p={p:>3} (requested {p_requested:>3}) m={m:>7}: \
         dag {dag_rps:>10.1}/s, events {events_rps:>9.1}/s, threads {threads_rps:>8.1}/s, \
         ev/th {speedup:.1}x, dag/ev {dag_speedup:.1}x, \
         record {:.1}ms ({reps_per_compile:.0} reps)",
        cluster.name(),
        record_s * 1e3,
    );

    Json::Obj(vec![
        ("preset".to_owned(), Json::Str(cluster.name().to_owned())),
        ("p_requested".to_owned(), Json::Num(p_requested as f64)),
        ("p".to_owned(), Json::Num(p as f64)),
        ("m".to_owned(), Json::Num(m as f64)),
        ("dag_runs_per_s".to_owned(), Json::Num(dag_rps)),
        ("events_runs_per_s".to_owned(), Json::Num(events_rps)),
        ("threads_runs_per_s".to_owned(), Json::Num(threads_rps)),
        ("record_s".to_owned(), Json::Num(record_s)),
        ("reps_per_compile".to_owned(), Json::Num(reps_per_compile)),
        ("speedup".to_owned(), Json::Num(speedup)),
        ("dag_speedup".to_owned(), Json::Num(dag_speedup)),
    ])
}

/// Reads one numeric field out of a cell object.
fn field(c: &Json, name: &str) -> f64 {
    match c {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .unwrap_or_else(|| panic!("every cell records {name}")),
        _ => unreachable!("cells are objects"),
    }
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    // Presets cap their rank counts (grisou 102, gros 124), so the
    // P = 128 column is clamped per preset; the JSON records both the
    // requested and the effective process count.
    let ps: &[usize] = if smoke { &[8, 32] } else { &[8, 32, 128] };
    let ms: &[usize] = if smoke {
        &[8 * 1024]
    } else {
        &[8 * 1024, 512 * 1024]
    };
    let min_window_s = if smoke { 0.05 } else { 0.3 };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "simrate bench: smoke={smoke} ps={ps:?} ms={ms:?} window={min_window_s}s \
         host_threads={host_threads}"
    );

    let mut cells = Vec::new();
    for cluster in [quiet_cluster(), ClusterModel::grisou()] {
        for &p in ps {
            for &m in ms {
                cells.push(bench_cell(&cluster, p, m, min_window_s));
            }
        }
    }

    let range = |name: &str| {
        let max = cells.iter().map(|c| field(c, name)).fold(0.0, f64::max);
        let min = cells
            .iter()
            .map(|c| field(c, name))
            .fold(f64::INFINITY, f64::min);
        (min, max)
    };
    let (min_speedup, max_speedup) = range("speedup");
    let (min_dag_speedup, max_dag_speedup) = range("dag_speedup");
    println!(
        "events/threads speedup: {min_speedup:.1}x .. {max_speedup:.1}x, \
         dag/events speedup: {min_dag_speedup:.1}x .. {max_dag_speedup:.1}x \
         over {} cells",
        cells.len()
    );

    if smoke {
        assert!(
            min_speedup >= 1.0,
            "event backend slower than threads in at least one cell ({min_speedup:.2}x)"
        );
        assert!(
            min_dag_speedup >= 1.0,
            "dag backend slower than events in at least one cell ({min_dag_speedup:.2}x)"
        );
        println!("smoke gate: dag >= events >= threads in every cell");
    }

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("simrate".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("alg".to_owned(), Json::Str(ALG.name().to_owned())),
        ("seg_size".to_owned(), Json::Num(SEG_SIZE as f64)),
        ("host_threads".to_owned(), Json::Num(host_threads as f64)),
        ("min_speedup".to_owned(), Json::Num(min_speedup)),
        ("max_speedup".to_owned(), Json::Num(max_speedup)),
        ("min_dag_speedup".to_owned(), Json::Num(min_dag_speedup)),
        ("max_dag_speedup".to_owned(), Json::Num(max_dag_speedup)),
        ("cells".to_owned(), Json::Arr(cells)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match collsel_support::bench::write_artifact(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
