//! Single-cell simulation throughput: events vs threads.
//!
//! A tuning campaign is tens of thousands of short simulation runs, so
//! the unit that decides campaign wall-clock is runs/second of one
//! cell. This bench compiles a broadcast into a [`Schedule`] once and
//! replays it (the event-driven backend), times the same program on
//! the thread-per-rank backend, and writes both rates plus the speedup
//! to `BENCH_sim.json` at the repository root.
//!
//! Like `campaign.rs`, this target skips the criterion harness: the
//! grid is explicit and the JSON artifact is the point. Set
//! `COLLSEL_BENCH_SMOKE=1` for the CI-sized run (smaller grid, shorter
//! timing windows); smoke mode asserts the event backend is not slower
//! than the threaded one in any cell.

use collsel::coll::compile::compile_bcast;
use collsel::coll::{bcast, BcastAlg};
use collsel::mpi::{simulate_pooled, simulate_scheduled, SimOptions};
use collsel::netsim::ClusterModel;
use collsel_bench::quiet_cluster;
use collsel_support::{Bytes, Json};
use std::time::Instant;

const SEG_SIZE: usize = 8 * 1024;
const ALG: BcastAlg = BcastAlg::Binomial;
const SEED: u64 = 0xBE7C;

/// Same deterministic filler the schedule compiler uses; only the
/// length matters for timing, but keeping the programs literally
/// identical makes the makespan cross-check exact.
fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

/// Times `run` by doubling the batch size until the timed window is
/// long enough to trust, returning runs per second.
fn runs_per_sec(min_window_s: f64, mut run: impl FnMut(u64)) -> f64 {
    let mut batch = 1u64;
    let mut next_seed = 0u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            run(SEED.wrapping_add(next_seed));
            next_seed += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window_s {
            return batch as f64 / elapsed;
        }
        batch *= 2;
    }
}

/// One (preset, P, m) cell: both backends timed, plus a makespan
/// cross-check at a fixed seed.
fn bench_cell(cluster: &ClusterModel, p_requested: usize, m: usize, min_window_s: f64) -> Json {
    let p = p_requested.min(cluster.max_ranks());
    let root = 0;
    let sched =
        compile_bcast(cluster, ALG, p, root, m, SEG_SIZE).expect("broadcast records cleanly");
    let msg = payload(m);

    // The backends must agree before their speeds are worth comparing.
    let replay = simulate_scheduled(cluster, &sched, SEED, SimOptions::default())
        .expect("replay run completes");
    let threaded = {
        let msg = msg.clone();
        simulate_pooled(cluster, p, SEED, SimOptions::default(), move |ctx| {
            let data = (ctx.rank() == root).then(|| msg.clone());
            bcast(ctx, ALG, root, data, m, SEG_SIZE);
        })
        .expect("threaded run completes")
    };
    assert_eq!(
        replay.report.makespan,
        threaded.report.makespan,
        "backends diverged at {} p={p} m={m}",
        cluster.name()
    );

    let events_rps = runs_per_sec(min_window_s, |seed| {
        let _ = simulate_scheduled(cluster, &sched, seed, SimOptions::default())
            .expect("replay run completes");
    });
    let threads_rps = runs_per_sec(min_window_s, |seed| {
        let msg = msg.clone();
        let _ = simulate_pooled(cluster, p, seed, SimOptions::default(), move |ctx| {
            let data = (ctx.rank() == root).then(|| msg.clone());
            bcast(ctx, ALG, root, data, m, SEG_SIZE);
        })
        .expect("threaded run completes");
    });
    let speedup = events_rps / threads_rps;
    println!(
        "  {:<6} p={p:>3} (requested {p_requested:>3}) m={m:>7}: \
         events {events_rps:>9.1}/s, threads {threads_rps:>8.1}/s, speedup {speedup:.1}x",
        cluster.name()
    );

    Json::Obj(vec![
        ("preset".to_owned(), Json::Str(cluster.name().to_owned())),
        ("p_requested".to_owned(), Json::Num(p_requested as f64)),
        ("p".to_owned(), Json::Num(p as f64)),
        ("m".to_owned(), Json::Num(m as f64)),
        ("events_runs_per_s".to_owned(), Json::Num(events_rps)),
        ("threads_runs_per_s".to_owned(), Json::Num(threads_rps)),
        ("speedup".to_owned(), Json::Num(speedup)),
    ])
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    // Presets cap their rank counts (grisou 102, gros 124), so the
    // P = 128 column is clamped per preset; the JSON records both the
    // requested and the effective process count.
    let ps: &[usize] = if smoke { &[8, 32] } else { &[8, 32, 128] };
    let ms: &[usize] = if smoke {
        &[8 * 1024]
    } else {
        &[8 * 1024, 512 * 1024]
    };
    let min_window_s = if smoke { 0.05 } else { 0.3 };
    println!("simrate bench: smoke={smoke} ps={ps:?} ms={ms:?} window={min_window_s}s");

    let mut cells = Vec::new();
    for cluster in [quiet_cluster(), ClusterModel::grisou()] {
        for &p in ps {
            for &m in ms {
                cells.push(bench_cell(&cluster, p, m, min_window_s));
            }
        }
    }

    let speedup_of = |c: &Json| match c {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == "speedup")
            .and_then(|(_, v)| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .expect("every cell records a speedup"),
        _ => unreachable!("cells are objects"),
    };
    let max_speedup = cells.iter().map(&speedup_of).fold(0.0, f64::max);
    let min_speedup = cells.iter().map(&speedup_of).fold(f64::INFINITY, f64::min);
    println!(
        "speedup range: {min_speedup:.1}x .. {max_speedup:.1}x over {} cells",
        cells.len()
    );

    if smoke {
        assert!(
            min_speedup >= 1.0,
            "event backend slower than threads in at least one cell ({min_speedup:.2}x)"
        );
        println!("smoke gate: events not slower than threads in any cell");
    }

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("simrate".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("alg".to_owned(), Json::Str(ALG.name().to_owned())),
        ("seg_size".to_owned(), Json::Num(SEG_SIZE as f64)),
        ("min_speedup".to_owned(), Json::Num(min_speedup)),
        ("max_speedup".to_owned(), Json::Num(max_speedup)),
        ("cells".to_owned(), Json::Arr(cells)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match collsel_support::bench::write_artifact(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
