//! Decision-serving throughput: live ranking vs compiled table vs
//! cached service.
//!
//! A selection query sits on the critical path of every simulated
//! collective call, so the unit that matters is queries/second of one
//! decision. This bench tunes a model per preset, then times the same
//! seeded query stream three ways — re-ranking all six analytical
//! models per query (the live path `colltune query` used to take),
//! binary-searching the compiled [`CompiledSelector`] table, and going
//! through a [`DecisionService`] with its exact-query cache warm — and
//! writes all three rates plus the speedups to `BENCH_select.json` at
//! the repository root.
//!
//! Like `simrate.rs`, this target skips the criterion harness: the
//! grid is explicit and the JSON artifact is the point. Set
//! `COLLSEL_BENCH_SMOKE=1` for the CI-sized run (shorter timing
//! windows, fewer presets); smoke mode asserts the compiled path is
//! never slower than live ranking.

use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::DecisionService;
use collsel::{Tuner, TunerConfig};
use collsel_support::bench::write_artifact;
use collsel_support::rng::splitmix64;
use collsel_support::Json;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 0x5E1EC7;
const CACHE_CAPACITY: usize = 4096;
const WORKING_SET: usize = 1024;

/// Times `run` by doubling the batch size until the timed window is
/// long enough to trust, returning queries per second.
fn queries_per_sec(
    min_window_s: f64,
    queries: &[(usize, usize)],
    mut run: impl FnMut(usize, usize),
) -> f64 {
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for i in 0..batch {
            let (p, m) = queries[i as usize % queries.len()];
            run(p, m);
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window_s {
            return batch as f64 / elapsed;
        }
        batch *= 2;
    }
}

/// A seeded working set of (p, m) queries drawn from the tuned range,
/// the same recipe `colltune bench-select` uses.
fn working_set(max_p: usize) -> Vec<(usize, usize)> {
    let mut state = SEED;
    (0..WORKING_SET)
        .map(|_| {
            let p = 2 + (splitmix64(&mut state) as usize % (max_p - 1));
            let m = 1024usize << (splitmix64(&mut state) as usize % 13);
            (p, m)
        })
        .collect()
}

/// One preset cell: tune, compile, and time all three serving paths on
/// the same query stream.
fn bench_preset(cluster: ClusterModel, min_window_s: f64) -> Json {
    let preset = cluster.name().to_owned();
    let tuned = Tuner::new(cluster, TunerConfig::quick(12)).tune();
    let live = tuned.selector();
    let compiled = tuned.compiled_selector_default();
    let service = DecisionService::compiled(compiled.clone()).with_cache(CACHE_CAPACITY, SEED);
    let queries = working_set(128);

    // Warm the cache so the cached column measures the steady state.
    for &(p, m) in &queries {
        black_box(service.decide(p, m));
    }

    let live_qps = queries_per_sec(min_window_s, &queries, |p, m| {
        black_box(live.ranking(p, m));
    });
    let compiled_qps = queries_per_sec(min_window_s, &queries, |p, m| {
        black_box(compiled.lookup(p, m));
    });
    let cached_qps = queries_per_sec(min_window_s, &queries, |p, m| {
        black_box(service.decide(p, m));
    });

    let compiled_speedup = compiled_qps / live_qps;
    let cached_speedup = cached_qps / live_qps;
    println!(
        "  {preset:<6}: live {live_qps:>12.0}/s, compiled {compiled_qps:>12.0}/s ({compiled_speedup:.1}x), \
         cached {cached_qps:>12.0}/s ({cached_speedup:.1}x), hit rate {:.3}",
        service.stats().hit_rate()
    );

    Json::Obj(vec![
        ("preset".to_owned(), Json::Str(preset)),
        ("rules".to_owned(), Json::Num(compiled.rule_count() as f64)),
        (
            "comm_blocks".to_owned(),
            Json::Num(compiled.comm_block_count() as f64),
        ),
        ("live_queries_per_s".to_owned(), Json::Num(live_qps)),
        ("compiled_queries_per_s".to_owned(), Json::Num(compiled_qps)),
        ("cached_queries_per_s".to_owned(), Json::Num(cached_qps)),
        ("compiled_speedup".to_owned(), Json::Num(compiled_speedup)),
        ("cached_speedup".to_owned(), Json::Num(cached_speedup)),
        (
            "cache_hit_rate".to_owned(),
            Json::Num(service.stats().hit_rate()),
        ),
    ])
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let min_window_s = if smoke { 0.05 } else { 0.3 };
    let presets: Vec<ClusterModel> = if smoke {
        vec![ClusterModel::gros().with_noise(NoiseParams::OFF)]
    } else {
        vec![
            ClusterModel::gros().with_noise(NoiseParams::OFF),
            ClusterModel::grisou().with_noise(NoiseParams::OFF),
        ]
    };
    println!(
        "selrate bench: smoke={smoke} window={min_window_s}s working_set={WORKING_SET} cache={CACHE_CAPACITY}"
    );

    let cells: Vec<Json> = presets
        .into_iter()
        .map(|c| bench_preset(c, min_window_s))
        .collect();

    let speedup_of = |c: &Json, key: &str| match c {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .expect("every cell records its speedups"),
        _ => unreachable!("cells are objects"),
    };
    let min_compiled = cells
        .iter()
        .map(|c| speedup_of(c, "compiled_speedup"))
        .fold(f64::INFINITY, f64::min);
    let max_compiled = cells
        .iter()
        .map(|c| speedup_of(c, "compiled_speedup"))
        .fold(0.0, f64::max);
    println!(
        "compiled speedup range: {min_compiled:.1}x .. {max_compiled:.1}x over {} presets",
        cells.len()
    );

    if smoke {
        assert!(
            min_compiled >= 1.0,
            "compiled lookup slower than live ranking ({min_compiled:.2}x)"
        );
        println!("smoke gate: compiled never slower than live ranking");
    }

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("selrate".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("working_set".to_owned(), Json::Num(WORKING_SET as f64)),
        (
            "cache_capacity".to_owned(),
            Json::Num(CACHE_CAPACITY as f64),
        ),
        ("min_compiled_speedup".to_owned(), Json::Num(min_compiled)),
        ("max_compiled_speedup".to_owned(), Json::Num(max_compiled)),
        ("cells".to_owned(), Json::Arr(cells)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_select.json");
    // Atomic write that refuses an empty `cells` array: a panicking or
    // degenerate run can never clobber the previous real artifact.
    match write_artifact(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
