//! Decision-server soak benchmark: sustained serving throughput under
//! hot swaps, health-gated refits, and an active fault plan.
//!
//! Where `selrate.rs` times the *lookup paths* in isolation, this bench
//! measures the numbers a deployment actually cares about from the
//! fault-tolerant server as a whole: sustained queries/second with
//! refits landing mid-traffic, tail latency, hot-swap latency, and the
//! fallback rate the fault plan induces. Each cell is one seeded
//! [`run_soak`] over a preset and fault plan; the soak's own invariant
//! validation runs on every cell and any violation fails the bench —
//! a performance number from a run that served torn answers is not a
//! performance number.
//!
//! Writes `BENCH_serve.json` at the repository root via
//! [`write_artifact`], which refuses to replace a previous artifact
//! with an empty-celled report — a cell panicking mid-run can never
//! clobber real results. Set `COLLSEL_BENCH_SMOKE=1` for the CI-sized
//! run.

use collsel::netsim::{Brownout, ClusterModel, FaultPlan, NoiseParams};
use collsel_expt::soak::{run_soak, SoakConfig};
use collsel_support::bench::write_artifact;
use collsel_support::{Json, ToJson};

/// One bench cell: a named soak configuration.
fn cell(name: &str, cluster: ClusterModel, faults: FaultPlan, queries: usize) -> Json {
    let mut config = SoakConfig::quick();
    config.cluster = cluster;
    config.queries = queries;
    config.server.faults = faults;
    let report = run_soak(&config);
    assert!(
        report.passed(),
        "{name}: soak invariants violated, refusing to report its numbers: {:#?}",
        report.violations
    );
    println!(
        "  {name:<16}: {:>9.0} queries/s, p99 {:>6} ns, {} swaps (worst {} ns), \
         fallback rate {:.3}%",
        report.qps,
        report.p99_latency_ns,
        report.swaps,
        report.swap_nanos_max,
        100.0 * report.fallback_rate
    );
    let mut fields = vec![("name".to_owned(), Json::Str(name.to_owned()))];
    if let Json::Obj(report_fields) = report.to_json() {
        fields.extend(report_fields);
    }
    Json::Obj(fields)
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let queries = if smoke { 12_000 } else { 60_000 };
    let gros = || ClusterModel::gros().with_noise(NoiseParams::OFF);
    println!("serve bench: smoke={smoke} queries-per-cell={queries}");

    // The quick preset's brown-out schedule, scaled is unnecessary: the
    // windows sit early in the virtual horizon regardless of length.
    let brownouts = SoakConfig::quick().server.faults;
    let mut cells = vec![
        cell("calm", gros(), FaultPlan::none(), queries),
        cell("brownouts", gros(), brownouts, queries),
        cell(
            "wide-brownout",
            gros(),
            FaultPlan::none()
                .try_with_brownout(Brownout::try_new(0, 0.001, 0.5, 50.0).expect("static window"))
                .expect("single window"),
            queries,
        ),
    ];
    if !smoke {
        cells.push(cell(
            "grisou-brownouts",
            ClusterModel::grisou().with_noise(NoiseParams::OFF),
            SoakConfig::quick().server.faults,
            queries,
        ));
    }

    let num = |c: &Json, key: &str| c.get(key).and_then(Json::as_f64).expect("cell field");
    let min_qps = cells
        .iter()
        .map(|c| num(c, "qps"))
        .fold(f64::INFINITY, f64::min);
    let calm_fallbacks = num(&cells[0], "fallbacks");
    let faulted_fallbacks = num(&cells[1], "fallbacks");
    println!(
        "min sustained rate {min_qps:.0} queries/s over {} cells; fallbacks calm={calm_fallbacks} \
         faulted={faulted_fallbacks}",
        cells.len()
    );
    if smoke {
        assert!(
            calm_fallbacks == 0.0,
            "calm cell must serve every answer from a generation"
        );
        assert!(
            faulted_fallbacks > 0.0,
            "brown-out cell must trip the watchdog"
        );
        println!("smoke gate: fallbacks appear exactly under faults");
    }

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("serve".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("queries_per_cell".to_owned(), Json::Num(queries as f64)),
        ("min_qps".to_owned(), Json::Num(min_qps)),
        ("cells".to_owned(), Json::Arr(cells)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match write_artifact(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
