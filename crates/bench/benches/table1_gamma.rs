//! Bench for Table 1: regenerates the γ(P) estimation on both clusters
//! at reduced scale, then measures the estimation experiment and the
//! γ-table queries the models perform at selection time.

use collsel::estim::{estimate_gamma, GammaConfig, Precision};
use collsel::model::GammaTable;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel_expt::table1::run_table1;
use collsel_expt::{scenarios, Fidelity};
use collsel_support::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let mut scs = scenarios(Fidelity::Quick);
    for sc in &mut scs {
        sc.cluster = sc.cluster.clone().with_noise(NoiseParams::OFF);
    }
    let cfg = GammaConfig {
        max_width: 7,
        calls_per_sample: 3,
        precision: Precision {
            rel_precision: 0.2,
            min_reps: 2,
            max_reps: 4,
        },
        ..GammaConfig::quick()
    };
    let t1 = run_table1(&scs, &cfg, 1);
    println!("\n{}", t1.to_text());

    let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
    c.bench_function("table1/estimate_gamma_width5", |b| {
        let small = GammaConfig {
            max_width: 5,
            ..cfg
        };
        b.iter(|| estimate_gamma(black_box(&cluster), &small, 1))
    });

    let table = GammaTable::from_pairs([(3, 1.08), (4, 1.17), (5, 1.25), (6, 1.34), (7, 1.42)]);
    c.bench_function("table1/gamma_lookup_and_extrapolate", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 2..64 {
                acc += table.gamma(black_box(p));
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
