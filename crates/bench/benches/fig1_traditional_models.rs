//! Bench for Fig. 1: regenerates the traditional-models-vs-experiment
//! comparison at reduced scale, then measures the kernels: traditional
//! model evaluation and the full Fig. 1 pipeline.

use collsel::coll::BcastAlg;
use collsel::model::{traditional, Hockney};
use collsel_bench::bench_scenario;
use collsel_expt::fig1::run_fig1;
use collsel_support::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let sc = bench_scenario();
    let fig1 = run_fig1(&sc, 16, 1);
    println!("\n{}", fig1.to_text());

    let hockney = Hockney::new(3.0e-5, 1.0e-9);
    c.bench_function("fig1/traditional_predict_all_algs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for alg in BcastAlg::ALL {
                acc += traditional::predict_bcast(
                    black_box(alg),
                    black_box(90),
                    black_box(1 << 20),
                    black_box(8192),
                    &hockney,
                );
            }
            acc
        })
    });

    c.bench_function("fig1/regenerate_reduced", |b| {
        b.iter(|| run_fig1(black_box(&sc), 16, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
