//! Bench for Fig. 5: regenerates one selection-accuracy panel at
//! reduced scale, then measures the sweep kernels: one full measured
//! point (all six algorithms) and the simulated broadcast itself.

use collsel::coll::{bcast, BcastAlg};
use collsel::mpi::simulate;
use collsel::{Tuner, TunerConfig};
use collsel_bench::{bench_scenario, quiet_cluster};
use collsel_expt::fig5::run_fig5;
use collsel_expt::sweep::measure_point;
use collsel_support::bench::{criterion_group, criterion_main, Criterion};
use collsel_support::Bytes;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let sc = bench_scenario();
    let tuned = vec![Tuner::new(sc.cluster.clone(), TunerConfig::quick(12)).tune()];
    let fig5 = run_fig5(std::slice::from_ref(&sc), &tuned, 3);
    println!("\n{}", fig5.to_text());

    c.bench_function("fig5/measure_point_p16_64KB", |b| {
        b.iter(|| {
            measure_point(
                black_box(&sc.cluster),
                16,
                64 * 1024,
                8 * 1024,
                &sc.precision,
                7,
            )
        })
    });

    let cluster = quiet_cluster();
    for alg in [BcastAlg::Binomial, BcastAlg::Chain, BcastAlg::SplitBinary] {
        c.bench_function(&format!("fig5/simulated_bcast_{alg}_p24_256KB"), |b| {
            b.iter(|| {
                let m = 256 * 1024;
                simulate(black_box(&cluster), 24, 1, |ctx| {
                    let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![1u8; m]));
                    bcast(ctx, alg, 0, msg, m, 8 * 1024).len()
                })
                .unwrap()
                .results[0]
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = regenerate_and_bench
}
criterion_main!(benches);
