//! Bench for Table 3: regenerates the selection-comparison table at
//! reduced scale, then measures the *runtime decision cost* — the
//! paper's efficiency claim is that evaluating the analytical models is
//! cheap enough to run inside `MPI_Bcast` itself.

use collsel::model::{GammaTable, Hockney};
use collsel::select::{ModelBasedSelector, OpenMpiFixedSelector, Selector};
use collsel::{Tuner, TunerConfig};
use collsel_bench::bench_scenario;
use collsel_expt::fig5::run_fig5;
use collsel_expt::table3::table3_from_fig5;
use collsel_support::bench::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let sc = bench_scenario();
    let tuned = vec![Tuner::new(sc.cluster.clone(), TunerConfig::quick(12)).tune()];
    let fig5 = run_fig5(std::slice::from_ref(&sc), &tuned, 3);
    let t3 = table3_from_fig5(&fig5, &[(sc.cluster.name().to_owned(), 16)]);
    println!("\n{}", t3.to_text());

    // Runtime decision cost: model-based vs native fixed rules.
    let gamma = GammaTable::from_pairs([(3, 1.08), (4, 1.17), (5, 1.25), (6, 1.34), (7, 1.42)]);
    let params: BTreeMap<_, _> = collsel::coll::BcastAlg::ALL
        .iter()
        .map(|&a| (a, Hockney::new(1.0e-5, 1.0e-9)))
        .collect();
    let model_sel = ModelBasedSelector::new(gamma, params, 8 * 1024);
    let ompi_sel = OpenMpiFixedSelector;

    c.bench_function("table3/select_model_based", |b| {
        b.iter(|| model_sel.select(black_box(100), black_box(1 << 20)))
    });
    c.bench_function("table3/select_open_mpi_fixed", |b| {
        b.iter(|| ompi_sel.select(black_box(100), black_box(1 << 20)))
    });
    c.bench_function("table3/model_ranking_all_algs", |b| {
        b.iter(|| model_sel.ranking(black_box(100), black_box(1 << 20)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = regenerate_and_bench
}
criterion_main!(benches);
