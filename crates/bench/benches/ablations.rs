//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. implementation-derived vs traditional model evaluation cost;
//! 2. discrete γ table vs linear-fit extrapolation;
//! 3. simulator throughput (the substrate's own cost);
//! 4. measurement-methodology cost (adaptive sampling convergence).
//!
//! Selection-*quality* ablations (per-algorithm vs shared parameters,
//! derived vs traditional model accuracy) are measured by the
//! integration test `tests/ablations.rs` — quality is an assertion, not
//! a timing.

use collsel::coll::{bcast, BcastAlg};
use collsel::estim::{sample_adaptive, Precision};
use collsel::model::{derived, traditional, GammaTable, Hockney};
use collsel::mpi::simulate;
use collsel_bench::quiet_cluster;
use collsel_support::bench::{criterion_group, criterion_main, Criterion};
use collsel_support::Bytes;
use std::hint::black_box;

fn model_eval(c: &mut Criterion) {
    let gamma = GammaTable::from_pairs([(3, 1.08), (4, 1.17), (5, 1.25), (6, 1.34), (7, 1.42)]);
    let hockney = Hockney::new(1.0e-5, 1.0e-9);
    c.bench_function("ablation/model_eval_derived", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for alg in BcastAlg::ALL {
                acc += derived::predict_bcast(
                    black_box(alg),
                    black_box(124),
                    black_box(1 << 22),
                    8192,
                    &gamma,
                    &hockney,
                );
            }
            acc
        })
    });
    c.bench_function("ablation/model_eval_traditional", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for alg in BcastAlg::ALL {
                acc += traditional::predict_bcast(
                    black_box(alg),
                    black_box(124),
                    black_box(1 << 22),
                    8192,
                    &hockney,
                );
            }
            acc
        })
    });
}

fn gamma_representations(c: &mut Criterion) {
    let table = GammaTable::from_pairs((3..=7).map(|p| (p, 1.0 + 0.09 * p as f64)));
    c.bench_function("ablation/gamma_discrete_hits", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 3..=7 {
                acc += table.gamma(black_box(p));
            }
            acc
        })
    });
    c.bench_function("ablation/gamma_extrapolated_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 8..=128 {
                acc += table.gamma(black_box(p));
            }
            acc
        })
    });
}

fn simulator_throughput(c: &mut Criterion) {
    let cluster = quiet_cluster();
    c.bench_function("ablation/simulate_binomial_p32_128KB", |b| {
        b.iter(|| {
            let m = 128 * 1024;
            simulate(black_box(&cluster), 32, 1, |ctx| {
                let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![1u8; m]));
                bcast(ctx, BcastAlg::Binomial, 0, msg, m, 8 * 1024).len()
            })
            .unwrap()
            .report
            .messages
        })
    });
    c.bench_function("ablation/simulate_pingpong_pair", |b| {
        b.iter(|| {
            simulate(black_box(&cluster), 2, 1, |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, Bytes::from_static(&[0u8; 64]));
                    ctx.recv(1, 1).0.len()
                } else {
                    let (m, _) = ctx.recv(0, 0);
                    ctx.send(0, 1, m);
                    0
                }
            })
            .unwrap()
            .results[0]
        })
    });
}

fn measurement_methodology(c: &mut Criterion) {
    c.bench_function("ablation/adaptive_sampling_convergence", |b| {
        b.iter(|| {
            let mut k = 0u64;
            sample_adaptive(&Precision::paper(), move |_| {
                k += 1;
                let wobble = ((k * 2654435761) % 997) as f64 / 997.0 - 0.5;
                vec![1.0e-4 * (1.0 + 0.02 * wobble)]
            })
            .n
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = model_eval, gamma_representations, simulator_throughput, measurement_methodology
}
criterion_main!(benches);
