//! Whole-trace replay throughput and the JCT policy gap: what the
//! paper's per-call selection advantage is worth at the job level.
//!
//! For each cluster preset and canned trace this bench times complete
//! trace replays (steps per second) on all three execution backends
//! under the fixed rules, then scores the selection policies — tuned
//! model argmin, Open MPI-style fixed rules, model-worst adversary —
//! by total job completion time on the DAG backend. The DAG tier
//! compiles each distinct step shape once through the process-wide
//! step memo and batch-replays everything else payload-free, so it
//! amortises across replays the way a campaign or a serving loop
//! does; the events tier re-records per replay and the threaded
//! oracle pays full freight every step.
//!
//! Writes `BENCH_replay.json` at the repository root. Set
//! `COLLSEL_BENCH_SMOKE=1` for the CI-sized run; smoke mode asserts
//! the DAG backend is not slower than events on whole-trace replay
//! and that the model-worst policy never beats the tuned one.

use collsel::mpi::Backend;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::{TunedModel, Tuner, TunerConfig};
use collsel_bench::quiet_cluster;
use collsel_expt::replay::{
    backend_name, degradation_pct, replay_trace, score_policies, ReplayOutcome, ReplayPolicy,
};
use collsel_expt::workload::{canned_dp, canned_pp, Trace};
use collsel_support::Json;
use std::time::Instant;

const SEED: u64 = 0x5EED_2E91;

/// Times whole-trace replays by doubling the batch until the window is
/// long enough to trust, returning replays per second.
fn replays_per_sec(min_window_s: f64, mut run: impl FnMut(u64)) -> f64 {
    let mut batch = 1u64;
    let mut next_seed = 0u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            run(SEED.wrapping_add(next_seed));
            next_seed += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window_s {
            return batch as f64 / elapsed;
        }
        batch *= 2;
    }
}

/// One (preset, trace) cell: steps/s per backend plus the JCT policy
/// comparison on the DAG backend.
fn bench_cell(
    cluster: &ClusterModel,
    model: &TunedModel,
    trace: &Trace,
    min_window_s: f64,
) -> Json {
    // Cross-check before timing: all three backends must agree on JCT.
    let reference = replay_trace(cluster, trace, &ReplayPolicy::Fixed, Backend::Dag, SEED)
        .expect("dag replay completes");
    for backend in [Backend::Events, Backend::Threads] {
        let out = replay_trace(cluster, trace, &ReplayPolicy::Fixed, backend, SEED)
            .expect("replay completes");
        assert_eq!(
            reference.jct_ns,
            out.jct_ns,
            "backends diverged on {} / {}",
            cluster.name(),
            trace.name
        );
    }

    let steps = trace.steps.len() as f64;
    let mut backend_rates = Vec::new();
    let mut dag_steps_per_s = 0.0;
    let mut events_steps_per_s = 0.0;
    for backend in [Backend::Dag, Backend::Events, Backend::Threads] {
        let rps = replays_per_sec(min_window_s, |seed| {
            let _ = replay_trace(cluster, trace, &ReplayPolicy::Fixed, backend, seed)
                .expect("replay completes");
        });
        let steps_per_s = rps * steps;
        match backend {
            Backend::Dag => dag_steps_per_s = steps_per_s,
            Backend::Events => events_steps_per_s = steps_per_s,
            Backend::Threads => {}
        }
        backend_rates.push(Json::Obj(vec![
            (
                "backend".to_owned(),
                Json::Str(backend_name(backend).to_owned()),
            ),
            ("replays_per_s".to_owned(), Json::Num(rps)),
            ("steps_per_s".to_owned(), Json::Num(steps_per_s)),
        ]));
    }

    let selector = model.multi_selector();
    let outcomes = score_policies(
        cluster,
        trace,
        &[
            ReplayPolicy::Tuned(&selector),
            ReplayPolicy::Fixed,
            ReplayPolicy::Worst(&selector),
        ],
        Backend::Dag,
        SEED,
    )
    .expect("policy replays complete");
    let best = outcomes
        .iter()
        .min_by_key(|o| o.jct_ns)
        .cloned()
        .expect("three outcomes");
    let jct = |name: &str| -> &ReplayOutcome {
        outcomes
            .iter()
            .find(|o| o.selector == name)
            .expect("policy scored")
    };
    let (tuned, fixed, worst) = (jct("tuned"), jct("fixed"), jct("worst"));
    // The headline number: what the fixed rules cost vs the tuned
    // model on this whole job, in percent.
    let tuned_vs_fixed_pct = degradation_pct(fixed, tuned);
    let worst_vs_tuned_pct = degradation_pct(worst, tuned);

    println!(
        "  {:<6} {:<16} dag {dag_steps_per_s:>8.1} steps/s, events {events_steps_per_s:>8.1}, \
         JCT tuned {:.3}ms fixed {:.3}ms ({tuned_vs_fixed_pct:+.1}%) \
         worst {:.3}ms ({worst_vs_tuned_pct:+.1}%)",
        cluster.name(),
        trace.name,
        tuned.jct_s * 1e3,
        fixed.jct_s * 1e3,
        worst.jct_s * 1e3,
    );

    Json::Obj(vec![
        ("preset".to_owned(), Json::Str(cluster.name().to_owned())),
        ("trace".to_owned(), Json::Str(trace.name.clone())),
        ("steps".to_owned(), Json::Num(steps)),
        ("calls".to_owned(), Json::Num(trace.total_calls() as f64)),
        ("backends".to_owned(), Json::Arr(backend_rates)),
        ("dag_steps_per_s".to_owned(), Json::Num(dag_steps_per_s)),
        (
            "events_steps_per_s".to_owned(),
            Json::Num(events_steps_per_s),
        ),
        ("best_selector".to_owned(), Json::Str(best.selector.clone())),
        ("tuned_jct_ns".to_owned(), Json::Num(tuned.jct_ns as f64)),
        ("fixed_jct_ns".to_owned(), Json::Num(fixed.jct_ns as f64)),
        ("worst_jct_ns".to_owned(), Json::Num(worst.jct_ns as f64)),
        (
            "tuned_vs_fixed_pct".to_owned(),
            Json::Num(tuned_vs_fixed_pct),
        ),
        (
            "worst_vs_tuned_pct".to_owned(),
            Json::Num(worst_vs_tuned_pct),
        ),
    ])
}

/// Reads one numeric field out of a cell object.
fn field(c: &Json, name: &str) -> f64 {
    match c {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .unwrap_or_else(|| panic!("every cell records {name}")),
        _ => unreachable!("cells are objects"),
    }
}

fn main() {
    let smoke = std::env::var("COLLSEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let min_window_s = if smoke { 0.05 } else { 0.3 };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("replayrate bench: smoke={smoke} window={min_window_s}s host_threads={host_threads}");

    let mut cells = Vec::new();
    for cluster in [
        quiet_cluster(),
        ClusterModel::grisou().with_noise(NoiseParams::OFF),
    ] {
        // One quick all-collective model per preset: the tuned policy
        // needs per-collective fits to differ from the fixed rules.
        let model = Tuner::new(cluster.clone(), TunerConfig::quick(8)).tune_all();
        for trace in [canned_dp(), canned_pp()] {
            cells.push(bench_cell(&cluster, &model, &trace, min_window_s));
        }
    }

    let min_dag_vs_events = cells
        .iter()
        .map(|c| field(c, "dag_steps_per_s") / field(c, "events_steps_per_s"))
        .fold(f64::INFINITY, f64::min);
    let max_tuned_vs_fixed = cells
        .iter()
        .map(|c| field(c, "tuned_vs_fixed_pct"))
        .fold(0.0, f64::max);
    println!(
        "dag/events whole-trace speedup >= {min_dag_vs_events:.2}x; \
         fixed rules cost up to {max_tuned_vs_fixed:.1}% JCT vs tuned over {} cells",
        cells.len()
    );

    if smoke {
        assert!(
            min_dag_vs_events >= 1.0,
            "dag slower than events on whole-trace replay ({min_dag_vs_events:.2}x)"
        );
        for c in &cells {
            assert!(
                field(c, "worst_vs_tuned_pct") >= 0.0,
                "model-worst beat the tuned policy"
            );
        }
        println!("smoke gate: dag >= events on every trace, worst never beats tuned");
    }

    let json = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("replayrate".to_owned())),
        ("smoke".to_owned(), Json::Bool(smoke)),
        ("host_threads".to_owned(), Json::Num(host_threads as f64)),
        ("min_dag_vs_events".to_owned(), Json::Num(min_dag_vs_events)),
        (
            "max_tuned_vs_fixed_pct".to_owned(),
            Json::Num(max_tuned_vs_fixed),
        ),
        ("cells".to_owned(), Json::Arr(cells)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    match collsel_support::bench::write_artifact(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
