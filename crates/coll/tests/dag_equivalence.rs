//! Property suite for the compiled timing-DAG backend: for every
//! collective the repo tunes, lowering the recorded [`Schedule`] to a
//! [`TimingDag`] and replaying it payload-free must be *bit-identical*
//! to the event-driven schedule replay — same finish times, makespan,
//! traffic counters, traces and `wtime` observations — across grid and
//! off-grid geometries, under fault plans, under the virtual-time
//! watchdog, and regardless of the host thread budget.
//!
//! The schedule replay is itself gated against the threaded oracle
//! elsewhere (`crates/mpi/tests/runtime*.rs`), so equality here chains
//! all three execution tiers together.

use collsel_coll::compile::compile_timed_collective;
use collsel_coll::{Alg, Collective};
use collsel_mpi::{
    simulate_dag, simulate_scheduled, DagEvaluator, Schedule, ScheduledRun, SimError, SimOptions,
    TimingDag,
};
use collsel_netsim::{ClusterModel, FaultPlan, SimSpan};
use std::sync::Arc;

const ROOT: usize = 0;
const SEG: usize = 1024;
const REPS: usize = 2;

/// Full structural equality: the aggregate report (finish times,
/// makespan, message/byte counters, trace) and every rank's clock
/// observations.
fn assert_identical(ctx: &str, replay: &ScheduledRun, dag: &ScheduledRun) {
    assert_eq!(replay.report, dag.report, "{ctx}: reports diverged");
    assert_eq!(replay.wtimes, dag.wtimes, "{ctx}: wtimes diverged");
}

/// Records the measurement round for `alg` at `(p, m)` and checks the
/// DAG evaluation against the schedule replay at each seed.
fn check_cell(cluster: &ClusterModel, alg: Alg, p: usize, m: usize, seeds: &[u64]) {
    let ctx = format!("{} p={p} m={m}", alg.qualified_name());
    let sched = compile_timed_collective(cluster, alg, p, ROOT, m, SEG, REPS)
        .unwrap_or_else(|e| panic!("{ctx}: recording failed: {e}"));
    let dag = TimingDag::compile(cluster, &sched).expect("compiles");
    let opts = SimOptions {
        traced: true,
        deadline: None,
    };
    for &seed in seeds {
        let replay = simulate_scheduled(cluster, &sched, seed, opts)
            .unwrap_or_else(|e| panic!("{ctx} seed={seed}: replay failed: {e}"));
        let fast = simulate_dag(cluster, &dag, seed, opts)
            .unwrap_or_else(|e| panic!("{ctx} seed={seed}: dag failed: {e}"));
        assert_identical(&format!("{ctx} seed={seed}"), &replay, &fast);
    }
}

#[test]
fn every_algorithm_bit_identical_on_grid_cells() {
    let cluster = ClusterModel::grisou();
    for coll in Collective::ALL {
        for &alg in coll.algorithms() {
            // A power-of-two and a non-power-of-two process count, one
            // eager and one rendezvous-sized message each.
            for (p, m) in [(8, 4 * 1024), (8, 128 * 1024), (6, 4 * 1024)] {
                check_cell(&cluster, alg, p, m, &[0, 42]);
            }
        }
    }
}

#[test]
fn off_grid_cells_bit_identical() {
    // Geometries a tuning grid would never sample directly: prime
    // process counts and ragged message sizes that do not divide into
    // segments or ranks evenly.
    let cluster = ClusterModel::gros();
    for coll in Collective::ALL {
        let alg = coll.algorithms()[0];
        for (p, m) in [(5, 3000), (7, 999), (13, 10_000)] {
            check_cell(&cluster, alg, p, m, &[7]);
        }
    }
}

#[test]
fn fault_plans_bit_identical() {
    // Faults are a replay-time property of the cluster, not of the
    // schedule: one recording must replay identically on both backends
    // under degraded links, stragglers and bandwidth brown-outs.
    let base = ClusterModel::gros();
    let algs = [
        Collective::Bcast.algorithms()[5],     // binomial bcast
        Collective::Allreduce.algorithms()[1], // recursive doubling
        Collective::Alltoall.algorithms()[1],  // pairwise
    ];
    for alg in algs {
        let sched = compile_timed_collective(&base, alg, 9, ROOT, 64 * 1024, SEG, REPS)
            .expect("recording succeeds");
        let dag = TimingDag::compile(&base, &sched).expect("compiles");
        for spec in ["degraded-link:3", "straggler:11", "brownout:5"] {
            let plan = FaultPlan::parse(spec, base.nodes()).expect("canned fault plan");
            let faulted = base.clone().with_faults(plan);
            for seed in [1u64, 0xFEED] {
                let ctx = format!("{} under {spec} seed={seed}", alg.qualified_name());
                let replay = simulate_scheduled(&faulted, &sched, seed, SimOptions::default())
                    .expect("replay completes");
                let fast = simulate_dag(&faulted, &dag, seed, SimOptions::default())
                    .expect("dag completes");
                assert_identical(&ctx, &replay, &fast);
            }
        }
    }
}

#[test]
fn watchdog_agreement_on_trip_and_pass() {
    let cluster = ClusterModel::grisou();
    let alg = Collective::Allgather.algorithms()[0]; // ring
    let sched = compile_timed_collective(&cluster, alg, 8, ROOT, 32 * 1024, SEG, REPS)
        .expect("recording succeeds");
    let dag = TimingDag::compile(&cluster, &sched).expect("compiles");

    // A deadline no collective can meet: both backends must abort with
    // the *same* timeout error value (same virtual time, same detail).
    let tight = SimOptions::with_deadline(SimSpan::from_nanos(50));
    for seed in [0u64, 9] {
        let replay_err =
            simulate_scheduled(&cluster, &sched, seed, tight).expect_err("deadline trips");
        let dag_err = simulate_dag(&cluster, &dag, seed, tight).expect_err("deadline trips");
        assert!(matches!(replay_err, SimError::Timeout { .. }));
        assert_eq!(
            replay_err, dag_err,
            "timeout errors must be value-identical"
        );
    }

    // A generous deadline: both pass, still bit-identical.
    let loose = SimOptions::with_deadline(SimSpan::from_secs_f64(3600.0));
    for seed in [0u64, 9] {
        let replay = simulate_scheduled(&cluster, &sched, seed, loose).expect("passes");
        let fast = simulate_dag(&cluster, &dag, seed, loose).expect("passes");
        assert_identical(&format!("loose deadline seed={seed}"), &replay, &fast);
    }
}

#[test]
fn results_invariant_under_thread_budget() {
    // `COLLSEL_THREADS` (and the programmatic override backing it)
    // sizes the host-side worker pool used for recording and batch
    // parallelism. Neither recording nor evaluation may let that
    // budget leak into virtual time: the whole record → compile → run
    // pipeline must produce byte-identical results at any setting.
    let cluster = ClusterModel::grisou();
    let alg = Collective::Reduce.algorithms()[5]; // binomial
    let mut baseline: Option<(ScheduledRun, Vec<ScheduledRun>)> = None;
    for threads in [1usize, 2, 4] {
        collsel_support::pool::set_thread_override(threads);
        let run = run_pipeline(&cluster, alg);
        collsel_support::pool::clear_thread_override();
        match &baseline {
            None => baseline = Some(run),
            Some((single, reps)) => {
                assert_identical(&format!("threads={threads} single run"), single, &run.0);
                assert_eq!(reps.len(), run.1.len());
                for (i, (a, b)) in reps.iter().zip(&run.1).enumerate() {
                    assert_identical(&format!("threads={threads} rep {i}"), a, b);
                }
            }
        }
    }
}

/// Records, compiles and evaluates one cell: a single replay-vs-dag
/// checked run plus a batched [`DagEvaluator::evaluate_reps`] sweep.
fn run_pipeline(cluster: &ClusterModel, alg: Alg) -> (ScheduledRun, Vec<ScheduledRun>) {
    let sched: Schedule = compile_timed_collective(cluster, alg, 8, ROOT, 16 * 1024, SEG, REPS)
        .expect("recording succeeds");
    let dag = Arc::new(TimingDag::compile(cluster, &sched).expect("compiles"));
    let replay =
        simulate_scheduled(cluster, &sched, 5, SimOptions::default()).expect("replay completes");
    let fast = simulate_dag(cluster, &dag, 5, SimOptions::default()).expect("dag completes");
    assert_identical("pipeline seed=5", &replay, &fast);
    let reps = DagEvaluator::new(cluster, dag)
        .evaluate_reps(100, 4, SimOptions::default())
        .expect("batch completes");
    (fast, reps)
}
