//! Correctness of every broadcast algorithm: all ranks must end up with
//! exactly the root's message, for a grid of process counts, roots,
//! message sizes and segment sizes.

use collsel_coll::{bcast, bcast_k_chain, BcastAlg};
use collsel_mpi::simulate;
use collsel_netsim::{ClusterModel, NoiseParams, SimSpan};
use collsel_support::Bytes;

/// A fast cluster so the exhaustive grid stays cheap in real time.
fn test_cluster(nodes: usize) -> ClusterModel {
    ClusterModel::builder("test", nodes)
        .bandwidth_gbps(10.0)
        .wire_latency(SimSpan::from_micros(5))
        .noise(NoiseParams::OFF)
        .build()
}

/// A recognisable payload: position-dependent bytes so reordering or
/// mis-slicing is detected, not just length errors.
fn message(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>())
}

fn check(alg: BcastAlg, p: usize, root: usize, len: usize, seg: usize) {
    let cluster = test_cluster(p);
    let msg = message(len);
    let expected = msg.clone();
    let out = simulate(&cluster, p, 0, move |ctx| {
        let m = (ctx.rank() == root).then(|| msg.clone());
        bcast(ctx, alg, root, m, len, seg)
    })
    .unwrap_or_else(|e| panic!("{alg} p={p} root={root} len={len} seg={seg}: {e}"));
    for (rank, got) in out.results.iter().enumerate() {
        assert_eq!(
            got, &expected,
            "{alg} p={p} root={root} len={len} seg={seg}: rank {rank} got wrong data"
        );
    }
}

#[test]
fn all_algorithms_small_grid() {
    for alg in BcastAlg::ALL {
        for p in [1, 2, 3, 4, 5, 8] {
            for root in [0, p - 1] {
                check(alg, p, root, 1000, 256);
            }
        }
    }
}

#[test]
fn all_algorithms_medium_world() {
    for alg in BcastAlg::ALL {
        check(alg, 17, 5, 10_000, 1024);
    }
}

#[test]
fn odd_and_exact_segment_boundaries() {
    for alg in BcastAlg::ALL {
        // Exact multiple of the segment size.
        check(alg, 6, 0, 2048, 256);
        // One byte over.
        check(alg, 6, 0, 2049, 256);
        // One byte under.
        check(alg, 6, 0, 2047, 256);
        // Message smaller than one segment.
        check(alg, 6, 0, 100, 256);
        // Single byte.
        check(alg, 6, 0, 1, 256);
    }
}

#[test]
fn zero_length_broadcast() {
    for alg in BcastAlg::ALL {
        check(alg, 5, 0, 0, 256);
    }
}

#[test]
fn segment_size_one() {
    for alg in BcastAlg::ALL {
        check(alg, 4, 0, 64, 1);
    }
}

#[test]
fn segment_size_larger_than_message() {
    for alg in BcastAlg::ALL {
        check(alg, 7, 3, 128, 8192);
    }
}

#[test]
fn large_message_crosses_rendezvous_threshold() {
    // Default eager threshold is 64 KB; the linear algorithm sends the
    // whole 256 KB message (rendezvous) while segmented ones stay eager.
    for alg in [BcastAlg::Linear, BcastAlg::Binomial, BcastAlg::SplitBinary] {
        check(alg, 9, 0, 256 * 1024, 8 * 1024);
    }
}

#[test]
fn k_chain_various_fanouts() {
    let p = 11;
    for k in [1, 2, 3, 4, 8, 16] {
        let cluster = test_cluster(p);
        let len = 5000;
        let msg = message(len);
        let expected = msg.clone();
        let out = simulate(&cluster, p, 0, move |ctx| {
            let m = (ctx.rank() == 0).then(|| msg.clone());
            bcast_k_chain(ctx, k, 0, m, len, 512)
        })
        .unwrap();
        assert!(out.results.iter().all(|g| g == &expected), "k = {k}");
    }
}

#[test]
fn every_rank_can_be_root() {
    let p = 6;
    for alg in BcastAlg::ALL {
        for root in 0..p {
            check(alg, p, root, 777, 128);
        }
    }
}

#[test]
fn broadcast_on_calibrated_presets() {
    for cluster in [ClusterModel::grisou(), ClusterModel::gros()] {
        for alg in BcastAlg::ALL {
            let len = 32 * 1024;
            let msg = message(len);
            let expected = msg.clone();
            let out = simulate(&cluster, 24, 1, move |ctx| {
                let m = (ctx.rank() == 0).then(|| msg.clone());
                bcast(ctx, alg, 0, m, len, 8 * 1024)
            })
            .unwrap();
            assert!(
                out.results.iter().all(|g| g == &expected),
                "{alg} on {}",
                cluster.name()
            );
        }
    }
}

#[test]
fn back_to_back_broadcasts_do_not_interfere() {
    // Two different algorithms in sequence within one simulated program;
    // stale matching state from the first must not corrupt the second.
    let p = 8;
    let cluster = test_cluster(p);
    let out = simulate(&cluster, p, 0, |ctx| {
        let m1 = (ctx.rank() == 0).then(|| message(3000));
        let r1 = bcast(ctx, BcastAlg::Binomial, 0, m1, 3000, 512);
        let m2 = (ctx.rank() == 2).then(|| message(500));
        let r2 = bcast(ctx, BcastAlg::SplitBinary, 2, m2, 500, 128);
        let m3 = (ctx.rank() == 1).then(|| message(4096));
        let r3 = bcast(ctx, BcastAlg::Chain, 1, m3, 4096, 1024);
        (r1, r2, r3)
    })
    .unwrap();
    for (r1, r2, r3) in &out.results {
        assert_eq!(r1, &message(3000));
        assert_eq!(r2, &message(500));
        assert_eq!(r3, &message(4096));
    }
}

#[test]
fn message_counts_match_tree_edges() {
    // Each segmented algorithm sends ns segments over each of the P-1
    // tree edges (split-binary differs: halves + exchange).
    let p = 8;
    let len = 4096;
    let seg = 1024; // ns = 4
    let cluster = test_cluster(p);
    for alg in [BcastAlg::Chain, BcastAlg::Binary, BcastAlg::Binomial] {
        let msg = message(len);
        let out = simulate(&cluster, p, 0, move |ctx| {
            let m = (ctx.rank() == 0).then(|| msg.clone());
            bcast(ctx, alg, 0, m, len, seg)
        })
        .unwrap();
        assert_eq!(out.report.messages, ((p - 1) * 4) as u64, "{alg}");
        assert_eq!(out.report.bytes, ((p - 1) * len) as u64, "{alg}");
    }
}

#[test]
fn broadcast_with_block_mapping_and_shared_nodes() {
    // Two ranks per node, Open MPI-style block mapping: neighbours are
    // co-located and use the shared-memory path mid-tree.
    use collsel_netsim::RankMapping;
    let cluster = ClusterModel::builder("blocky", 6)
        .cpus_per_node(2)
        .mapping(RankMapping::Block)
        .noise(NoiseParams::OFF)
        .build();
    for alg in BcastAlg::ALL {
        let len = 6000;
        let msg = message(len);
        let expected = msg.clone();
        let out = simulate(&cluster, 12, 0, move |ctx| {
            let m = (ctx.rank() == 0).then(|| msg.clone());
            bcast(ctx, alg, 0, m, len, 512)
        })
        .unwrap();
        assert!(out.results.iter().all(|g| g == &expected), "{alg}");
        assert!(out.report.shm_messages > 0, "{alg} should cross shm paths");
    }
}

#[test]
fn broadcast_on_oversubscribed_racks() {
    let cluster = ClusterModel::builder("racked", 12)
        .racks(4, 3.0, collsel_netsim::SimSpan::from_micros(4))
        .noise(NoiseParams::OFF)
        .build();
    for alg in BcastAlg::ALL {
        let len = 40_000;
        let msg = message(len);
        let expected = msg.clone();
        let out = simulate(&cluster, 12, 0, move |ctx| {
            let m = (ctx.rank() == 0).then(|| msg.clone());
            bcast(ctx, alg, 0, m, len, 4096)
        })
        .unwrap();
        assert!(out.results.iter().all(|g| g == &expected), "{alg}");
    }
}
