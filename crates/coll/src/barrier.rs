//! Barrier algorithms.
//!
//! The runtime's built-in [`Ctx::barrier`] is an *ideal* synchroniser
//! used for measurement framing. This module provides real
//! message-passing barriers for experiments that want barrier cost on
//! the wire, ported from Open MPI:
//!
//! * [`barrier_dissemination`] — the classic log₂P-round dissemination
//!   barrier (`barrier_intra_bruck`);
//! * [`barrier_linear`] — a flat gather-then-release barrier
//!   (`barrier_intra_basic_linear`).

use collsel_mpi::Comm;
use collsel_support::Bytes;

const TAG_BARRIER: u32 = 0xD;

/// Dissemination (Bruck) barrier: in round `k`, rank `r` sends to
/// `(r + 2^k) mod P` and receives from `(r - 2^k) mod P`; after
/// `⌈log₂ P⌉` rounds every rank has transitively heard from every other.
pub fn barrier_dissemination<C: Comm>(ctx: &mut C) {
    let p = ctx.size();
    if p == 1 {
        return;
    }
    let me = ctx.rank();
    let mut dist = 1;
    while dist < p {
        let to = (me + dist) % p;
        let from = (me + p - dist) % p;
        let _ = ctx.sendrecv(to, TAG_BARRIER, Bytes::new(), from, TAG_BARRIER);
        dist *= 2;
    }
}

/// Flat barrier: everyone signals rank 0; rank 0 releases everyone.
pub fn barrier_linear<C: Comm>(ctx: &mut C) {
    let p = ctx.size();
    if p == 1 {
        return;
    }
    if ctx.rank() == 0 {
        let reqs: Vec<_> = (1..p).map(|src| ctx.irecv(src, TAG_BARRIER)).collect();
        let _ = ctx.wait_all_recvs(reqs);
        let sends = (1..p)
            .map(|dst| ctx.isend(dst, TAG_BARRIER, Bytes::new()))
            .collect();
        ctx.wait_all_sends(sends);
    } else {
        ctx.send(0, TAG_BARRIER, Bytes::new());
        let _ = ctx.recv(0, TAG_BARRIER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::{ClusterModel, SimTime};

    /// After a correct barrier, no rank's exit time may precede any
    /// rank's entry time.
    fn assert_barrier_property(entries: &[SimTime], exits: &[SimTime]) {
        let latest_entry = entries.iter().copied().fold(SimTime::ZERO, SimTime::max);
        for (r, &exit) in exits.iter().enumerate() {
            assert!(
                exit >= latest_entry,
                "rank {r} left the barrier at {exit} before the last entry {latest_entry}"
            );
        }
    }

    fn run_barrier(f: impl Fn(&mut collsel_mpi::Ctx) + Sync, p: usize) {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, p, 0, |ctx| {
            // Stagger the ranks by unequal prior work.
            if ctx.rank() % 3 == 0 {
                ctx.send(ctx.rank(), 99, Bytes::from(vec![0u8; 40_000]));
                let _ = ctx.recv(ctx.rank(), 99);
            }
            let entry = ctx.wtime();
            f(ctx);
            (entry, ctx.wtime())
        })
        .unwrap();
        let (entries, exits): (Vec<_>, Vec<_>) = out.results.into_iter().unzip();
        assert_barrier_property(&entries, &exits);
    }

    #[test]
    fn dissemination_barrier_synchronises() {
        for p in [2, 3, 4, 7, 16, 33] {
            run_barrier(barrier_dissemination, p);
        }
    }

    #[test]
    fn linear_barrier_synchronises() {
        for p in [2, 3, 4, 7, 16] {
            run_barrier(barrier_linear, p);
        }
    }

    #[test]
    fn single_rank_barriers_are_noops() {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, 1, 0, |ctx| {
            barrier_dissemination(ctx);
            barrier_linear(ctx);
            ctx.wtime()
        })
        .unwrap();
        assert_eq!(out.results[0], SimTime::ZERO);
    }

    #[test]
    fn dissemination_uses_log_rounds_of_messages() {
        let cluster = ClusterModel::gros();
        let p = 8;
        let out = simulate(&cluster, p, 0, barrier_dissemination).unwrap();
        // 3 rounds x 8 ranks, one send each.
        assert_eq!(out.report.messages, 24);
    }
}
