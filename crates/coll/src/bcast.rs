//! Broadcast algorithm implementations, ported from Open MPI 3.1
//! (`coll/base/coll_base_bcast.c`).
//!
//! All segmented algorithms share the pipelined tree engine
//! [`bcast_tree_segmented`] (the port of
//! `ompi_coll_base_bcast_intra_generic`): the root streams segments to
//! its children one stage at a time; interior ranks pre-post the next
//! receive, wait for the current segment, forward it to their children
//! with non-blocking sends, and wait for those sends before forwarding
//! the next segment. This per-stage "non-blocking linear broadcast" is
//! exactly the building block the paper's implementation-derived models
//! capture with the γ(P) factor.
//!
//! As in MPI, every rank knows the message length up front (the `count`
//! argument of `MPI_Bcast`); only the root supplies the payload.
//!
//! The caller-facing entry point is [`bcast`], selecting by
//! [`BcastAlg`].

use crate::alg::{BcastAlg, DEFAULT_CHAIN_FANOUT};
use crate::topology::Topology;
use collsel_mpi::Comm;
use collsel_support::{Bytes, BytesMut};

/// Internal tag for broadcast pipeline traffic.
const TAG_BCAST: u32 = 0xB;
/// Internal tag for the split-binary half exchange.
const TAG_BCAST_XCHG: u32 = 0xB1;

/// Number of pipeline segments for a `len`-byte message (at least one,
/// so a zero-length broadcast still synchronises the tree).
fn num_segments(len: usize, seg_size: usize) -> usize {
    len.div_ceil(seg_size).max(1)
}

/// Splits `msg` into exactly [`num_segments`] segments of `seg_size`
/// bytes (the last possibly shorter, or empty for a zero-length
/// message).
fn segments(msg: &Bytes, seg_size: usize) -> Vec<Bytes> {
    let ns = num_segments(msg.len(), seg_size);
    (0..ns)
        .map(|i| {
            let start = (i * seg_size).min(msg.len());
            let end = ((i + 1) * seg_size).min(msg.len());
            msg.slice(start..end)
        })
        .collect()
}

/// Validates the common broadcast arguments and returns the root's
/// payload when this rank is the root.
fn check_args<C: Comm>(ctx: &C, root: usize, msg: &Option<Bytes>, len: usize) {
    assert!(root < ctx.size(), "bcast root {root} out of range");
    if ctx.rank() == root {
        let m = msg.as_ref().expect("bcast root must supply the message");
        assert_eq!(m.len(), len, "root payload length disagrees with len");
    }
}

/// Broadcasts a `len`-byte message from `root` to every rank using
/// `alg`, returning the full message on every rank.
///
/// Only the root passes the payload (`msg`); all ranks pass the same
/// `len`, mirroring `MPI_Bcast`'s `count` argument. `seg_size` is the
/// pipeline segment size in bytes for the segmented algorithms (the
/// paper uses 8 KB); [`BcastAlg::Linear`] ignores it.
///
/// # Panics
///
/// Panics if `root` is out of range, if the root's payload is missing or
/// of the wrong length, or if `seg_size` is zero for a segmented
/// algorithm.
pub fn bcast<C: Comm>(
    ctx: &mut C,
    alg: BcastAlg,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    match alg {
        BcastAlg::Linear => bcast_linear(ctx, root, msg, len),
        BcastAlg::Chain => bcast_chain(ctx, root, msg, len, seg_size),
        BcastAlg::KChain => bcast_k_chain(ctx, DEFAULT_CHAIN_FANOUT, root, msg, len, seg_size),
        BcastAlg::SplitBinary => bcast_split_binary(ctx, root, msg, len, seg_size),
        BcastAlg::Binary => bcast_binary(ctx, root, msg, len, seg_size),
        BcastAlg::Binomial => bcast_binomial(ctx, root, msg, len, seg_size),
    }
}

/// Flat non-segmented broadcast (`bcast_intra_basic_linear`): the root
/// posts one non-blocking send of the whole message per rank, then waits
/// for all of them; everyone else receives once.
pub fn bcast_linear<C: Comm>(ctx: &mut C, root: usize, msg: Option<Bytes>, len: usize) -> Bytes {
    check_args(ctx, root, &msg, len);
    if ctx.size() == 1 {
        return msg.expect("root supplies the message");
    }
    if ctx.rank() == root {
        let msg = msg.expect("root supplies the message");
        let sends = (0..ctx.size())
            .filter(|&dst| dst != root)
            .map(|dst| ctx.isend(dst, TAG_BCAST, msg.clone()))
            .collect();
        ctx.wait_all_sends(sends);
        msg
    } else {
        ctx.recv(root, TAG_BCAST).0
    }
}

/// Pipelined broadcast down a single chain (`bcast_intra_pipeline`).
pub fn bcast_chain<C: Comm>(
    ctx: &mut C,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    let tree = Topology::chain(ctx.size(), root);
    bcast_tree_segmented(ctx, &tree, root, msg, len, seg_size)
}

/// Pipelined broadcast down `k` parallel chains (`bcast_intra_chain`,
/// the paper's *K-Chain tree*; Open MPI defaults to 4 chains).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn bcast_k_chain<C: Comm>(
    ctx: &mut C,
    k: usize,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    let tree = Topology::k_chain(k, ctx.size(), root);
    bcast_tree_segmented(ctx, &tree, root, msg, len, seg_size)
}

/// Segmented pipelined broadcast down a heap-shaped binary tree
/// (`bcast_intra_bintree`).
pub fn bcast_binary<C: Comm>(
    ctx: &mut C,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    let tree = Topology::binary(ctx.size(), root);
    bcast_tree_segmented(ctx, &tree, root, msg, len, seg_size)
}

/// Segmented pipelined broadcast down a balanced binomial tree
/// (`bcast_intra_binomial`; modelled in Sect. 3.1 of the paper).
pub fn bcast_binomial<C: Comm>(
    ctx: &mut C,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    let tree = Topology::binomial(ctx.size(), root);
    bcast_tree_segmented(ctx, &tree, root, msg, len, seg_size)
}

/// The shared pipelined tree engine
/// (`ompi_coll_base_bcast_intra_generic`).
///
/// Returns the reassembled message on every rank.
///
/// # Panics
///
/// Panics if `seg_size` is zero or the arguments are inconsistent (see
/// [`bcast`]).
pub fn bcast_tree_segmented<C: Comm>(
    ctx: &mut C,
    tree: &Topology,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    assert!(seg_size > 0, "segment size must be positive");
    check_args(ctx, root, &msg, len);
    debug_assert_eq!(tree.root(), root);
    if ctx.size() == 1 {
        return msg.expect("root supplies the message");
    }
    let ns = num_segments(len, seg_size);

    if ctx.rank() == root {
        let msg = msg.expect("root supplies the message");
        let children = tree.children(root).to_vec();
        for seg in segments(&msg, seg_size) {
            // One stage per segment: a non-blocking linear broadcast to
            // the children, completed before the next segment starts.
            let sends = children
                .iter()
                .map(|&c| ctx.isend(c, TAG_BCAST, seg.clone()))
                .collect();
            ctx.wait_all_sends(sends);
        }
        msg
    } else {
        let parent = tree.parent(ctx.rank()).expect("non-root has a parent");
        let children = tree.children(ctx.rank()).to_vec();
        let mut out = BytesMut::with_capacity(len);
        let mut prev = ctx.irecv(parent, TAG_BCAST);
        for i in 1..=ns {
            // Double buffering: pre-post the next receive before
            // draining the current one, as the Open MPI interior loop
            // does.
            let next = (i < ns).then(|| ctx.irecv(parent, TAG_BCAST));
            let (data, _) = ctx.wait_recv(prev);
            let sends = children
                .iter()
                .map(|&c| ctx.isend(c, TAG_BCAST, data.clone()))
                .collect();
            ctx.wait_all_sends(sends);
            out.extend_from_slice(&data);
            match next {
                Some(next) => prev = next,
                None => break,
            }
        }
        let out = out.freeze();
        assert_eq!(out.len(), len, "reassembled message has the wrong length");
        out
    }
}

/// Split-binary broadcast (`bcast_intra_split_bintree`): the message is
/// split in two halves pipelined down the two subtrees of an in-order
/// binary tree; afterwards ranks of opposite subtrees swap halves
/// pairwise (the unpaired rank, when the subtrees differ in size, is
/// served by the root). With fewer than three ranks it degenerates to
/// [`bcast_linear`].
///
/// # Panics
///
/// Panics if `seg_size` is zero or the arguments are inconsistent (see
/// [`bcast`]).
pub fn bcast_split_binary<C: Comm>(
    ctx: &mut C,
    root: usize,
    msg: Option<Bytes>,
    len: usize,
    seg_size: usize,
) -> Bytes {
    assert!(seg_size > 0, "segment size must be positive");
    check_args(ctx, root, &msg, len);
    let p = ctx.size();
    if p < 3 {
        return bcast_linear(ctx, root, msg, len);
    }

    let tree = Topology::in_order_binary(p, root);
    let me = ctx.rank();
    let vrank = |r: usize| (r + p - root) % p;
    let unmap = |v: usize| (v + root) % p;

    // The in-order tree gives the root two subtrees over contiguous
    // virtual-rank ranges: 1..=nl (left) and nl+1..=nl+nr (right), with
    // nl >= nr. Left ranks pipeline the first half, right ranks the
    // second.
    let nl = (p - 1).div_ceil(2);
    let nr = p - 1 - nl;
    let half = len.div_ceil(2);
    let half_lens = [half, len - half];

    if me == root {
        let msg = msg.expect("root supplies the message");
        let halves = [msg.slice(..half), msg.slice(half..)];
        let kids = tree.children(root).to_vec();
        debug_assert_eq!(kids.len(), 2);
        let streams: Vec<Vec<Bytes>> = halves.iter().map(|h| segments(h, seg_size)).collect();
        let stages = streams.iter().map(Vec::len).max().unwrap_or(0);
        for stage in 0..stages {
            let mut sends = Vec::new();
            for (stream, &child) in streams.iter().zip(&kids) {
                if let Some(seg) = stream.get(stage) {
                    sends.push(ctx.isend(child, TAG_BCAST, seg.clone()));
                }
            }
            ctx.wait_all_sends(sends);
        }
        // Serve the unpaired rank (when nl > nr) its missing half.
        if nl > nr {
            ctx.send(unmap(nl), TAG_BCAST_XCHG, halves[1].clone());
        }
        msg
    } else {
        let v = vrank(me);
        let in_left = v <= nl;
        let my_len = if in_left { half_lens[0] } else { half_lens[1] };
        let ns = num_segments(my_len, seg_size);
        let parent = tree.parent(me).expect("non-root has a parent");
        let children = tree.children(me).to_vec();

        // Pipeline my subtree's half from the parent to my children.
        let mut mine = BytesMut::with_capacity(my_len);
        let mut prev = ctx.irecv(parent, TAG_BCAST);
        for i in 1..=ns {
            let next = (i < ns).then(|| ctx.irecv(parent, TAG_BCAST));
            let (data, _) = ctx.wait_recv(prev);
            let sends = children
                .iter()
                .map(|&c| ctx.isend(c, TAG_BCAST, data.clone()))
                .collect();
            ctx.wait_all_sends(sends);
            mine.extend_from_slice(&data);
            match next {
                Some(next) => prev = next,
                None => break,
            }
        }
        let mine = mine.freeze();
        assert_eq!(mine.len(), my_len, "pipelined half has the wrong length");

        // Swap halves with the partner in the opposite subtree.
        let partner = if in_left {
            (v + nl <= nl + nr).then(|| unmap(v + nl))
        } else {
            Some(unmap(v - nl))
        };
        let other = match partner {
            Some(partner) => {
                ctx.sendrecv(
                    partner,
                    TAG_BCAST_XCHG,
                    mine.clone(),
                    partner,
                    TAG_BCAST_XCHG,
                )
                .0
            }
            // Unpaired left rank: the root supplies the right half.
            None => ctx.recv(root, TAG_BCAST_XCHG).0,
        };

        let (first, second) = if in_left {
            (&mine, &other)
        } else {
            (&other, &mine)
        };
        let mut out = BytesMut::with_capacity(len);
        out.extend_from_slice(first);
        out.extend_from_slice(second);
        let out = out.freeze();
        assert_eq!(out.len(), len, "reassembled message has the wrong length");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_cover_message() {
        let msg = Bytes::from((0..100u8).collect::<Vec<_>>());
        let segs = segments(&msg, 33);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[3].len(), 1);
        let glued: Vec<u8> = segs.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(glued, msg.to_vec());
    }

    #[test]
    fn exact_multiple_has_no_trailer() {
        let msg = Bytes::from(vec![1u8; 64]);
        let segs = segments(&msg, 32);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].len(), 32);
    }

    #[test]
    fn empty_message_is_one_empty_segment() {
        let segs = segments(&Bytes::new(), 8);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].is_empty());
    }

    #[test]
    fn num_segments_matches_ceil() {
        assert_eq!(num_segments(0, 8), 1);
        assert_eq!(num_segments(1, 8), 1);
        assert_eq!(num_segments(8, 8), 1);
        assert_eq!(num_segments(9, 8), 2);
        assert_eq!(num_segments(64, 8), 8);
    }
}
