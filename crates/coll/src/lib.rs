//! # collsel-coll
//!
//! From-scratch Rust ports of the **Open MPI 3.1 collective algorithms**
//! the paper models, written against the simulated MPI runtime
//! ([`collsel-mpi`](collsel_mpi)).
//!
//! The centrepiece is the broadcast suite — the six tree-based
//! algorithms behind `MPI_Bcast` ([`BcastAlg`], [`bcast`]) — plus the
//! supporting collectives the paper's measurement methodology needs
//! (linear gather without synchronisation, barriers) and a scatter suite
//! as an extension.
//!
//! The ports preserve the *structure* of the C implementations
//! (topology builders, segment pipelines of non-blocking linear
//! broadcasts, double-buffered receives) because the paper's whole point
//! is that performance models must be derived from that structure rather
//! than from textbook definitions of the algorithms.
//!
//! ```
//! use collsel_support::Bytes;
//! use collsel_coll::{bcast, BcastAlg};
//! use collsel_netsim::ClusterModel;
//!
//! let cluster = ClusterModel::gros();
//! let msg_len = 64 * 1024;
//! let out = collsel_mpi::simulate(&cluster, 16, 0, |ctx| {
//!     let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![7u8; msg_len]));
//!     bcast(ctx, BcastAlg::Binomial, 0, msg, msg_len, 8 * 1024)
//! })
//! .unwrap();
//! assert!(out.results.iter().all(|m| m.len() == msg_len));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alg;
mod allgather;
mod allreduce;
mod alltoall;
mod barrier;
mod bcast;
mod collective;
pub mod compile;
mod gather;
mod reduce;
mod scatter;
mod topology;

pub use alg::{BcastAlg, ParseBcastAlgError, DEFAULT_CHAIN_FANOUT};
pub use allgather::{allgather_gather_bcast, allgather_recursive_doubling, allgather_ring};
pub use allreduce::{allreduce_recursive_doubling, allreduce_reduce_bcast};
pub use alltoall::{alltoall_linear, alltoall_pairwise};
pub use barrier::{barrier_dissemination, barrier_linear};
pub use bcast::{
    bcast, bcast_binary, bcast_binomial, bcast_chain, bcast_k_chain, bcast_linear,
    bcast_split_binary, bcast_tree_segmented,
};
pub use collective::{
    run_collective, Alg, AllgatherAlg, AllreduceAlg, AlltoallAlg, Collective, GatherAlg,
    ParseAlgError, ParseCollectiveError, ScatterAlg,
};
pub use gather::{gather_binomial, gather_linear};
pub use reduce::{
    reduce, reduce_binary, reduce_binomial, reduce_chain, reduce_in_order_binary, reduce_linear,
    reduce_pipeline, reduce_tree_segmented, ParseReduceAlgError, ReduceAlg, ReduceOp,
};
pub use scatter::{scatter_binomial, scatter_linear};
pub use topology::Topology;
