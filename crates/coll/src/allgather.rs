//! Allgather algorithms (extension): every rank contributes one block
//! and ends up with all blocks, in rank order.
//!
//! Ports follow `coll/base/coll_base_allgather.c`:
//!
//! * [`allgather_ring`] — P-1 steps around a ring, each step forwarding
//!   the newest block to the right neighbour;
//! * [`allgather_recursive_doubling`] — log₂P exchange rounds for
//!   power-of-two worlds (falls back to the ring otherwise);
//! * [`allgather_gather_bcast`] — the "basic linear" composition:
//!   gather to rank 0, then broadcast the packed result.

use crate::bcast::bcast_binomial;
use crate::gather::gather_linear;
use collsel_mpi::Comm;
use collsel_support::Bytes;

const TAG_ALLGATHER: u32 = 0x1A;

fn check_block<C: Comm>(ctx: &C, block: &Bytes) -> usize {
    let _ = ctx;
    block.len()
}

/// Ring allgather: in step `s`, rank `r` sends the block it received in
/// step `s-1` (its own in step 0) to `(r+1) mod P` and receives from
/// `(r-1) mod P`. Returns all blocks in rank order.
pub fn allgather_ring<C: Comm>(ctx: &mut C, block: Bytes) -> Vec<Bytes> {
    let p = ctx.size();
    let me = ctx.rank();
    let item = check_block(ctx, &block);
    let mut out: Vec<Option<Bytes>> = vec![None; p];
    out[me] = Some(block);
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // The block travelling through `me` in step s originates at
    // (me - s) mod p.
    for s in 0..p.saturating_sub(1) {
        let outgoing = out[(me + p - s) % p].clone().expect("block from last step");
        let (incoming, _) = ctx.sendrecv(right, TAG_ALLGATHER, outgoing, left, TAG_ALLGATHER);
        debug_assert_eq!(incoming.len(), item);
        out[(me + p - s - 1) % p] = Some(incoming);
    }
    out.into_iter()
        .map(|b| b.expect("every block filled"))
        .collect()
}

/// Recursive-doubling allgather: in round `k`, partners at distance
/// `2^k` exchange everything they have accumulated so far. Requires a
/// power-of-two world; other sizes fall back to [`allgather_ring`].
pub fn allgather_recursive_doubling<C: Comm>(ctx: &mut C, block: Bytes) -> Vec<Bytes> {
    let p = ctx.size();
    if !p.is_power_of_two() {
        return allgather_ring(ctx, block);
    }
    let me = ctx.rank();
    let item = check_block(ctx, &block);
    let mut have: Vec<Option<Bytes>> = vec![None; p];
    have[me] = Some(block);
    let mut dist = 1;
    while dist < p {
        let partner = me ^ dist;
        // My accumulated window covers the `dist` ranks sharing my
        // high bits; pack it in rank order.
        let base = me & !(dist - 1);
        let mut packed = Vec::with_capacity(dist * item);
        for slot in have.iter().skip(base).take(dist) {
            packed.extend_from_slice(slot.as_ref().expect("window filled"));
        }
        let (incoming, _) = ctx.sendrecv(
            partner,
            TAG_ALLGATHER,
            Bytes::from(packed),
            partner,
            TAG_ALLGATHER,
        );
        let partner_base = partner & !(dist - 1);
        assert_eq!(incoming.len(), dist * item, "partner window size");
        for (i, r) in (partner_base..partner_base + dist).enumerate() {
            have[r] = Some(incoming.slice(i * item..(i + 1) * item));
        }
        dist *= 2;
    }
    have.into_iter()
        .map(|b| b.expect("every block filled"))
        .collect()
}

/// Gather-then-broadcast allgather (`basic_linear`): blocks are
/// gathered to rank 0 with the linear gather, packed, broadcast with
/// the binomial tree, and unpacked.
pub fn allgather_gather_bcast<C: Comm>(ctx: &mut C, block: Bytes) -> Vec<Bytes> {
    let p = ctx.size();
    let item = check_block(ctx, &block);
    let gathered = gather_linear(ctx, 0, block);
    let packed = gathered.map(|blocks| {
        let mut buf = Vec::with_capacity(p * item);
        for b in &blocks {
            assert_eq!(b.len(), item, "allgather blocks must be uniform");
            buf.extend_from_slice(b);
        }
        Bytes::from(buf)
    });
    let all = bcast_binomial(ctx, 0, packed, p * item, 8 * 1024);
    (0..p)
        .map(|r| all.slice(r * item..(r + 1) * item))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;

    fn block(rank: usize) -> Bytes {
        Bytes::from(vec![rank as u8; 24])
    }

    fn check(f: impl Fn(&mut collsel_mpi::Ctx, Bytes) -> Vec<Bytes> + Sync, p: usize) {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, p, 0, move |ctx| f(ctx, block(ctx.rank()))).unwrap();
        for (rank, all) in out.results.iter().enumerate() {
            assert_eq!(all.len(), p, "rank {rank} block count");
            for (src, b) in all.iter().enumerate() {
                assert_eq!(
                    b.as_ref(),
                    vec![src as u8; 24].as_slice(),
                    "rank {rank} block {src}"
                );
            }
        }
    }

    #[test]
    fn ring_collects_everything() {
        for p in [1, 2, 3, 5, 8, 13] {
            check(allgather_ring, p);
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for p in [1, 2, 4, 8, 16] {
            check(allgather_recursive_doubling, p);
        }
    }

    #[test]
    fn recursive_doubling_falls_back_gracefully() {
        for p in [3, 6, 12] {
            check(allgather_recursive_doubling, p);
        }
    }

    #[test]
    fn gather_bcast_composition() {
        for p in [1, 2, 5, 9] {
            check(allgather_gather_bcast, p);
        }
    }

    #[test]
    fn ring_uses_p_squared_messages_rd_uses_plogp() {
        let cluster = ClusterModel::gros();
        let p = 8;
        let ring = simulate(&cluster, p, 0, |ctx| allgather_ring(ctx, block(ctx.rank())))
            .unwrap()
            .report;
        let rd = simulate(&cluster, p, 0, |ctx| {
            allgather_recursive_doubling(ctx, block(ctx.rank()))
        })
        .unwrap()
        .report;
        assert_eq!(ring.messages, (p * (p - 1)) as u64);
        assert_eq!(rd.messages, (p * 3) as u64); // log2(8) rounds
        assert!(rd.bytes >= ring.bytes / 3, "rd moves bigger windows");
    }
}
