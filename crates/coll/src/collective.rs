//! The collective-operation catalogue: every collective the tuning
//! pipeline covers, each with its algorithm family, plus a single
//! dispatcher ([`run_collective`]) that executes any `(collective,
//! algorithm)` pair against a [`Comm`].
//!
//! The broadcast-only pipeline identified algorithms with [`BcastAlg`]
//! alone; tuning all seven collectives needs an identifier that carries
//! *which collective* an algorithm belongs to. [`Alg`] is that tagged
//! identifier; [`Collective`] enumerates the operations. Both serialize
//! to stable snake_case names (the qualified form `collective/alg` for
//! [`Alg`]), so fitted parameters keyed by algorithm persist across
//! collectives without ambiguity.
//!
//! `run_collective` is the measurement-program kernel: the estimation
//! crate times it on the threaded backend, and
//! [`compile::compile_timed_collective`](crate::compile::compile_timed_collective)
//! records the *same function* into schedule IR for the event backend —
//! one source of truth for both execution paths, which is what makes
//! them bit-identical.

use crate::alg::BcastAlg;
use crate::allgather::{allgather_gather_bcast, allgather_recursive_doubling, allgather_ring};
use crate::allreduce::{allreduce_recursive_doubling, allreduce_reduce_bcast};
use crate::alltoall::{alltoall_linear, alltoall_pairwise};
use crate::bcast::bcast;
use crate::gather::{gather_binomial, gather_linear};
use crate::reduce::{reduce, ReduceAlg, ReduceOp};
use crate::scatter::{scatter_binomial, scatter_linear};
use collsel_mpi::Comm;
use collsel_support::Bytes;
use std::fmt;
use std::str::FromStr;

/// The seven collective operations covered by the tuning pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Collective {
    /// `MPI_Bcast` — the paper's subject.
    Bcast,
    /// `MPI_Reduce` (commutative integer operators).
    Reduce,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Gather`.
    Gather,
    /// `MPI_Scatter`.
    Scatter,
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Alltoall`.
    Alltoall,
}

impl Collective {
    /// All collectives, in a stable display order.
    pub const ALL: [Collective; 7] = [
        Collective::Bcast,
        Collective::Reduce,
        Collective::Allreduce,
        Collective::Gather,
        Collective::Scatter,
        Collective::Allgather,
        Collective::Alltoall,
    ];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            Collective::Bcast => "bcast",
            Collective::Reduce => "reduce",
            Collective::Allreduce => "allreduce",
            Collective::Gather => "gather",
            Collective::Scatter => "scatter",
            Collective::Allgather => "allgather",
            Collective::Alltoall => "alltoall",
        }
    }

    /// Stable dense index (position in [`Collective::ALL`]), used by
    /// per-collective lookup structures.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The algorithm family of this collective, in a stable order.
    pub fn algorithms(self) -> &'static [Alg] {
        match self {
            Collective::Bcast => &BCAST_ALGS,
            Collective::Reduce => &REDUCE_ALGS,
            Collective::Allreduce => &ALLREDUCE_ALGS,
            Collective::Gather => &GATHER_ALGS,
            Collective::Scatter => &SCATTER_ALGS,
            Collective::Allgather => &ALLGATHER_ALGS,
            Collective::Alltoall => &ALLTOALL_ALGS,
        }
    }

    /// Whether this collective is rooted (`root` is meaningful).
    pub fn is_rooted(self) -> bool {
        matches!(
            self,
            Collective::Bcast | Collective::Reduce | Collective::Gather | Collective::Scatter
        )
    }
}

impl fmt::Display for Collective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown collective name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCollectiveError {
    input: String,
}

impl fmt::Display for ParseCollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown collective `{}` (expected one of: bcast, reduce, allreduce, gather, \
             scatter, allgather, alltoall)",
            self.input
        )
    }
}

impl std::error::Error for ParseCollectiveError {}

impl FromStr for Collective {
    type Err = ParseCollectiveError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Collective::ALL
            .iter()
            .copied()
            .find(|c| c.name() == s)
            .ok_or_else(|| ParseCollectiveError {
                input: s.to_owned(),
            })
    }
}

collsel_support::json_enum!(Collective {
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall
});

/// The gather algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GatherAlg {
    /// Linear gather without synchronisation (`gather_intra_basic_linear`).
    Linear,
    /// Binomial-tree gather (`gather_intra_binomial`).
    Binomial,
}

impl GatherAlg {
    /// All gather algorithms, in a stable order.
    pub const ALL: [GatherAlg; 2] = [GatherAlg::Linear, GatherAlg::Binomial];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            GatherAlg::Linear => "linear",
            GatherAlg::Binomial => "binomial",
        }
    }
}

/// The scatter algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScatterAlg {
    /// Flat scatter (`scatter_intra_basic_linear`).
    Linear,
    /// Binomial-tree scatter (`scatter_intra_binomial`).
    Binomial,
}

impl ScatterAlg {
    /// All scatter algorithms, in a stable order.
    pub const ALL: [ScatterAlg; 2] = [ScatterAlg::Linear, ScatterAlg::Binomial];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            ScatterAlg::Linear => "linear",
            ScatterAlg::Binomial => "binomial",
        }
    }
}

/// The allgather algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllgatherAlg {
    /// P-1 ring steps (`allgather_intra_ring`).
    Ring,
    /// log₂P exchange rounds (`allgather_intra_recursivedoubling`);
    /// non-power-of-two worlds fall back to the ring.
    RecursiveDoubling,
    /// Linear gather to rank 0 followed by a binomial broadcast
    /// (`allgather_intra_basic_linear`).
    GatherBcast,
}

impl AllgatherAlg {
    /// All allgather algorithms, in a stable order.
    pub const ALL: [AllgatherAlg; 3] = [
        AllgatherAlg::Ring,
        AllgatherAlg::RecursiveDoubling,
        AllgatherAlg::GatherBcast,
    ];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            AllgatherAlg::Ring => "ring",
            AllgatherAlg::RecursiveDoubling => "recursive_doubling",
            AllgatherAlg::GatherBcast => "gather_bcast",
        }
    }
}

/// The allreduce algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllreduceAlg {
    /// Binomial reduce to rank 0 followed by a binomial broadcast
    /// (`allreduce_intra_basic`).
    ReduceBcast,
    /// log₂P exchange-and-fold rounds
    /// (`allreduce_intra_recursivedoubling`).
    RecursiveDoubling,
}

impl AllreduceAlg {
    /// All allreduce algorithms, in a stable order.
    pub const ALL: [AllreduceAlg; 2] = [AllreduceAlg::ReduceBcast, AllreduceAlg::RecursiveDoubling];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            AllreduceAlg::ReduceBcast => "reduce_bcast",
            AllreduceAlg::RecursiveDoubling => "recursive_doubling",
        }
    }
}

/// The all-to-all algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlltoallAlg {
    /// Post everything at once (`alltoall_intra_basic_linear`).
    Linear,
    /// P-1 balanced sendrecv rounds (`alltoall_intra_pairwise`).
    Pairwise,
}

impl AlltoallAlg {
    /// All all-to-all algorithms, in a stable order.
    pub const ALL: [AlltoallAlg; 2] = [AlltoallAlg::Linear, AlltoallAlg::Pairwise];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            AlltoallAlg::Linear => "linear",
            AlltoallAlg::Pairwise => "pairwise",
        }
    }
}

macro_rules! display_by_name {
    ($($ty:ty),+) => {$(
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }
    )+};
}
display_by_name!(
    GatherAlg,
    ScatterAlg,
    AllgatherAlg,
    AllreduceAlg,
    AlltoallAlg
);

/// A collective algorithm, tagged with the collective it implements.
///
/// This is the cross-collective identifier used by the breadth tuning
/// pipeline: fitted `(α, β)` parameters, decision-table selections and
/// cache keys all carry an `Alg`, so a `reduce/linear` fit can never be
/// confused with a `gather/linear` one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Alg {
    /// A broadcast algorithm.
    Bcast(BcastAlg),
    /// A reduce algorithm.
    Reduce(ReduceAlg),
    /// An allreduce algorithm.
    Allreduce(AllreduceAlg),
    /// A gather algorithm.
    Gather(GatherAlg),
    /// A scatter algorithm.
    Scatter(ScatterAlg),
    /// An allgather algorithm.
    Allgather(AllgatherAlg),
    /// An all-to-all algorithm.
    Alltoall(AlltoallAlg),
}

const BCAST_ALGS: [Alg; 6] = [
    Alg::Bcast(BcastAlg::Linear),
    Alg::Bcast(BcastAlg::Chain),
    Alg::Bcast(BcastAlg::KChain),
    Alg::Bcast(BcastAlg::SplitBinary),
    Alg::Bcast(BcastAlg::Binary),
    Alg::Bcast(BcastAlg::Binomial),
];
const REDUCE_ALGS: [Alg; 6] = [
    Alg::Reduce(ReduceAlg::Linear),
    Alg::Reduce(ReduceAlg::Chain),
    Alg::Reduce(ReduceAlg::Pipeline),
    Alg::Reduce(ReduceAlg::Binary),
    Alg::Reduce(ReduceAlg::InOrderBinary),
    Alg::Reduce(ReduceAlg::Binomial),
];
const ALLREDUCE_ALGS: [Alg; 2] = [
    Alg::Allreduce(AllreduceAlg::ReduceBcast),
    Alg::Allreduce(AllreduceAlg::RecursiveDoubling),
];
const GATHER_ALGS: [Alg; 2] = [
    Alg::Gather(GatherAlg::Linear),
    Alg::Gather(GatherAlg::Binomial),
];
const SCATTER_ALGS: [Alg; 2] = [
    Alg::Scatter(ScatterAlg::Linear),
    Alg::Scatter(ScatterAlg::Binomial),
];
const ALLGATHER_ALGS: [Alg; 3] = [
    Alg::Allgather(AllgatherAlg::Ring),
    Alg::Allgather(AllgatherAlg::RecursiveDoubling),
    Alg::Allgather(AllgatherAlg::GatherBcast),
];
const ALLTOALL_ALGS: [Alg; 2] = [
    Alg::Alltoall(AlltoallAlg::Linear),
    Alg::Alltoall(AlltoallAlg::Pairwise),
];

impl Alg {
    /// The collective this algorithm implements.
    pub fn collective(self) -> Collective {
        match self {
            Alg::Bcast(_) => Collective::Bcast,
            Alg::Reduce(_) => Collective::Reduce,
            Alg::Allreduce(_) => Collective::Allreduce,
            Alg::Gather(_) => Collective::Gather,
            Alg::Scatter(_) => Collective::Scatter,
            Alg::Allgather(_) => Collective::Allgather,
            Alg::Alltoall(_) => Collective::Alltoall,
        }
    }

    /// The algorithm's short name within its collective (not globally
    /// unique: both reduce and gather have a `linear`).
    pub fn name(self) -> &'static str {
        match self {
            Alg::Bcast(a) => a.name(),
            Alg::Reduce(a) => a.name(),
            Alg::Allreduce(a) => a.name(),
            Alg::Gather(a) => a.name(),
            Alg::Scatter(a) => a.name(),
            Alg::Allgather(a) => a.name(),
            Alg::Alltoall(a) => a.name(),
        }
    }

    /// The globally unique `collective/name` identifier (the map-key
    /// form used for JSON persistence).
    pub fn qualified_name(self) -> String {
        format!("{}/{}", self.collective().name(), self.name())
    }

    /// Whether the algorithm pipelines the payload in segments (and
    /// therefore uses the selection's segment size).
    pub fn is_segmented(self) -> bool {
        match self {
            Alg::Bcast(a) => a.is_segmented(),
            Alg::Reduce(a) => a.is_segmented(),
            Alg::Allreduce(a) => matches!(a, AllreduceAlg::ReduceBcast),
            Alg::Gather(_) | Alg::Scatter(_) | Alg::Allgather(_) | Alg::Alltoall(_) => false,
        }
    }

    /// Parses an algorithm name within `collective`'s family.
    pub fn parse_for(collective: Collective, s: &str) -> Result<Alg, ParseAlgError> {
        collective
            .algorithms()
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| ParseAlgError {
                input: s.to_owned(),
                collective: Some(collective),
            })
    }
}

impl fmt::Display for Alg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgError {
    input: String,
    collective: Option<Collective>,
}

impl fmt::Display for ParseAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.collective {
            Some(c) => {
                let names: Vec<&str> = c.algorithms().iter().map(|a| a.name()).collect();
                write!(
                    f,
                    "unknown {c} algorithm `{}` (expected one of: {})",
                    self.input,
                    names.join(", ")
                )
            }
            None => write!(
                f,
                "invalid algorithm identifier `{}` (expected `collective/name`)",
                self.input
            ),
        }
    }
}

impl std::error::Error for ParseAlgError {}

impl FromStr for Alg {
    type Err = ParseAlgError;

    /// Parses the qualified `collective/name` form.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (coll, name) = s.split_once('/').ok_or_else(|| ParseAlgError {
            input: s.to_owned(),
            collective: None,
        })?;
        let collective = coll.parse::<Collective>().map_err(|_| ParseAlgError {
            input: s.to_owned(),
            collective: None,
        })?;
        Alg::parse_for(collective, name)
    }
}

impl collsel_support::ToJson for Alg {
    fn to_json(&self) -> collsel_support::Json {
        collsel_support::Json::Str(self.qualified_name())
    }
}

impl collsel_support::FromJson for Alg {
    fn from_json(v: &collsel_support::Json) -> Result<Self, collsel_support::JsonError> {
        match v.as_str() {
            Some(s) => s
                .parse()
                .map_err(|e: ParseAlgError| collsel_support::JsonError(e.to_string())),
            None => Err(collsel_support::JsonError(format!(
                "expected algorithm string, found {v}"
            ))),
        }
    }
}

impl collsel_support::json::JsonKey for Alg {
    fn to_key(&self) -> String {
        self.qualified_name()
    }

    fn from_key(key: &str) -> Result<Self, collsel_support::JsonError> {
        key.parse()
            .map_err(|e: ParseAlgError| collsel_support::JsonError(e.to_string()))
    }
}

/// Deterministic payload of `len` bytes (same filler as the schedule
/// compiler: contents never affect timing, only lengths do).
fn breadth_payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

/// Rounds a byte count up to whole `u64` lanes (the reduction payload
/// unit), keeping at least one lane for non-empty requests.
fn lane_bytes(m: usize) -> usize {
    m.div_ceil(8) * 8
}

/// Rounds a segment size up to a positive multiple of 8 (the segmented
/// reductions require lane-aligned segments).
fn lane_seg(seg_size: usize) -> usize {
    seg_size.max(1).div_ceil(8) * 8
}

/// Executes one instance of `alg` on `ctx` and discards the result.
///
/// This is the shared measurement-program kernel: the payload geometry
/// is a pure function of `(alg, rank, size, m, seg_size)`, so recording
/// it yields the same operation stream as running it live — the basis
/// of the backend-equivalence guarantee for every collective.
///
/// `m` is the **total vector size** for bcast/reduce/allreduce and the
/// **per-rank block size** for gather/scatter/allgather/alltoall
/// (matching how MPI benchmarks parameterise each operation). Reduction
/// payloads are rounded up to whole `u64` lanes and their segment sizes
/// to multiples of 8.
///
/// # Panics
///
/// Panics on invalid geometry (root out of range, zero ranks), as the
/// underlying collective would.
pub fn run_collective<C: Comm>(ctx: &mut C, alg: Alg, root: usize, m: usize, seg_size: usize) {
    let p = ctx.size();
    let rank = ctx.rank();
    match alg {
        Alg::Bcast(a) => {
            let msg = (rank == root).then(|| breadth_payload(m));
            let _ = bcast(ctx, a, root, msg, m, seg_size.max(1));
        }
        Alg::Reduce(a) => {
            let contribution = breadth_payload(lane_bytes(m));
            let _ = reduce(
                ctx,
                a,
                root,
                ReduceOp::Sum,
                contribution,
                lane_seg(seg_size),
            );
        }
        Alg::Allreduce(AllreduceAlg::ReduceBcast) => {
            let contribution = breadth_payload(lane_bytes(m));
            let _ = allreduce_reduce_bcast(ctx, ReduceOp::Sum, contribution, lane_seg(seg_size));
        }
        Alg::Allreduce(AllreduceAlg::RecursiveDoubling) => {
            let contribution = breadth_payload(lane_bytes(m));
            let _ = allreduce_recursive_doubling(ctx, ReduceOp::Sum, contribution);
        }
        Alg::Gather(GatherAlg::Linear) => {
            let _ = gather_linear(ctx, root, breadth_payload(m));
        }
        Alg::Gather(GatherAlg::Binomial) => {
            let _ = gather_binomial(ctx, root, breadth_payload(m));
        }
        Alg::Scatter(a) => {
            let blocks = (rank == root).then(|| (0..p).map(|_| breadth_payload(m)).collect());
            let _ = match a {
                ScatterAlg::Linear => scatter_linear(ctx, root, blocks),
                ScatterAlg::Binomial => scatter_binomial(ctx, root, blocks),
            };
        }
        Alg::Allgather(a) => {
            let block = breadth_payload(m);
            let _ = match a {
                AllgatherAlg::Ring => allgather_ring(ctx, block),
                AllgatherAlg::RecursiveDoubling => allgather_recursive_doubling(ctx, block),
                AllgatherAlg::GatherBcast => allgather_gather_bcast(ctx, block),
            };
        }
        Alg::Alltoall(a) => {
            let blocks: Vec<Bytes> = (0..p).map(|_| breadth_payload(m)).collect();
            let _ = match a {
                AlltoallAlg::Linear => alltoall_linear(ctx, blocks),
                AlltoallAlg::Pairwise => alltoall_pairwise(ctx, blocks),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;
    use collsel_support::{FromJson, ToJson};

    #[test]
    fn collective_names_round_trip() {
        for c in Collective::ALL {
            assert_eq!(c.name().parse::<Collective>().unwrap(), c);
            assert_eq!(c.to_string(), c.name());
        }
        assert!("bogus".parse::<Collective>().is_err());
    }

    #[test]
    fn collective_indices_are_dense_and_stable() {
        for (i, c) in Collective::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn every_family_is_consistent() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Collective::ALL {
            let algs = c.algorithms();
            assert!(!algs.is_empty(), "{c} has no algorithms");
            for &a in algs {
                assert_eq!(a.collective(), c, "{a:?} filed under {c}");
                assert!(seen.insert(a.qualified_name()), "duplicate {a:?}");
                assert_eq!(Alg::parse_for(c, a.name()).unwrap(), a);
                assert_eq!(a.qualified_name().parse::<Alg>().unwrap(), a);
            }
        }
        // 6 bcast + 6 reduce + 2 allreduce + 2 gather + 2 scatter
        // + 3 allgather + 2 alltoall.
        assert_eq!(seen.len(), 23);
    }

    #[test]
    fn qualified_names_disambiguate_shared_short_names() {
        let r: Alg = "reduce/linear".parse().unwrap();
        let g: Alg = "gather/linear".parse().unwrap();
        assert_ne!(r, g);
        assert_eq!(r.name(), g.name());
        assert!("linear".parse::<Alg>().is_err(), "unqualified is ambiguous");
        assert!("reduce/bogus".parse::<Alg>().is_err());
        assert!("bogus/linear".parse::<Alg>().is_err());
    }

    #[test]
    fn alg_json_round_trips() {
        for c in Collective::ALL {
            for &a in c.algorithms() {
                assert_eq!(Alg::from_json(&a.to_json()).unwrap(), a);
            }
            assert_eq!(Collective::from_json(&c.to_json()).unwrap(), c);
        }
    }

    #[test]
    fn run_collective_completes_for_every_algorithm() {
        let cluster = ClusterModel::gros();
        for c in Collective::ALL {
            for &alg in c.algorithms() {
                for (p, m) in [(1usize, 100usize), (5, 4096), (8, 0)] {
                    simulate(&cluster, p, 0, move |ctx| {
                        run_collective(ctx, alg, 0, m, 1024);
                    })
                    .unwrap_or_else(|e| panic!("{alg:?} p={p} m={m}: {e}"));
                }
            }
        }
    }

    #[test]
    fn lane_rounding_is_sound() {
        assert_eq!(lane_bytes(0), 0);
        assert_eq!(lane_bytes(1), 8);
        assert_eq!(lane_bytes(8), 8);
        assert_eq!(lane_bytes(9), 16);
        assert_eq!(lane_seg(0), 8);
        assert_eq!(lane_seg(8192), 8192);
        assert_eq!(lane_seg(8193), 8200);
    }
}
