//! Gather algorithms.
//!
//! The paper's parameter-estimation experiments (Sect. 4.2) follow each
//! broadcast with a *linear gather without synchronisation*
//! (`ompi_coll_base_gather_intra_basic_linear`): every non-root rank
//! sends its contribution straight to the root, which posts one receive
//! per peer and waits for all of them. Its cost model is
//! `(P-1)·(α + m_g·β)` (paper Eq. 8).
//!
//! A binomial-tree gather is provided as well (Open MPI's other gather
//! algorithm), used by the extension experiments.

use crate::topology::Topology;
use collsel_mpi::Comm;
use collsel_support::{Bytes, BytesMut};

const TAG_GATHER: u32 = 0xC;

/// Linear gather without synchronisation
/// (`gather_intra_basic_linear`): returns `Some(contributions)` indexed
/// by rank at the root, `None` elsewhere.
pub fn gather_linear<C: Comm>(ctx: &mut C, root: usize, contribution: Bytes) -> Option<Vec<Bytes>> {
    assert!(root < ctx.size(), "gather root {root} out of range");
    if ctx.rank() == root {
        let reqs: Vec<_> = (0..ctx.size())
            .filter(|&src| src != root)
            .map(|src| ctx.irecv(src, TAG_GATHER))
            .collect();
        let mut received = ctx.wait_all_recvs(reqs).into_iter();
        let mut out = Vec::with_capacity(ctx.size());
        for rank in 0..ctx.size() {
            if rank == root {
                out.push(contribution.clone());
            } else {
                let (data, status) = received.next().expect("one message per peer");
                debug_assert_eq!(status.source, rank);
                out.push(data);
            }
        }
        Some(out)
    } else {
        ctx.send(root, TAG_GATHER, contribution);
        None
    }
}

/// Binomial-tree gather (`gather_intra_binomial`): contributions flow up
/// a balanced binomial tree, each interior rank concatenating its
/// subtree's block before forwarding. Returns `Some(contributions)`
/// indexed by rank at the root, `None` elsewhere.
///
/// All contributions must have the same length (as with `MPI_Gather`'s
/// uniform `recvcount`).
///
/// # Panics
///
/// Panics (at the root, when deblocking) if contributions have
/// inconsistent lengths.
pub fn gather_binomial<C: Comm>(
    ctx: &mut C,
    root: usize,
    contribution: Bytes,
) -> Option<Vec<Bytes>> {
    assert!(root < ctx.size(), "gather root {root} out of range");
    let p = ctx.size();
    if p == 1 {
        return Some(vec![contribution]);
    }
    let item_len = contribution.len();
    let tree = Topology::binomial(p, root);
    let me = ctx.rank();
    let vrank = |r: usize| (r + p - root) % p;

    // Subtree of virtual rank v covers v..v+span(v) (contiguous virtual
    // ranks), where span is the lowest set bit for v > 0 and p for the
    // root; blocks therefore concatenate in virtual-rank order.
    let span = |v: usize| -> usize {
        if v == 0 {
            p
        } else {
            let lsb = v & v.wrapping_neg();
            lsb.min(p - v)
        }
    };

    let mut block = BytesMut::from(&contribution[..]);
    // Children must be drained in ascending virtual-rank order so the
    // concatenation stays sorted; binomial children are already ordered.
    for &child in tree.children(me) {
        let (data, _) = ctx.recv(child, TAG_GATHER);
        debug_assert_eq!(data.len(), span(vrank(child)) * item_len);
        block.extend_from_slice(&data);
    }
    debug_assert_eq!(block.len(), span(vrank(me)) * item_len);

    if let Some(parent) = tree.parent(me) {
        ctx.send(parent, TAG_GATHER, block.freeze());
        None
    } else {
        // Root: deblock from virtual-rank order back to real ranks.
        let block = block.freeze();
        assert_eq!(
            block.len(),
            p * item_len,
            "gathered block has the wrong total length"
        );
        let mut out = vec![Bytes::new(); p];
        for v in 0..p {
            let r = (v + root) % p;
            out[r] = block.slice(v * item_len..(v + 1) * item_len);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;

    fn contribution(rank: usize) -> Bytes {
        Bytes::from(vec![rank as u8; 16])
    }

    fn check_gathered(out: &[Bytes], p: usize) {
        assert_eq!(out.len(), p);
        for (rank, data) in out.iter().enumerate() {
            assert_eq!(data.as_ref(), vec![rank as u8; 16].as_slice());
        }
    }

    #[test]
    fn linear_gather_collects_all() {
        let cluster = ClusterModel::gros();
        for root in [0, 3] {
            let out = simulate(&cluster, 7, 0, |ctx| {
                gather_linear(ctx, root, contribution(ctx.rank()))
            })
            .unwrap();
            for (rank, res) in out.results.iter().enumerate() {
                if rank == root {
                    check_gathered(res.as_ref().unwrap(), 7);
                } else {
                    assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn binomial_gather_collects_all() {
        let cluster = ClusterModel::gros();
        for p in [1, 2, 3, 5, 8, 13] {
            for root in [0, p - 1] {
                let out = simulate(&cluster, p, 0, |ctx| {
                    gather_binomial(ctx, root, contribution(ctx.rank()))
                })
                .unwrap();
                check_gathered(out.results[root].as_ref().unwrap(), p);
            }
        }
    }

    #[test]
    fn gathers_agree_with_each_other() {
        let cluster = ClusterModel::grisou();
        let lin = simulate(&cluster, 9, 0, |ctx| {
            gather_linear(ctx, 2, contribution(ctx.rank()))
        })
        .unwrap();
        let bin = simulate(&cluster, 9, 0, |ctx| {
            gather_binomial(ctx, 2, contribution(ctx.rank()))
        })
        .unwrap();
        assert_eq!(lin.results[2], bin.results[2]);
    }
}
