//! Scatter algorithms (extension beyond the paper's broadcast focus).
//!
//! The paper's conclusion proposes applying the modelling approach to
//! further collectives; scatter is the natural first candidate because
//! its Open MPI implementation reuses the same topology toolbox. Two
//! ports are provided:
//!
//! * [`scatter_linear`] — `scatter_intra_basic_linear`: the root sends
//!   each rank its block directly;
//! * [`scatter_binomial`] — `scatter_intra_binomial`: blocks travel down
//!   a balanced binomial tree, each interior rank peeling off and
//!   forwarding its children's sub-blocks.

use crate::topology::Topology;
use collsel_mpi::Comm;
use collsel_support::Bytes;

const TAG_SCATTER: u32 = 0xE;

/// Validates scatter arguments; returns blocks at the root.
fn check_blocks<C: Comm>(ctx: &C, root: usize, blocks: &Option<Vec<Bytes>>) {
    assert!(root < ctx.size(), "scatter root {root} out of range");
    if ctx.rank() == root {
        let blocks = blocks.as_ref().expect("scatter root must supply blocks");
        assert_eq!(
            blocks.len(),
            ctx.size(),
            "scatter needs exactly one block per rank"
        );
    }
}

/// Flat scatter: the root isends block `r` to each rank `r`, then waits
/// for all sends. Returns this rank's block.
///
/// # Panics
///
/// Panics if `root` is out of range or the root's blocks are missing or
/// miscounted.
pub fn scatter_linear<C: Comm>(ctx: &mut C, root: usize, blocks: Option<Vec<Bytes>>) -> Bytes {
    check_blocks(ctx, root, &blocks);
    if ctx.rank() == root {
        let blocks = blocks.expect("root supplies blocks");
        let sends = (0..ctx.size())
            .filter(|&dst| dst != root)
            .map(|dst| ctx.isend(dst, TAG_SCATTER, blocks[dst].clone()))
            .collect();
        ctx.wait_all_sends(sends);
        blocks[root].clone()
    } else {
        ctx.recv(root, TAG_SCATTER).0
    }
}

/// Binomial-tree scatter: the root packs blocks in virtual-rank order
/// and sends each child its whole subtree's super-block; interior ranks
/// peel their own block off the front and forward the rest. All blocks
/// must have equal length (uniform `sendcount`).
///
/// # Panics
///
/// Panics if `root` is out of range, the root's blocks are missing or
/// miscounted, or block lengths are not uniform.
pub fn scatter_binomial<C: Comm>(ctx: &mut C, root: usize, blocks: Option<Vec<Bytes>>) -> Bytes {
    check_blocks(ctx, root, &blocks);
    let p = ctx.size();
    if p == 1 {
        return blocks.expect("root supplies blocks")[0].clone();
    }
    let tree = Topology::binomial(p, root);
    let me = ctx.rank();
    let vrank = |r: usize| (r + p - root) % p;
    let span = |v: usize| -> usize {
        if v == 0 {
            p
        } else {
            let lsb = v & v.wrapping_neg();
            lsb.min(p - v)
        }
    };

    // My super-block covers virtual ranks vrank(me)..vrank(me)+span,
    // packed contiguously. The root builds it; everyone else receives it
    // from the parent.
    let (super_block, item_len) = if me == root {
        let blocks = blocks.expect("root supplies blocks");
        let item_len = blocks[0].len();
        assert!(
            blocks.iter().all(|b| b.len() == item_len),
            "scatter blocks must have uniform length"
        );
        let mut packed = Vec::with_capacity(p * item_len);
        for v in 0..p {
            packed.extend_from_slice(&blocks[(v + root) % p]);
        }
        (Bytes::from(packed), item_len)
    } else {
        let parent = tree.parent(me).expect("non-root has a parent");
        let (data, _) = ctx.recv(parent, TAG_SCATTER);
        let my_span = span(vrank(me));
        debug_assert_eq!(data.len() % my_span, 0, "super-block not divisible");
        let item_len = data.len() / my_span;
        (data, item_len)
    };

    // Forward each child its slice. Children are in ascending virtual
    // rank order; send the largest (last) child first, as Open MPI does,
    // so the deepest subtree starts earliest.
    let base_v = vrank(me);
    let mut sends = Vec::new();
    for &child in tree.children(me).iter().rev() {
        let cv = vrank(child);
        let offset = (cv - base_v) * item_len;
        let len = span(cv) * item_len;
        sends.push(ctx.isend(child, TAG_SCATTER, super_block.slice(offset..offset + len)));
    }
    ctx.wait_all_sends(sends);
    super_block.slice(0..item_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;

    fn blocks(p: usize) -> Vec<Bytes> {
        (0..p).map(|r| Bytes::from(vec![r as u8; 8])).collect()
    }

    fn run(p: usize, root: usize, f: impl Fn(&mut collsel_mpi::Ctx) -> Bytes + Sync) {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, p, 0, |ctx| f(ctx)).unwrap();
        for (rank, block) in out.results.iter().enumerate() {
            assert_eq!(
                block.as_ref(),
                vec![rank as u8; 8].as_slice(),
                "rank {rank} got the wrong block (p={p}, root={root})"
            );
        }
    }

    #[test]
    fn linear_scatter_routes_blocks() {
        for p in [1, 2, 5, 9] {
            for root in [0, p - 1] {
                run(p, root, move |ctx| {
                    let b = (ctx.rank() == root).then(|| blocks(p));
                    scatter_linear(ctx, root, b)
                });
            }
        }
    }

    #[test]
    fn binomial_scatter_routes_blocks() {
        for p in [1, 2, 3, 5, 8, 13, 16] {
            for root in [0, p / 2, p - 1] {
                run(p, root, move |ctx| {
                    let b = (ctx.rank() == root).then(|| blocks(p));
                    scatter_binomial(ctx, root, b)
                });
            }
        }
    }

    #[test]
    fn binomial_scatter_moves_fewer_bytes_than_linear_total_hops() {
        // Binomial scatter moves each block log-depth times at most;
        // here we only check both deliver and the binomial one uses
        // fewer messages than P-1 only when P is small... it always uses
        // exactly P-1 messages (tree edges), same as linear; bytes
        // differ: binomial sends super-blocks. Verify message counts.
        let cluster = ClusterModel::gros();
        let p = 8;
        let lin = simulate(&cluster, p, 0, |ctx| {
            let b = (ctx.rank() == 0).then(|| blocks(p));
            scatter_linear(ctx, 0, b)
        })
        .unwrap();
        let bin = simulate(&cluster, p, 0, |ctx| {
            let b = (ctx.rank() == 0).then(|| blocks(p));
            scatter_binomial(ctx, 0, b)
        })
        .unwrap();
        assert_eq!(lin.report.messages, (p - 1) as u64);
        assert_eq!(bin.report.messages, (p - 1) as u64);
        assert!(bin.report.bytes > lin.report.bytes);
    }
}
