//! Virtual topologies used by the tree-based collective algorithms.
//!
//! These mirror the builders in Open MPI's `coll/base/coll_base_topo.c`:
//! the tree is constructed over *virtual ranks* `v = (rank - root) mod P`
//! so that the root is always virtual rank 0, then mapped back to real
//! ranks.
//!
//! * [`Topology::linear`] — root is parent of everybody (flat tree);
//! * [`Topology::chain`] — a single pipeline `0 → 1 → 2 → …`;
//! * [`Topology::k_chain`] — `k` parallel chains hanging off the root
//!   (Open MPI `build_chain(fanout=k)`);
//! * [`Topology::binary`] — heap-shaped binary tree (`build_tree(2)`);
//! * [`Topology::in_order_binary`] — contiguous-range in-order binary
//!   tree (`build_in_order_bintree`), used by the split-binary broadcast
//!   because its two subtrees are index-contiguous and thus pairable;
//! * [`Topology::binomial`] — balanced binomial tree (`build_bmtree`,
//!   paper Fig. 2).

use std::fmt;

/// A rooted tree over ranks `0..p`, with parent/children links for every
/// rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    p: usize,
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl Topology {
    fn from_virtual_edges(p: usize, root: usize, vparent: Vec<Option<usize>>) -> Self {
        let unmap = |v: usize| (v + root) % p;
        let mut parent = vec![None; p];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); p];
        // Visit virtual ranks in order so children lists are ordered by
        // virtual rank, matching the send order of the algorithms.
        for (v, vp) in vparent.iter().enumerate() {
            if let Some(pv) = *vp {
                let r = unmap(v);
                let pr = unmap(pv);
                parent[r] = Some(pr);
                children[pr].push(r);
            }
        }
        Topology {
            p,
            root,
            parent,
            children,
        }
    }

    fn check(p: usize, root: usize) {
        assert!(p > 0, "topology needs at least one rank");
        assert!(root < p, "root {root} out of range for {p} ranks");
    }

    /// Flat tree: the root is the parent of every other rank.
    pub fn linear(p: usize, root: usize) -> Self {
        Self::check(p, root);
        let vparent = (0..p).map(|v| (v > 0).then_some(0)).collect();
        Self::from_virtual_edges(p, root, vparent)
    }

    /// A single chain (pipeline): virtual rank `v` is fed by `v - 1`.
    pub fn chain(p: usize, root: usize) -> Self {
        Self::check(p, root);
        let vparent = (0..p).map(|v| v.checked_sub(1)).collect();
        Self::from_virtual_edges(p, root, vparent)
    }

    /// `k` parallel chains hanging off the root (Open MPI
    /// `build_chain(fanout = k)`): the non-root ranks are divided into
    /// `k` contiguous chains, each fed directly by the root.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn k_chain(k: usize, p: usize, root: usize) -> Self {
        Self::check(p, root);
        assert!(k > 0, "k-chain needs at least one chain");
        let rest = p - 1; // ranks besides the root
        let k = k.min(rest.max(1));
        let mut vparent: Vec<Option<usize>> = vec![None; p];
        // Chain c covers `len` consecutive virtual ranks starting at
        // `start`; earlier chains get the extra element when k ∤ rest.
        let base = rest / k;
        let extra = rest % k;
        let mut start = 1;
        for c in 0..k {
            let len = base + usize::from(c < extra);
            for i in 0..len {
                let v = start + i;
                vparent[v] = Some(if i == 0 { 0 } else { v - 1 });
            }
            start += len;
        }
        Self::from_virtual_edges(p, root, vparent)
    }

    /// Heap-shaped k-ary tree (`build_tree(fanout)`): virtual rank `v`
    /// has children `fanout·v + 1 … fanout·v + fanout`.
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0`.
    pub fn k_ary(fanout: usize, p: usize, root: usize) -> Self {
        Self::check(p, root);
        assert!(fanout > 0, "tree fanout must be positive");
        let vparent = (0..p).map(|v| (v > 0).then(|| (v - 1) / fanout)).collect();
        Self::from_virtual_edges(p, root, vparent)
    }

    /// Heap-shaped binary tree (`build_tree(2)`).
    pub fn binary(p: usize, root: usize) -> Self {
        Self::k_ary(2, p, root)
    }

    /// In-order binary tree (`build_in_order_bintree`): each subtree
    /// covers a contiguous range of virtual ranks, the left subtree
    /// taking the first (larger) half. The root's two subtrees are the
    /// ranges `1..=h` and `h+1..p-1`, which is what allows the
    /// split-binary broadcast to pair ranks across subtrees.
    pub fn in_order_binary(p: usize, root: usize) -> Self {
        Self::check(p, root);
        let mut vparent: Vec<Option<usize>> = vec![None; p];
        // Recursive contiguous construction: the subtree over `lo..=hi`
        // is rooted at `lo`; its left child owns the first half of the
        // remainder, its right child the second half.
        fn build(vparent: &mut [Option<usize>], lo: usize, hi: usize) {
            if lo >= hi {
                return;
            }
            let rest = hi - lo; // number of descendants
            let left = rest.div_ceil(2);
            vparent[lo + 1] = Some(lo);
            build(vparent, lo + 1, lo + left);
            if rest > left {
                vparent[lo + left + 1] = Some(lo);
                build(vparent, lo + left + 1, hi);
            }
        }
        build(&mut vparent, 0, p - 1);
        Self::from_virtual_edges(p, root, vparent)
    }

    /// Balanced binomial tree (`build_bmtree`, paper Fig. 2): the
    /// children of virtual rank `v` are `v + 2^i` for all `2^i` smaller
    /// than `v`'s own distance bit (the whole range for the root), and
    /// the height is `⌊log₂ P⌋`.
    pub fn binomial(p: usize, root: usize) -> Self {
        Self::check(p, root);
        let mut vparent: Vec<Option<usize>> = vec![None; p];
        for (v, vp) in vparent.iter_mut().enumerate().skip(1) {
            // Parent is v with its lowest set bit cleared.
            let lsb = v & v.wrapping_neg();
            *vp = Some(v - lsb);
        }
        Self::from_virtual_edges(p, root, vparent)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.p
    }

    /// Whether the topology covers zero ranks (never true; kept for the
    /// conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.p == 0
    }

    /// The root rank.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `rank` (`None` for the root).
    pub fn parent(&self, rank: usize) -> Option<usize> {
        self.parent[rank]
    }

    /// Children of `rank`, in algorithm send order.
    pub fn children(&self, rank: usize) -> &[usize] {
        &self.children[rank]
    }

    /// Whether `rank` has no children.
    pub fn is_leaf(&self, rank: usize) -> bool {
        self.children[rank].is_empty()
    }

    /// Longest root-to-leaf edge count.
    pub fn height(&self) -> usize {
        // Virtual-rank order is not guaranteed topological over real
        // ranks, so walk from each node up to the root instead (trees
        // are shallow; p is at most a few hundred).
        let mut max = 0;
        for r in 0..self.p {
            let mut d = 0;
            let mut cur = r;
            while let Some(parent) = self.parent[cur] {
                d += 1;
                cur = parent;
            }
            max = max.max(d);
        }
        max
    }

    /// The largest child count over all ranks.
    pub fn max_children(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree(p={}, root={})", self.p, self.root)?;
        for r in 0..self.p {
            if !self.children[r].is_empty() {
                write!(f, " {r}->{:?}", self.children[r])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every non-root rank must have exactly one parent, and following
    /// parents must reach the root (i.e. the edges form a spanning tree).
    fn assert_spanning_tree(t: &Topology) {
        assert_eq!(t.parent(t.root()), None);
        for r in 0..t.len() {
            if r == t.root() {
                continue;
            }
            let mut cur = r;
            let mut hops = 0;
            while let Some(p) = t.parent(cur) {
                assert!(t.children(p).contains(&cur));
                cur = p;
                hops += 1;
                assert!(hops <= t.len(), "cycle detected at rank {r}");
            }
            assert_eq!(cur, t.root(), "rank {r} does not reach the root");
        }
        let total_children: usize = (0..t.len()).map(|r| t.children(r).len()).sum();
        assert_eq!(total_children, t.len() - 1);
    }

    #[test]
    fn all_builders_make_spanning_trees() {
        for p in [1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 90, 124] {
            for root in [0, p / 2, p - 1] {
                assert_spanning_tree(&Topology::linear(p, root));
                assert_spanning_tree(&Topology::chain(p, root));
                assert_spanning_tree(&Topology::k_chain(4, p, root));
                assert_spanning_tree(&Topology::binary(p, root));
                assert_spanning_tree(&Topology::in_order_binary(p, root));
                assert_spanning_tree(&Topology::binomial(p, root));
            }
        }
    }

    #[test]
    fn linear_shape() {
        let t = Topology::linear(5, 0);
        assert_eq!(t.children(0), &[1, 2, 3, 4]);
        assert_eq!(t.height(), 1);
        assert_eq!(t.max_children(), 4);
    }

    #[test]
    fn chain_shape() {
        let t = Topology::chain(4, 0);
        assert_eq!(t.children(0), &[1]);
        assert_eq!(t.children(1), &[2]);
        assert_eq!(t.children(2), &[3]);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn chain_with_nonzero_root_wraps() {
        let t = Topology::chain(4, 2);
        assert_eq!(t.children(2), &[3]);
        assert_eq!(t.children(3), &[0]);
        assert_eq!(t.children(0), &[1]);
        assert!(t.is_leaf(1));
    }

    #[test]
    fn k_chain_splits_into_chains() {
        // 9 ranks, root 0, 4 chains over 8 ranks: two per chain.
        let t = Topology::k_chain(4, 9, 0);
        assert_eq!(t.children(0).len(), 4);
        assert_eq!(t.height(), 2);
        // Chains are contiguous: 1-2, 3-4, 5-6, 7-8.
        assert_eq!(t.children(1), &[2]);
        assert_eq!(t.children(3), &[4]);
        assert_eq!(t.children(5), &[6]);
        assert_eq!(t.children(7), &[8]);
    }

    #[test]
    fn k_chain_with_uneven_division() {
        // 6 ranks: 5 non-root over 4 chains -> lengths 2,1,1,1.
        let t = Topology::k_chain(4, 6, 0);
        assert_eq!(t.children(0).len(), 4);
        assert_eq!(t.children(1), &[2]);
        assert!(t.is_leaf(3) && t.is_leaf(4) && t.is_leaf(5));
    }

    #[test]
    fn k_chain_caps_k_at_nonroot_count() {
        let t = Topology::k_chain(8, 3, 0);
        assert_eq!(t.children(0).len(), 2);
    }

    #[test]
    fn binary_is_heap_shaped() {
        let t = Topology::binary(7, 0);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.children(2), &[5, 6]);
        assert_eq!(t.height(), 2);
        assert_eq!(t.max_children(), 2);
    }

    #[test]
    fn in_order_binary_subtrees_are_contiguous() {
        let t = Topology::in_order_binary(8, 0);
        // Root's children split 1..=7 into 1..=4 and 5..=7.
        assert_eq!(t.children(0), &[1, 5]);
        // Left subtree root 1 covers 2..=4 -> children 2 and 4.
        assert_eq!(t.children(1), &[2, 4]);
        assert!(t.max_children() <= 2);
    }

    #[test]
    fn binomial_matches_paper_figure_2() {
        // P = 8 balanced binomial (paper Fig. 2): 0 -> {1, 2, 4},
        // 2 -> {3}, 4 -> {5, 6}, 6 -> {7}.
        let t = Topology::binomial(8, 0);
        assert_eq!(t.children(0), &[1, 2, 4]);
        assert_eq!(t.children(2), &[3]);
        assert_eq!(t.children(4), &[5, 6]);
        assert_eq!(t.children(6), &[7]);
        assert_eq!(t.height(), 3); // ⌊log2 8⌋
    }

    #[test]
    fn binomial_height_is_floor_log2() {
        for p in 2..130 {
            let t = Topology::binomial(p, 0);
            let expected = (usize::BITS - 1 - p.leading_zeros()) as usize;
            assert_eq!(t.height(), expected, "p = {p}");
        }
    }

    #[test]
    fn binomial_root_degree_is_ceil_log2() {
        for p in 2..130usize {
            let t = Topology::binomial(p, 0);
            let expected = (usize::BITS - (p - 1).leading_zeros()) as usize;
            assert_eq!(t.children(0).len(), expected, "p = {p}");
        }
    }

    #[test]
    fn single_rank_topologies() {
        for t in [
            Topology::linear(1, 0),
            Topology::chain(1, 0),
            Topology::binomial(1, 0),
        ] {
            assert_eq!(t.height(), 0);
            assert!(t.is_leaf(0));
            assert!(!t.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "root 3 out of range")]
    fn root_must_be_in_range() {
        let _ = Topology::binary(3, 3);
    }

    #[test]
    fn display_lists_edges() {
        let s = Topology::chain(3, 0).to_string();
        assert!(s.contains("0->[1]"));
        assert!(s.contains("1->[2]"));
    }
}
