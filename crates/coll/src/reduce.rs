//! Reduce algorithms (extension beyond the paper's broadcast focus).
//!
//! The paper's conclusion proposes extending the modelling approach to
//! other collectives; reduce is the mirror image of broadcast (data
//! flows *up* the same virtual topologies) and reuses the whole
//! toolbox. Ports follow `coll/base/coll_base_reduce.c`:
//!
//! * [`reduce_linear`] — the root receives every contribution and folds
//!   them (`reduce_intra_basic_linear`);
//! * [`reduce_binomial`], [`reduce_chain`], [`reduce_pipeline`],
//!   [`reduce_binary`], [`reduce_in_order_binary`] — segmented
//!   pipelined tree reductions via the shared engine
//!   [`reduce_tree_segmented`] (`ompi_coll_base_reduce_generic`).
//!
//! Payloads are vectors of little-endian `u64` lanes; [`ReduceOp`]
//! provides the usual commutative-associative MPI operators, so any
//! reduction order over the tree yields the same result (as with
//! `MPI_SUM` etc. on integer types).

use crate::alg::DEFAULT_CHAIN_FANOUT;
use crate::topology::Topology;
use collsel_mpi::Comm;
use collsel_support::Bytes;

const TAG_REDUCE: u32 = 0xF;

/// The catalogue of ported reduce algorithms, mirroring the Open MPI
/// 3.1 `MPI_Reduce` family (used by the extension models and the
/// dispatcher [`reduce`]).
///
/// | Variant | Open MPI routine | Topology | Segmented |
/// |---|---|---|---|
/// | `Linear` | `reduce_intra_basic_linear` | flat | no |
/// | `Chain` | `reduce_intra_chain` (4 chains) | 4 chains | yes |
/// | `Pipeline` | `reduce_intra_pipeline` | single chain | yes |
/// | `Binary` | `reduce_intra_binary` | heap binary | yes |
/// | `InOrderBinary` | `reduce_intra_in_order_binary` | in-order binary | yes |
/// | `Binomial` | `reduce_intra_binomial` | balanced binomial | yes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReduceAlg {
    /// Flat reduction at the root.
    Linear,
    /// Segmented reduction up [`DEFAULT_CHAIN_FANOUT`] parallel chains
    /// (Open MPI "chain").
    Chain,
    /// Segmented pipeline up a single chain (Open MPI "pipeline").
    Pipeline,
    /// Segmented reduction up a heap binary tree.
    Binary,
    /// Segmented reduction up an in-order binary tree. Open MPI uses
    /// this shape for non-commutative operators; our lane operators are
    /// commutative, so it is simply another pipelined tree here.
    InOrderBinary,
    /// Segmented reduction up a balanced binomial tree.
    Binomial,
}

impl ReduceAlg {
    /// All reduce algorithms, in a stable order.
    pub const ALL: [ReduceAlg; 6] = [
        ReduceAlg::Linear,
        ReduceAlg::Chain,
        ReduceAlg::Pipeline,
        ReduceAlg::Binary,
        ReduceAlg::InOrderBinary,
        ReduceAlg::Binomial,
    ];

    /// Short snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            ReduceAlg::Linear => "linear",
            ReduceAlg::Chain => "chain",
            ReduceAlg::Pipeline => "pipeline",
            ReduceAlg::Binary => "binary",
            ReduceAlg::InOrderBinary => "in_order_binary",
            ReduceAlg::Binomial => "binomial",
        }
    }

    /// Whether the algorithm splits the payload into pipeline segments.
    pub fn is_segmented(self) -> bool {
        !matches!(self, ReduceAlg::Linear)
    }
}

impl std::fmt::Display for ReduceAlg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown reduce algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReduceAlgError {
    input: String,
}

impl std::fmt::Display for ParseReduceAlgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown reduce algorithm `{}` (expected one of: linear, chain, pipeline, \
             binary, in_order_binary, binomial)",
            self.input
        )
    }
}

impl std::error::Error for ParseReduceAlgError {}

impl std::str::FromStr for ReduceAlg {
    type Err = ParseReduceAlgError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ReduceAlg::ALL
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| ParseReduceAlgError {
                input: s.to_owned(),
            })
    }
}

collsel_support::json_enum!(ReduceAlg {
    Linear,
    Chain,
    Pipeline,
    Binary,
    InOrderBinary,
    Binomial
});

/// Dispatches to the selected reduce algorithm (segmented algorithms
/// use `seg_size`; [`ReduceAlg::Linear`] ignores it).
pub fn reduce<C: Comm>(
    ctx: &mut C,
    alg: ReduceAlg,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    match alg {
        ReduceAlg::Linear => reduce_linear(ctx, root, op, contribution),
        ReduceAlg::Chain => reduce_chain(ctx, root, op, contribution, seg_size),
        ReduceAlg::Pipeline => reduce_pipeline(ctx, root, op, contribution, seg_size),
        ReduceAlg::Binary => reduce_binary(ctx, root, op, contribution, seg_size),
        ReduceAlg::InOrderBinary => reduce_in_order_binary(ctx, root, op, contribution, seg_size),
        ReduceAlg::Binomial => reduce_binomial(ctx, root, op, contribution, seg_size),
    }
}

/// A commutative, associative reduction operator over little-endian
/// `u64` lanes (the integer subset of MPI's predefined operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Wrapping element-wise sum (`MPI_SUM`).
    Sum,
    /// Element-wise maximum (`MPI_MAX`).
    Max,
    /// Element-wise minimum (`MPI_MIN`).
    Min,
    /// Element-wise bitwise xor (`MPI_BXOR`).
    Xor,
}

impl ReduceOp {
    fn fold_lane(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Xor => a ^ b,
        }
    }

    /// Folds `other` into `acc`, lane by lane.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length or are not a whole number
    /// of 8-byte lanes.
    pub fn fold(self, acc: &mut [u8], other: &[u8]) {
        assert_eq!(acc.len(), other.len(), "reduce buffers differ in length");
        assert!(
            acc.len().is_multiple_of(8),
            "reduce buffers must be u64 lanes"
        );
        for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
            let lane = self.fold_lane(
                u64::from_le_bytes(a.try_into().expect("8-byte chunk")),
                u64::from_le_bytes(b.try_into().expect("8-byte chunk")),
            );
            a.copy_from_slice(&lane.to_le_bytes());
        }
    }
}

fn check_contribution(contribution: &Bytes) {
    assert_eq!(
        contribution.len() % 8,
        0,
        "contribution must be a whole number of u64 lanes"
    );
}

/// Flat reduction (`reduce_intra_basic_linear`): every rank sends its
/// contribution to the root, which folds them in ascending rank order.
/// Returns `Some(result)` at the root, `None` elsewhere.
///
/// # Panics
///
/// Panics if `root` is out of range or the contribution is not a whole
/// number of lanes.
pub fn reduce_linear<C: Comm>(
    ctx: &mut C,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
) -> Option<Bytes> {
    assert!(root < ctx.size(), "reduce root {root} out of range");
    check_contribution(&contribution);
    if ctx.rank() == root {
        let reqs: Vec<_> = (0..ctx.size())
            .filter(|&src| src != root)
            .map(|src| ctx.irecv(src, TAG_REDUCE))
            .collect();
        let mut acc = contribution.to_vec();
        for (data, _) in ctx.wait_all_recvs(reqs) {
            op.fold(&mut acc, &data);
        }
        Some(Bytes::from(acc))
    } else {
        ctx.send(root, TAG_REDUCE, contribution);
        None
    }
}

/// The shared segmented tree-reduction engine
/// (`ompi_coll_base_reduce_generic`): data flows leaf-to-root down the
/// given topology, one segment at a time; every interior rank receives
/// each child's partial segment, folds it into its own, and forwards
/// the folded segment to its parent, pipelining across segments.
///
/// Returns `Some(result)` at the root, `None` elsewhere.
///
/// # Panics
///
/// Panics if `seg_size` is zero or not a multiple of 8, if `root` is
/// out of range, or if the contribution is not a whole number of lanes.
pub fn reduce_tree_segmented<C: Comm>(
    ctx: &mut C,
    tree: &Topology,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    assert!(root < ctx.size(), "reduce root {root} out of range");
    assert!(
        seg_size > 0 && seg_size.is_multiple_of(8),
        "segment size must be a positive multiple of 8"
    );
    check_contribution(&contribution);
    debug_assert_eq!(tree.root(), root);
    if ctx.size() == 1 {
        return Some(contribution);
    }

    let len = contribution.len();
    let ns = len.div_ceil(seg_size).max(1);
    let children = tree.children(ctx.rank()).to_vec();
    let mut acc = contribution.to_vec();

    // Pre-post the receives for the first segment from every child.
    let mut inflight: Vec<_> = children.iter().map(|&c| ctx.irecv(c, TAG_REDUCE)).collect();

    let mut out = Vec::with_capacity(ns);
    for i in 0..ns {
        let lo = (i * seg_size).min(len);
        let hi = ((i + 1) * seg_size).min(len);
        // Collect this segment's partials, pre-posting the next round
        // before folding (double buffering, as in the Open MPI loop).
        let arrived = ctx.wait_all_recvs(std::mem::take(&mut inflight));
        if i + 1 < ns {
            inflight = children.iter().map(|&c| ctx.irecv(c, TAG_REDUCE)).collect();
        }
        for (data, _) in arrived {
            op.fold(&mut acc[lo..hi], &data);
        }
        let folded = Bytes::copy_from_slice(&acc[lo..hi]);
        if let Some(parent) = tree.parent(ctx.rank()) {
            ctx.send(parent, TAG_REDUCE, folded);
        } else {
            out.push(folded);
        }
    }

    tree.parent(ctx.rank()).is_none().then(|| {
        debug_assert_eq!(out.iter().map(Bytes::len).sum::<usize>(), len);
        Bytes::from(acc)
    })
}

/// Segmented binomial-tree reduction (`reduce_intra_binomial`).
pub fn reduce_binomial<C: Comm>(
    ctx: &mut C,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    let tree = Topology::binomial(ctx.size(), root);
    reduce_tree_segmented(ctx, &tree, root, op, contribution, seg_size)
}

/// Segmented reduction up [`DEFAULT_CHAIN_FANOUT`] parallel chains
/// (`reduce_intra_chain` with Open MPI's default fanout).
pub fn reduce_chain<C: Comm>(
    ctx: &mut C,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    let tree = Topology::k_chain(DEFAULT_CHAIN_FANOUT, ctx.size(), root);
    reduce_tree_segmented(ctx, &tree, root, op, contribution, seg_size)
}

/// Segmented single-chain (pipeline) reduction
/// (`reduce_intra_pipeline`).
pub fn reduce_pipeline<C: Comm>(
    ctx: &mut C,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    let tree = Topology::chain(ctx.size(), root);
    reduce_tree_segmented(ctx, &tree, root, op, contribution, seg_size)
}

/// Segmented reduction up an in-order binary tree
/// (`reduce_intra_in_order_binary`).
pub fn reduce_in_order_binary<C: Comm>(
    ctx: &mut C,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    let tree = Topology::in_order_binary(ctx.size(), root);
    reduce_tree_segmented(ctx, &tree, root, op, contribution, seg_size)
}

/// Segmented binary-tree reduction (`reduce_intra_bintree`).
pub fn reduce_binary<C: Comm>(
    ctx: &mut C,
    root: usize,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Option<Bytes> {
    let tree = Topology::binary(ctx.size(), root);
    reduce_tree_segmented(ctx, &tree, root, op, contribution, seg_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;

    fn lanes(rank: usize, n: usize) -> Bytes {
        let mut v = Vec::with_capacity(n * 8);
        for lane in 0..n {
            v.extend_from_slice(&((rank * 1000 + lane) as u64).to_le_bytes());
        }
        Bytes::from(v)
    }

    fn expected(op: ReduceOp, p: usize, n: usize) -> Vec<u64> {
        (0..n)
            .map(|lane| {
                (0..p)
                    .map(|rank| (rank * 1000 + lane) as u64)
                    .reduce(|a, b| op.fold_lane(a, b))
                    .expect("p >= 1")
            })
            .collect()
    }

    fn decode(b: &Bytes) -> Vec<u64> {
        b.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn check(
        f: impl Fn(&mut collsel_mpi::Ctx, usize, ReduceOp, Bytes) -> Option<Bytes> + Sync,
        op: ReduceOp,
        p: usize,
        root: usize,
        n: usize,
    ) {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, p, 0, move |ctx| {
            f(ctx, root, op, lanes(ctx.rank(), n))
        })
        .unwrap();
        for (rank, res) in out.results.iter().enumerate() {
            if rank == root {
                assert_eq!(
                    decode(res.as_ref().expect("root gets the result")),
                    expected(op, p, n),
                    "op={op:?} p={p} root={root}"
                );
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn linear_reduce_all_ops() {
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Xor] {
            check(reduce_linear, op, 7, 2, 16);
        }
    }

    #[test]
    fn tree_reduces_match_linear() {
        for p in [1, 2, 3, 5, 9, 16] {
            for root in [0, p - 1] {
                for alg in ReduceAlg::ALL {
                    let op = if alg == ReduceAlg::Binary {
                        ReduceOp::Max
                    } else {
                        ReduceOp::Sum
                    };
                    check(
                        move |c, r, o, b| reduce(c, alg, r, o, b, 64),
                        op,
                        p,
                        root,
                        40,
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_names_round_trip() {
        for alg in ReduceAlg::ALL {
            assert_eq!(alg.name().parse::<ReduceAlg>().unwrap(), alg);
            assert_eq!(alg.is_segmented(), alg != ReduceAlg::Linear);
        }
        assert!("bogus".parse::<ReduceAlg>().is_err());
    }

    #[test]
    fn segmentation_boundaries() {
        // 40 lanes = 320 bytes; segment sizes that divide, straddle and
        // exceed the payload.
        for seg in [8, 24, 320, 640] {
            check(
                |c, r, o, b| reduce_binomial(c, r, o, b, seg),
                ReduceOp::Sum,
                6,
                0,
                40,
            );
        }
    }

    #[test]
    fn empty_contribution() {
        check(
            |c, r, o, b| reduce_binomial(c, r, o, b, 64),
            ReduceOp::Sum,
            4,
            0,
            0,
        );
    }

    #[test]
    fn fold_lane_semantics() {
        assert_eq!(ReduceOp::Sum.fold_lane(u64::MAX, 1), 0, "wrapping");
        assert_eq!(ReduceOp::Max.fold_lane(3, 9), 9);
        assert_eq!(ReduceOp::Min.fold_lane(3, 9), 3);
        assert_eq!(ReduceOp::Xor.fold_lane(0b1100, 0b1010), 0b0110);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn fold_rejects_mismatched_lengths() {
        let mut a = vec![0u8; 16];
        ReduceOp::Sum.fold(&mut a, &[0u8; 8]);
    }

    #[test]
    fn tree_reduce_rejects_unaligned_segments() {
        let cluster = ClusterModel::gros();
        let err = simulate(&cluster, 2, 0, |ctx| {
            reduce_binomial(ctx, 0, ReduceOp::Sum, lanes(ctx.rank(), 4), 12)
        })
        .unwrap_err();
        match err {
            collsel_mpi::SimError::RankPanic { message, .. } => {
                assert!(message.contains("multiple of 8"), "{message}");
            }
            other => panic!("expected rank panic, got {other}"),
        }
    }
}
