//! Compiling collectives to [`Schedule`]s for the event-driven backend.
//!
//! Each `compile_*` function runs the corresponding collective once
//! against a recording context ([`collsel_mpi::record_schedule`]), so
//! the schedule IR is *derived from the implementing code* — the same
//! principle the paper applies when deriving analytical models from the
//! implementations. The resulting [`Schedule`] replays under any seed,
//! fault plan or watchdog deadline via
//! [`collsel_mpi::simulate_scheduled`] with zero OS threads per run,
//! bit-identical to the threaded backend.
//!
//! All collectives here are compilable: their operation streams depend
//! only on `(rank, size, payload lengths, seg_size)`, never on timing
//! or payload contents. Payloads are synthesised internally (replay
//! timing depends only on lengths).

use crate::alg::BcastAlg;
use crate::bcast::bcast;
use crate::gather::gather_linear;
use crate::{
    allgather_ring, allreduce_recursive_doubling, alltoall_pairwise, barrier_dissemination, reduce,
    scatter_binomial, ReduceAlg, ReduceOp,
};
use collsel_mpi::{record_schedule, Comm, GroupComm, RecordError, Schedule, GROUP_TAG_STRIDE};
use collsel_netsim::ClusterModel;
use collsel_support::payload::payload;
use collsel_support::Bytes;

/// Payload of `lanes` little-endian `u64` lanes for the reductions.
fn lane_payload(rank: usize, lanes: usize) -> Bytes {
    let mut v = Vec::with_capacity(lanes * 8);
    for lane in 0..lanes {
        v.extend_from_slice(&((rank * 1000 + lane) as u64).to_le_bytes());
    }
    Bytes::from(v)
}

/// Compiles one broadcast algorithm at geometry `(p, root, len,
/// seg_size)` into a per-rank schedule.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails (the broadcast ports use
/// no wildcards, so `Unsupported` cannot occur for them).
///
/// # Panics
///
/// Panics on invalid geometry (zero ranks, root out of range, zero
/// `seg_size` for a segmented algorithm), as [`bcast`] would.
pub fn compile_bcast(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    root: usize,
    len: usize,
    seg_size: usize,
) -> Result<Schedule, RecordError> {
    let msg = payload(len);
    record_schedule(cluster, p, move |rc| {
        let m = (rc.rank() == root).then(|| msg.clone());
        bcast(rc, alg, root, m, len, seg_size);
    })
}

/// Compiles the paper's measurement round: one timed repetition of
/// `bcast` framed by barriers and `wtime` reads, repeated `reps` times
/// — the exact program `estim::measure` times on the threaded backend.
///
/// Per repetition the recorded ops are: `barrier; t0 = wtime; bcast;
/// barrier; t1 = wtime`, so each rank observes `2·reps` clock values
/// and the root's consecutive pairs are the timing samples.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
///
/// # Panics
///
/// Panics on invalid geometry, as [`bcast`] would.
pub fn compile_timed_bcast(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    root: usize,
    len: usize,
    seg_size: usize,
    reps: usize,
) -> Result<Schedule, RecordError> {
    let msg = payload(len);
    record_schedule(cluster, p, move |rc| {
        for _ in 0..reps {
            rc.barrier();
            let _ = rc.wtime();
            let m = (rc.rank() == root).then(|| msg.clone());
            bcast(rc, alg, root, m, len, seg_size);
            rc.barrier();
            let _ = rc.wtime();
        }
    })
}

/// Compiles the breadth measurement round: `reps` timed repetitions of
/// any collective algorithm (via
/// [`run_collective`](crate::collective::run_collective)), each framed
/// `barrier; t0 = wtime; op; barrier; t1 = wtime` — the same protocol
/// as [`compile_timed_bcast`], so `estim` times every collective the
/// same way on both backends.
///
/// `m` follows `run_collective`'s convention (total vector for
/// bcast/reduce/allreduce, per-rank block otherwise).
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
///
/// # Panics
///
/// Panics on invalid geometry, as the underlying collective would.
pub fn compile_timed_collective(
    cluster: &ClusterModel,
    alg: crate::collective::Alg,
    p: usize,
    root: usize,
    m: usize,
    seg_size: usize,
    reps: usize,
) -> Result<Schedule, RecordError> {
    record_schedule(cluster, p, move |rc| {
        for _ in 0..reps {
            rc.barrier();
            let _ = rc.wtime();
            crate::collective::run_collective(rc, alg, root, m, seg_size);
            rc.barrier();
            let _ = rc.wtime();
        }
    })
}

/// Compiles the paper's Sect. 4.2 measurement round: `reps` timed
/// repetitions of `bcast` followed by a linear gather, each opened by a
/// barrier and a `wtime` read and closed by a `wtime` read alone (the
/// experiment finishes on the root, so no closing barrier is needed) —
/// the exact program `estim::measure` times on the threaded backend.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
///
/// # Panics
///
/// Panics on invalid geometry, as [`bcast`] would.
#[allow(clippy::too_many_arguments)]
pub fn compile_timed_bcast_gather(
    cluster: &ClusterModel,
    alg: BcastAlg,
    p: usize,
    root: usize,
    m: usize,
    m_g: usize,
    seg_size: usize,
    reps: usize,
) -> Result<Schedule, RecordError> {
    let msg = payload(m);
    let contrib = payload(m_g);
    record_schedule(cluster, p, move |rc| {
        for _ in 0..reps {
            rc.barrier();
            let _ = rc.wtime();
            let data = (rc.rank() == root).then(|| msg.clone());
            let _ = bcast(rc, alg, root, data, m, seg_size);
            let _ = gather_linear(rc, root, contrib.clone());
            let _ = rc.wtime();
        }
    })
}

/// Compiles the paper's Sect. 4.1 measurement round: one `wtime`d run
/// of `calls` successive linear-tree broadcasts of a `seg_size`-byte
/// segment, each followed by a barrier — the exact program
/// `estim::measure` times on the threaded backend (the sample is the
/// root's single clock pair divided by `calls`).
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_timed_linear_segment(
    cluster: &ClusterModel,
    p: usize,
    root: usize,
    seg_size: usize,
    calls: usize,
) -> Result<Schedule, RecordError> {
    let msg = payload(seg_size);
    record_schedule(cluster, p, move |rc| {
        rc.barrier();
        let _ = rc.wtime();
        for _ in 0..calls {
            let data = (rc.rank() == root).then(|| msg.clone());
            let _ = crate::bcast_linear(rc, root, data, msg.len());
            rc.barrier();
        }
        let _ = rc.wtime();
    })
}

/// Compiles the linear gather at geometry `(p, root, len)`.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_gather_linear(
    cluster: &ClusterModel,
    p: usize,
    root: usize,
    len: usize,
) -> Result<Schedule, RecordError> {
    let contribution = payload(len);
    record_schedule(cluster, p, move |rc| {
        gather_linear(rc, root, contribution.clone());
    })
}

/// Compiles the binomial scatter at geometry `(p, root, len)` (each
/// rank's block is `len` bytes).
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_scatter_binomial(
    cluster: &ClusterModel,
    p: usize,
    root: usize,
    len: usize,
) -> Result<Schedule, RecordError> {
    record_schedule(cluster, p, move |rc| {
        let blocks = (rc.rank() == root).then(|| (0..p).map(|_| payload(len)).collect());
        scatter_binomial(rc, root, blocks);
    })
}

/// Compiles the ring allgather at geometry `(p, len)`.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_allgather_ring(
    cluster: &ClusterModel,
    p: usize,
    len: usize,
) -> Result<Schedule, RecordError> {
    let block = payload(len);
    record_schedule(cluster, p, move |rc| {
        allgather_ring(rc, block.clone());
    })
}

/// Compiles a reduce algorithm at geometry `(p, root, lanes,
/// seg_size)` — payloads are `lanes` `u64` lanes.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_reduce(
    cluster: &ClusterModel,
    alg: ReduceAlg,
    p: usize,
    root: usize,
    lanes: usize,
    seg_size: usize,
) -> Result<Schedule, RecordError> {
    record_schedule(cluster, p, move |rc| {
        reduce(
            rc,
            alg,
            root,
            ReduceOp::Sum,
            lane_payload(rc.rank(), lanes),
            seg_size,
        );
    })
}

/// Compiles the recursive-doubling allreduce at geometry `(p, lanes)`.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_allreduce_recursive_doubling(
    cluster: &ClusterModel,
    p: usize,
    lanes: usize,
) -> Result<Schedule, RecordError> {
    record_schedule(cluster, p, move |rc| {
        allreduce_recursive_doubling(rc, ReduceOp::Sum, lane_payload(rc.rank(), lanes));
    })
}

/// Compiles the pairwise all-to-all at geometry `(p, len)` (each block
/// is `len` bytes).
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_alltoall_pairwise(
    cluster: &ClusterModel,
    p: usize,
    len: usize,
) -> Result<Schedule, RecordError> {
    record_schedule(cluster, p, move |rc| {
        alltoall_pairwise(rc, (0..p).map(|_| payload(len)).collect());
    })
}

/// Compiles the dissemination barrier at world size `p`.
///
/// # Errors
///
/// [`RecordError`] if the recording run fails.
pub fn compile_barrier_dissemination(
    cluster: &ClusterModel,
    p: usize,
) -> Result<Schedule, RecordError> {
    record_schedule(cluster, p, |rc| {
        barrier_dissemination(rc);
    })
}

/// One collective of a workload step, bound to a sub-communicator.
///
/// `ranks` lists the group's global members in ascending order; the
/// collective's root is group rank 0 (the lowest member). `m` follows
/// [`crate::run_collective`]'s convention: total vector size for
/// bcast/reduce/allreduce, per-rank block size otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupCall {
    /// The algorithm to run (also names the collective).
    pub alg: crate::collective::Alg,
    /// Global ranks of the sub-communicator, ascending, no duplicates.
    pub ranks: Vec<usize>,
    /// Message size in bytes (see [`crate::run_collective`]).
    pub m: usize,
    /// Segment size in bytes (0 means unsegmented where applicable).
    pub seg_size: usize,
}

/// Runs one workload step — a set of collectives on (possibly
/// overlapping) sub-communicators — from the perspective of one rank.
///
/// Calls are issued in list order; each gets its own tag window
/// ([`GROUP_TAG_STRIDE`]) so overlapping groups can be in flight
/// concurrently without channel collisions. A rank that is not a
/// member of a call's group skips that call (no synchronisation — the
/// step ends when every member of every group is done). The op stream
/// is a pure function of `(rank, world, calls)`, so the step is
/// compilable ([`compile_step`]) like any single collective.
///
/// # Panics
///
/// Panics on an invalid group (empty, out-of-world member, duplicate)
/// or more calls than tag windows.
pub fn run_step<C: Comm>(ctx: &mut C, calls: &[GroupCall]) {
    assert!(
        calls.len() < (u32::MAX / GROUP_TAG_STRIDE) as usize,
        "step has more calls than tag windows"
    );
    for (i, call) in calls.iter().enumerate() {
        let tag_base = i as u32 * GROUP_TAG_STRIDE;
        if let Some(mut group) = GroupComm::new(ctx, &call.ranks, tag_base) {
            crate::collective::run_collective(&mut group, call.alg, 0, call.m, call.seg_size);
        }
    }
}

/// Compiles one workload step into a `world`-rank schedule
/// ([`run_step`] against a recording context).
///
/// # Errors
///
/// [`RecordError`] if the recording run fails (the group collectives
/// use no wildcards, so `Unsupported` cannot occur).
///
/// # Panics
///
/// Panics on invalid groups, as [`run_step`] would.
pub fn compile_step(
    cluster: &ClusterModel,
    world: usize,
    calls: &[GroupCall],
) -> Result<Schedule, RecordError> {
    let calls = calls.to_vec();
    record_schedule(cluster, world, move |rc| run_step(rc, &calls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::{simulate_scheduled, simulate_with, Comm, Ctx, SimOptions};

    const OPTS: SimOptions = SimOptions {
        traced: true,
        deadline: None,
    };

    /// Replaying a compiled schedule must match running the same
    /// program live on the threaded backend, bit for bit.
    fn assert_equivalent(
        cluster: &ClusterModel,
        p: usize,
        sched: &Schedule,
        program: impl Fn(&mut Ctx) + Sync,
    ) {
        for seed in [0u64, 3, 77] {
            let threaded =
                simulate_with(cluster, p, seed, OPTS, |ctx| program(ctx)).expect("threaded run");
            let replay = simulate_scheduled(cluster, sched, seed, OPTS).expect("replay run");
            assert_eq!(threaded.report.finish_times, replay.report.finish_times);
            assert_eq!(threaded.report.makespan, replay.report.makespan);
            assert_eq!(threaded.report.messages, replay.report.messages);
            assert_eq!(threaded.report.bytes, replay.report.bytes);
            assert_eq!(threaded.report.trace, replay.report.trace);
        }
    }

    #[test]
    fn step_with_overlapping_groups_replays_and_compiles_identically() {
        use crate::collective::Alg;
        use crate::{AllgatherAlg, AllreduceAlg};
        use collsel_mpi::{simulate_dag, TimingDag};

        let cluster = ClusterModel::gros();
        let world = 8;
        // dp/tp-style overlap: two strided data-parallel allreduces, a
        // tensor-parallel allgather on a contiguous block, and a
        // broadcast on a group sharing members with all of them.
        let calls = vec![
            GroupCall {
                alg: Alg::Allreduce(AllreduceAlg::RecursiveDoubling),
                ranks: vec![0, 2, 4, 6],
                m: 32 * 1024,
                seg_size: 8 * 1024,
            },
            GroupCall {
                alg: Alg::Allreduce(AllreduceAlg::RecursiveDoubling),
                ranks: vec![1, 3, 5, 7],
                m: 32 * 1024,
                seg_size: 8 * 1024,
            },
            GroupCall {
                alg: Alg::Allgather(AllgatherAlg::Ring),
                ranks: vec![0, 1, 2, 3],
                m: 4 * 1024,
                seg_size: 0,
            },
            GroupCall {
                alg: Alg::Bcast(BcastAlg::Binomial),
                ranks: vec![0, 4, 5, 6, 7],
                m: 16 * 1024,
                seg_size: 8 * 1024,
            },
        ];
        let sched = compile_step(&cluster, world, &calls).expect("step compiles");
        assert_eq!(sched.ranks(), world);
        {
            let calls = calls.clone();
            assert_equivalent(&cluster, world, &sched, move |ctx| run_step(ctx, &calls));
        }
        // The compiled step also lowers to a timing DAG bit-identically.
        let dag = TimingDag::compile(&cluster, &sched).expect("step fits the DAG");
        for seed in [0u64, 3, 77] {
            let replay = simulate_scheduled(&cluster, &sched, seed, OPTS).expect("replay");
            let fast = simulate_dag(&cluster, &dag, seed, OPTS).expect("dag");
            assert_eq!(replay.report.finish_times, fast.report.finish_times);
            assert_eq!(replay.report.makespan, fast.report.makespan);
            assert_eq!(replay.report.trace, fast.report.trace);
        }
    }

    #[test]
    fn all_bcast_algorithms_compile_and_replay_identically() {
        let cluster = ClusterModel::grisou();
        let (p, root, len, seg) = (9, 1, 40_000, 8 * 1024);
        for alg in BcastAlg::ALL {
            let sched = compile_bcast(&cluster, alg, p, root, len, seg).expect("compiles");
            assert_eq!(sched.ranks(), p);
            let msg = payload(len);
            assert_equivalent(&cluster, p, &sched, move |ctx| {
                let m = (Comm::rank(ctx) == root).then(|| msg.clone());
                bcast(ctx, alg, root, m, len, seg);
            });
        }
    }

    #[test]
    fn timed_bcast_schedule_replays_identically() {
        let cluster = ClusterModel::gros();
        let (p, root, len, seg, reps) = (6, 0, 10_000, 4096, 3);
        let sched = compile_timed_bcast(&cluster, BcastAlg::Binomial, p, root, len, seg, reps)
            .expect("compiles");
        let msg = payload(len);
        assert_equivalent(&cluster, p, &sched, move |ctx| {
            for _ in 0..reps {
                ctx.barrier();
                let _ = ctx.wtime();
                let m = (Comm::rank(ctx) == root).then(|| msg.clone());
                bcast(ctx, BcastAlg::Binomial, root, m, len, seg);
                ctx.barrier();
                let _ = ctx.wtime();
            }
        });
    }

    #[test]
    fn timed_bcast_gather_schedule_replays_identically() {
        let cluster = ClusterModel::grisou();
        let (p, root, m, m_g, seg, reps) = (5, 0, 20_000, 1024, 8192, 2);
        let sched =
            compile_timed_bcast_gather(&cluster, BcastAlg::Chain, p, root, m, m_g, seg, reps)
                .expect("compiles");
        let msg = payload(m);
        let contrib = payload(m_g);
        assert_equivalent(&cluster, p, &sched, move |ctx| {
            for _ in 0..reps {
                ctx.barrier();
                let _ = ctx.wtime();
                let data = (Comm::rank(ctx) == root).then(|| msg.clone());
                let _ = bcast(ctx, BcastAlg::Chain, root, data, m, seg);
                let _ = gather_linear(ctx, root, contrib.clone());
                let _ = ctx.wtime();
            }
        });
    }

    #[test]
    fn timed_linear_segment_schedule_replays_identically() {
        let cluster = ClusterModel::gros();
        let (p, root, seg, calls) = (5, 0, 4096, 4);
        let sched = compile_timed_linear_segment(&cluster, p, root, seg, calls).expect("compiles");
        let msg = payload(seg);
        assert_equivalent(&cluster, p, &sched, move |ctx| {
            ctx.barrier();
            let _ = ctx.wtime();
            for _ in 0..calls {
                let data = (Comm::rank(ctx) == root).then(|| msg.clone());
                let _ = crate::bcast_linear(ctx, root, data, msg.len());
                ctx.barrier();
            }
            let _ = ctx.wtime();
        });
    }

    #[test]
    fn other_collectives_compile_and_replay_identically() {
        let cluster = ClusterModel::gros();
        let p = 7;

        let sched = compile_gather_linear(&cluster, p, 2, 512).expect("gather");
        assert_equivalent(&cluster, p, &sched, |ctx| {
            gather_linear(ctx, 2, payload(512));
        });

        let sched = compile_scatter_binomial(&cluster, p, 0, 256).expect("scatter");
        assert_equivalent(&cluster, p, &sched, move |ctx| {
            let blocks = (Comm::rank(ctx) == 0).then(|| (0..p).map(|_| payload(256)).collect());
            scatter_binomial(ctx, 0, blocks);
        });

        let sched = compile_allgather_ring(&cluster, p, 300).expect("allgather");
        assert_equivalent(&cluster, p, &sched, |ctx| {
            allgather_ring(ctx, payload(300));
        });

        let sched = compile_reduce(&cluster, ReduceAlg::Binomial, p, 0, 64, 128).expect("reduce");
        assert_equivalent(&cluster, p, &sched, |ctx| {
            reduce(
                ctx,
                ReduceAlg::Binomial,
                0,
                ReduceOp::Sum,
                lane_payload(Comm::rank(ctx), 64),
                128,
            );
        });

        let sched = compile_allreduce_recursive_doubling(&cluster, p, 32).expect("allreduce");
        assert_equivalent(&cluster, p, &sched, |ctx| {
            allreduce_recursive_doubling(ctx, ReduceOp::Sum, lane_payload(Comm::rank(ctx), 32));
        });

        let sched = compile_alltoall_pairwise(&cluster, p, 128).expect("alltoall");
        assert_equivalent(&cluster, p, &sched, move |ctx| {
            alltoall_pairwise(ctx, (0..p).map(|_| payload(128)).collect());
        });

        let sched = compile_barrier_dissemination(&cluster, p).expect("barrier");
        assert_equivalent(&cluster, p, &sched, |ctx| {
            barrier_dissemination(ctx);
        });
    }
}
