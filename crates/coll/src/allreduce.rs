//! Allreduce algorithms (extension): every rank ends up with the
//! reduction of all contributions.
//!
//! Ports follow `coll/base/coll_base_allreduce.c`:
//!
//! * [`allreduce_reduce_bcast`] — the classic composition: reduce to
//!   rank 0, then broadcast the result (`allreduce_intra_basic`);
//! * [`allreduce_recursive_doubling`] — log₂P exchange-and-fold rounds
//!   (`allreduce_intra_recursivedoubling`), handling non-power-of-two
//!   worlds with the standard fold-in/fold-out pre/post phases.

use crate::bcast::bcast_binomial;
use crate::reduce::{reduce_binomial, ReduceOp};
use collsel_mpi::Comm;
use collsel_support::Bytes;

const TAG_ALLREDUCE: u32 = 0x3A;

/// Reduce-then-broadcast allreduce: binomial reduce to rank 0 followed
/// by a binomial broadcast of the result.
///
/// # Panics
///
/// Panics if the contribution is not a whole number of `u64` lanes or
/// `seg_size` is not a positive multiple of 8.
pub fn allreduce_reduce_bcast<C: Comm>(
    ctx: &mut C,
    op: ReduceOp,
    contribution: Bytes,
    seg_size: usize,
) -> Bytes {
    let len = contribution.len();
    let reduced = reduce_binomial(ctx, 0, op, contribution, seg_size);
    bcast_binomial(ctx, 0, reduced, len, seg_size)
}

/// Recursive-doubling allreduce: in round `k`, partners at distance
/// `2^k` exchange their current values and fold; after log₂P rounds
/// every rank holds the full reduction.
///
/// Non-power-of-two worlds use the standard trick: the first
/// `P - 2^⌊log₂P⌋` "extra" ranks fold their value into a partner before
/// the rounds and receive the final result afterwards.
///
/// # Panics
///
/// Panics if the contribution is not a whole number of `u64` lanes.
pub fn allreduce_recursive_doubling<C: Comm>(
    ctx: &mut C,
    op: ReduceOp,
    contribution: Bytes,
) -> Bytes {
    assert!(
        contribution.len().is_multiple_of(8),
        "contribution must be a whole number of u64 lanes"
    );
    let p = ctx.size();
    if p == 1 {
        return contribution;
    }
    let me = ctx.rank();
    // Largest power of two <= p, and the number of "extra" ranks.
    let pow2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let extra = p - pow2;

    let mut value = contribution.to_vec();

    // Pre-phase: extras send their value to their base partner and sit
    // out; the partners fold it in.
    let participating = if me < 2 * extra {
        if me.is_multiple_of(2) {
            // Extra rank: ship the value to me+1 and wait for the result.
            ctx.send(me + 1, TAG_ALLREDUCE, Bytes::from(value.clone()));
            false
        } else {
            let (data, _) = ctx.recv(me - 1, TAG_ALLREDUCE);
            op.fold(&mut value, &data);
            true
        }
    } else {
        true
    };

    if participating {
        // Map to a dense 0..pow2 id space.
        let id = if me < 2 * extra { me / 2 } else { me - extra };
        let unmap = |v: usize| if v < extra { 2 * v + 1 } else { v + extra };
        let mut dist = 1;
        while dist < pow2 {
            let partner = unmap(id ^ dist);
            let (data, _) = ctx.sendrecv(
                partner,
                TAG_ALLREDUCE,
                Bytes::from(value.clone()),
                partner,
                TAG_ALLREDUCE,
            );
            op.fold(&mut value, &data);
            dist *= 2;
        }
        // Post-phase: return the result to my extra rank, if any.
        if me < 2 * extra {
            ctx.send(me - 1, TAG_ALLREDUCE, Bytes::from(value.clone()));
        }
        Bytes::from(value)
    } else {
        ctx.recv(me + 1, TAG_ALLREDUCE).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;

    fn lanes(rank: usize, n: usize) -> Bytes {
        let mut v = Vec::with_capacity(n * 8);
        for lane in 0..n {
            v.extend_from_slice(&((rank * 100 + lane) as u64).to_le_bytes());
        }
        Bytes::from(v)
    }

    fn expected(op: ReduceOp, p: usize, n: usize) -> Bytes {
        let mut acc = lanes(0, n).to_vec();
        for r in 1..p {
            op.fold(&mut acc, &lanes(r, n));
        }
        Bytes::from(acc)
    }

    fn check(f: impl Fn(&mut collsel_mpi::Ctx, Bytes) -> Bytes + Sync, op: ReduceOp, p: usize) {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, p, 0, move |ctx| f(ctx, lanes(ctx.rank(), 12))).unwrap();
        let want = expected(op, p, 12);
        for (rank, got) in out.results.iter().enumerate() {
            assert_eq!(got, &want, "op={op:?} p={p} rank={rank}");
        }
    }

    #[test]
    fn reduce_bcast_composition() {
        for p in [1, 2, 3, 5, 8, 13] {
            check(
                |ctx, b| allreduce_reduce_bcast(ctx, ReduceOp::Sum, b, 64),
                ReduceOp::Sum,
                p,
            );
        }
    }

    #[test]
    fn recursive_doubling_powers_of_two() {
        for p in [1, 2, 4, 8, 16] {
            check(
                |ctx, b| allreduce_recursive_doubling(ctx, ReduceOp::Sum, b),
                ReduceOp::Sum,
                p,
            );
        }
    }

    #[test]
    fn recursive_doubling_non_powers_of_two() {
        for p in [3, 5, 6, 7, 11, 12] {
            check(
                |ctx, b| allreduce_recursive_doubling(ctx, ReduceOp::Max, b),
                ReduceOp::Max,
                p,
            );
        }
    }

    #[test]
    fn all_ops_agree_between_algorithms() {
        let cluster = ClusterModel::gros();
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Xor] {
            let p = 9;
            let a = simulate(&cluster, p, 0, move |ctx| {
                allreduce_reduce_bcast(ctx, op, lanes(ctx.rank(), 8), 64)
            })
            .unwrap();
            let b = simulate(&cluster, p, 0, move |ctx| {
                allreduce_recursive_doubling(ctx, op, lanes(ctx.rank(), 8))
            })
            .unwrap();
            assert_eq!(a.results, b.results, "op={op:?}");
        }
    }
}
