//! The catalogue of broadcast algorithms, mirroring Open MPI 3.1's
//! `MPI_Bcast` implementations.

use std::fmt;
use std::str::FromStr;

/// Default number of chains of the k-chain broadcast (Open MPI's
/// `chains = 4` default for `bcast_intra_chain`).
pub const DEFAULT_CHAIN_FANOUT: usize = 4;

/// The six tree-based broadcast algorithms Open MPI 3.1 implements and
/// the paper models.
///
/// | Variant | Open MPI routine | Topology | Segmented |
/// |---|---|---|---|
/// | `Linear` | `bcast_intra_basic_linear` | flat | no |
/// | `Chain` | `bcast_intra_pipeline` | single chain | yes |
/// | `KChain` | `bcast_intra_chain` (4 chains) | 4 chains | yes |
/// | `SplitBinary` | `bcast_intra_split_bintree` | in-order binary | yes |
/// | `Binary` | `bcast_intra_bintree` | heap binary | yes |
/// | `Binomial` | `bcast_intra_binomial` | balanced binomial | yes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BcastAlg {
    /// Flat non-segmented broadcast: the root isends the whole message to
    /// every rank and waits for all sends.
    Linear,
    /// Pipelined broadcast down a single chain (Open MPI "pipeline").
    Chain,
    /// Pipelined broadcast down [`DEFAULT_CHAIN_FANOUT`] parallel chains
    /// (Open MPI "chain", the paper's *K-Chain tree*).
    KChain,
    /// The message is split in half; the halves are pipelined down the
    /// two subtrees of an in-order binary tree and finally swapped
    /// pairwise between the subtrees.
    SplitBinary,
    /// Segmented pipelined broadcast down a heap-shaped binary tree.
    Binary,
    /// Segmented pipelined broadcast down a balanced binomial tree
    /// (the algorithm modelled in Sect. 3.1 of the paper).
    Binomial,
}

impl BcastAlg {
    /// All algorithms, in a stable display order.
    pub const ALL: [BcastAlg; 6] = [
        BcastAlg::Linear,
        BcastAlg::Chain,
        BcastAlg::KChain,
        BcastAlg::SplitBinary,
        BcastAlg::Binary,
        BcastAlg::Binomial,
    ];

    /// Short snake_case identifier (used in tables and CSV output),
    /// matching the paper's Table 3 row labels.
    pub fn name(self) -> &'static str {
        match self {
            BcastAlg::Linear => "linear",
            BcastAlg::Chain => "chain",
            BcastAlg::KChain => "k_chain",
            BcastAlg::SplitBinary => "split_binary",
            BcastAlg::Binary => "binary",
            BcastAlg::Binomial => "binomial",
        }
    }

    /// Whether the algorithm splits the message into pipeline segments.
    pub fn is_segmented(self) -> bool {
        !matches!(self, BcastAlg::Linear)
    }
}

impl fmt::Display for BcastAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBcastAlgError {
    input: String,
}

impl fmt::Display for ParseBcastAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown broadcast algorithm `{}` (expected one of: linear, chain, k_chain, \
             split_binary, binary, binomial)",
            self.input
        )
    }
}

impl std::error::Error for ParseBcastAlgError {}

impl FromStr for BcastAlg {
    type Err = ParseBcastAlgError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BcastAlg::ALL
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| ParseBcastAlgError {
                input: s.to_owned(),
            })
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_enum!(BcastAlg {
    Linear,
    Chain,
    KChain,
    SplitBinary,
    Binary,
    Binomial
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for alg in BcastAlg::ALL {
            assert_eq!(alg.name().parse::<BcastAlg>().unwrap(), alg);
            assert_eq!(alg.to_string(), alg.name());
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "bogus".parse::<BcastAlg>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn only_linear_is_unsegmented() {
        for alg in BcastAlg::ALL {
            assert_eq!(alg.is_segmented(), alg != BcastAlg::Linear);
        }
    }

    #[test]
    fn all_contains_six_distinct() {
        let mut names: Vec<_> = BcastAlg::ALL.iter().map(|a| a.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
