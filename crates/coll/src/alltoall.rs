//! All-to-all algorithms (extension): rank `r` sends block `d` of its
//! input to rank `d` and receives block `s` from every rank `s`.
//!
//! Ports follow `coll/base/coll_base_alltoall.c`:
//!
//! * [`alltoall_linear`] — post everything at once
//!   (`alltoall_intra_basic_linear`);
//! * [`alltoall_pairwise`] — P-1 balanced sendrecv rounds with partner
//!   `(r + round) mod P` (`alltoall_intra_pairwise`).

use collsel_mpi::Comm;
use collsel_support::Bytes;

const TAG_ALLTOALL: u32 = 0x2A;

fn check_blocks<C: Comm>(ctx: &C, blocks: &[Bytes]) {
    assert_eq!(
        blocks.len(),
        ctx.size(),
        "alltoall needs exactly one block per destination"
    );
}

/// Linear all-to-all: post all receives, then all sends, then wait for
/// everything. Returns the received blocks in source-rank order (the
/// local block is passed through).
///
/// # Panics
///
/// Panics if `blocks` does not contain exactly one block per rank.
pub fn alltoall_linear<C: Comm>(ctx: &mut C, blocks: Vec<Bytes>) -> Vec<Bytes> {
    check_blocks(ctx, &blocks);
    let p = ctx.size();
    let me = ctx.rank();
    if p == 1 {
        return blocks;
    }
    let recvs: Vec<_> = (0..p)
        .filter(|&src| src != me)
        .map(|src| ctx.irecv(src, TAG_ALLTOALL))
        .collect();
    let sends: Vec<_> = (0..p)
        .filter(|&dst| dst != me)
        .map(|dst| ctx.isend(dst, TAG_ALLTOALL, blocks[dst].clone()))
        .collect();
    ctx.wait_all_sends(sends);
    let mut arrived = ctx.wait_all_recvs(recvs).into_iter();
    (0..p)
        .map(|src| {
            if src == me {
                blocks[me].clone()
            } else {
                let (data, status) = arrived.next().expect("one block per peer");
                debug_assert_eq!(status.source, src);
                data
            }
        })
        .collect()
}

/// Pairwise-exchange all-to-all: in round `k` (1 ≤ k < P), rank `r`
/// sends to `(r + k) mod P` and receives from `(r - k) mod P`, so every
/// round is a perfect matching and no endpoint is oversubscribed.
///
/// # Panics
///
/// Panics if `blocks` does not contain exactly one block per rank.
pub fn alltoall_pairwise<C: Comm>(ctx: &mut C, blocks: Vec<Bytes>) -> Vec<Bytes> {
    check_blocks(ctx, &blocks);
    let p = ctx.size();
    let me = ctx.rank();
    let mut out: Vec<Option<Bytes>> = vec![None; p];
    out[me] = Some(blocks[me].clone());
    for k in 1..p {
        let to = (me + k) % p;
        let from = (me + p - k) % p;
        let (data, _) = ctx.sendrecv(to, TAG_ALLTOALL, blocks[to].clone(), from, TAG_ALLTOALL);
        out[from] = Some(data);
    }
    out.into_iter()
        .map(|b| b.expect("all rounds ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_mpi::simulate;
    use collsel_netsim::ClusterModel;

    /// Block from `src` to `dst` is `[src, dst]` repeated: uniquely
    /// identifies both endpoints.
    fn blocks(src: usize, p: usize) -> Vec<Bytes> {
        (0..p)
            .map(|dst| Bytes::from([src as u8, dst as u8].repeat(8)))
            .collect()
    }

    fn check(f: impl Fn(&mut collsel_mpi::Ctx, Vec<Bytes>) -> Vec<Bytes> + Sync, p: usize) {
        let cluster = ClusterModel::gros();
        let out = simulate(&cluster, p, 0, move |ctx| {
            f(ctx, blocks(ctx.rank(), ctx.size()))
        })
        .unwrap();
        for (dst, got) in out.results.iter().enumerate() {
            assert_eq!(got.len(), p);
            for (src, b) in got.iter().enumerate() {
                assert_eq!(
                    b.as_ref(),
                    [src as u8, dst as u8].repeat(8).as_slice(),
                    "dst {dst} src {src}"
                );
            }
        }
    }

    #[test]
    fn linear_alltoall_routes_all_pairs() {
        for p in [1, 2, 3, 5, 8, 11] {
            check(alltoall_linear, p);
        }
    }

    #[test]
    fn pairwise_alltoall_routes_all_pairs() {
        for p in [1, 2, 3, 5, 8, 11] {
            check(alltoall_pairwise, p);
        }
    }

    #[test]
    fn both_move_the_same_bytes() {
        let cluster = ClusterModel::gros();
        let p = 6;
        let lin = simulate(&cluster, p, 0, |ctx| {
            alltoall_linear(ctx, blocks(ctx.rank(), ctx.size()))
        })
        .unwrap()
        .report;
        let pw = simulate(&cluster, p, 0, |ctx| {
            alltoall_pairwise(ctx, blocks(ctx.rank(), ctx.size()))
        })
        .unwrap()
        .report;
        assert_eq!(lin.messages, (p * (p - 1)) as u64);
        assert_eq!(pw.messages, lin.messages);
        assert_eq!(pw.bytes, lin.bytes);
    }

    #[test]
    fn alltoall_rejects_wrong_block_count() {
        let cluster = ClusterModel::gros();
        let err = simulate(&cluster, 3, 0, |ctx| {
            alltoall_linear(ctx, blocks(ctx.rank(), 2))
        })
        .unwrap_err();
        assert!(matches!(err, collsel_mpi::SimError::RankPanic { .. }));
    }
}
