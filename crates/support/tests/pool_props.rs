//! Property tests for the job pool's two contracts: results come back
//! in submission order at any thread count, and a panicking job is
//! re-raised on the caller without deadlocking the batch.

use collsel_support::pool::Pool;
use collsel_support::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Pool::run` returns exactly the serial map, in submission order,
    /// for any job list and any thread count.
    #[test]
    fn results_preserve_submission_order(
        inputs in prop::collection::vec(any::<u64>(), 0..40),
        threads in 1usize..12,
    ) {
        let pool = Pool::with_threads(threads);
        let expected: Vec<u64> = inputs.iter().map(|x| x.wrapping_mul(31)).collect();
        let got = pool.run(inputs.iter().map(|&x| move || x.wrapping_mul(31)));
        prop_assert_eq!(got, expected);
    }

    /// A panicking job surfaces as a caller panic — never a hang — and
    /// the panic does not stop the other jobs from running.
    #[test]
    fn panics_propagate_without_deadlock(
        n in 1usize..30,
        bad_frac in 0.0f64..1.0,
        threads in 1usize..9,
    ) {
        let bad = (bad_frac * (n - 1) as f64).round() as usize;
        let pool = Pool::with_threads(threads);
        let ran = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..n).map(|i| {
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    assert!(i != bad, "job {i} failed");
                    i
                }
            }))
        }));
        prop_assert!(outcome.is_err(), "the job panic was swallowed");
        // The serial path fails fast at the panicking job; worker
        // threads drain the whole batch before re-raising. Either way
        // every job submitted before the panicking one has run.
        let ran = ran.load(Ordering::SeqCst);
        prop_assert!(ran > bad && ran <= n, "ran {} of {} jobs (bad: {})", ran, n, bad);
    }
}
