//! A small property-based testing harness, replacing the `proptest`
//! crate for this workspace.
//!
//! The moving parts mirror proptest's design:
//!
//! * a [`Strategy`] produces a lazy **shrink tree** ([`Tree`]) per case:
//!   the root is the generated value, children are progressively
//!   simpler candidates;
//! * the [`proptest!`] macro wraps each property in a `#[test]` that
//!   draws `cases` seeded inputs, and on failure walks the shrink tree
//!   greedily to a local minimum before reporting;
//! * every failure report ends with a one-line reproduction command:
//!   setting `COLLSEL_PROP_SEED=<seed>` re-runs exactly the failing
//!   case (generation is a pure function of the per-case seed).
//!
//! ```
//! use collsel_support::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use crate::rng::StdRng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Environment variable that pins the harness to a single case seed.
pub const SEED_ENV: &str = "COLLSEL_PROP_SEED";

/// How many shrink candidates a failing case may evaluate.
const SHRINK_BUDGET: usize = 500;

// ---------------------------------------------------------------------------
// Outcome of one test-case execution
// ---------------------------------------------------------------------------

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the
    /// case is discarded and redrawn, not counted as a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failed property with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Shrink trees
// ---------------------------------------------------------------------------

/// A lazily expanded shrink tree: the generated value plus a thunk
/// producing simpler candidate values, each with its own subtree.
pub struct Tree<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T> std::fmt::Debug for Tree<T>
where
    T: Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tree").field("value", &self.value).finish()
    }
}

impl<T> Clone for Tree<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree with lazily computed candidates.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Rc::new(children),
        }
    }

    /// The value at this node.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Expands the shrink candidates, simplest first.
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`, keeping the shrink structure.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let children = Rc::clone(&self.children);
        Tree {
            value,
            children: Rc::new(move || children().iter().map(|c| c.map(Rc::clone(&f))).collect()),
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating (and shrinking) values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug + 'static;

    /// Draws one value with its shrink tree from `rng`.
    fn new_tree(&self, rng: &mut StdRng) -> Tree<Self::Value>;

    /// Derives a strategy by mapping generated values through `f`.
    /// Shrinking happens on the *source* values, so mapped strategies
    /// shrink as well as their inputs.
    fn prop_map<U, F>(self, f: F) -> Map<Self, U>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(move |v: &Self::Value| f(v.clone())),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S: Strategy, U> {
    inner: S,
    f: Rc<dyn Fn(&S::Value) -> U>,
}

impl<S: Strategy, U> Debug for Map<S, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S, U> Strategy for Map<S, U>
where
    S: Strategy,
    U: Clone + Debug + 'static,
{
    type Value = U;
    fn new_tree(&self, rng: &mut StdRng) -> Tree<U> {
        self.inner.new_tree(rng).map(Rc::clone(&self.f))
    }
}

fn int_tree_u64(value: u64, lo: u64) -> Tree<u64> {
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        if value > lo {
            out.push(int_tree_u64(lo, lo));
            let mut delta = value - lo;
            loop {
                delta /= 2;
                if delta == 0 {
                    break;
                }
                let cand = value - delta;
                if cand != lo {
                    out.push(int_tree_u64(cand, lo));
                }
            }
        }
        out
    })
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut StdRng) -> Tree<$t> {
                let v = rng.gen_range(self.clone());
                int_tree_u64(v as u64, self.start as u64)
                    .map(Rc::new(|&v| v as $t))
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

fn f64_tree(value: f64, lo: f64) -> Tree<f64> {
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        // Shrink toward the low bound, halving the distance; stop once
        // the step is negligible so the tree stays finite in practice.
        if (value - lo).abs() > lo.abs() * 1e-6 + 1e-12 {
            out.push(f64_tree(lo, lo));
            let mid = lo + (value - lo) / 2.0;
            if mid != lo && mid != value {
                out.push(f64_tree(mid, lo));
            }
        }
        out
    })
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_tree(&self, rng: &mut StdRng) -> Tree<f64> {
        f64_tree(rng.gen_range(self.clone()), self.start)
    }
}

/// Strategy for a full-range primitive, mirroring `proptest::any`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T` (currently `u64`-family integers).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut StdRng) -> Tree<$t> {
                let v = rng.next_u64() as $t;
                int_tree_u64(v as u64, 0).map(Rc::new(|&v| v as $t))
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);

/// `prop::sample` — choosing among explicit alternatives.
pub mod sample {
    use super::*;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly; shrinks toward the first.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + Debug + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + Debug + 'static> Strategy for Select<T> {
        type Value = T;
        fn new_tree(&self, rng: &mut StdRng) -> Tree<T> {
            let idx = rng.gen_range(0..self.options.len());
            let options = self.options.clone();
            int_tree_u64(idx as u64, 0).map(Rc::new(move |&i| options[i as usize].clone()))
        }
    }
}

/// `prop::collection` — strategies for containers.
pub mod collection {
    use super::*;

    fn vec_tree<T: Clone + Debug + 'static>(elems: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
        let value: Vec<T> = elems.iter().map(|t| t.value().clone()).collect();
        Tree::with_children(value, move || {
            let mut out = Vec::new();
            // First try dropping whole elements...
            if elems.len() > min_len {
                for i in 0..elems.len() {
                    let mut rest = elems.clone();
                    rest.remove(i);
                    out.push(vec_tree(rest, min_len));
                }
            }
            // ...then shrinking elements in place.
            for i in 0..elems.len() {
                for c in elems[i].children() {
                    let mut next = elems.clone();
                    next[i] = c;
                    out.push(vec_tree(next, min_len));
                }
            }
            out
        })
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`. Shrinks by removing elements (down to `len.start`)
    /// and by shrinking elements individually.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_tree(&self, rng: &mut StdRng) -> Tree<Vec<S::Value>> {
            let n = rng.gen_range(self.len.clone());
            let elems: Vec<Tree<S::Value>> = (0..n).map(|_| self.elem.new_tree(rng)).collect();
            vec_tree(elems, self.len.start)
        }
    }

    fn set_tree<T: Clone + Ord + Debug + 'static>(
        elems: Vec<Tree<T>>,
        min_len: usize,
    ) -> Tree<BTreeSet<T>> {
        let value: BTreeSet<T> = elems.iter().map(|t| t.value().clone()).collect();
        Tree::with_children(value, move || {
            let mut out = Vec::new();
            if elems.len() > min_len {
                for i in 0..elems.len() {
                    let mut rest = elems.clone();
                    rest.remove(i);
                    out.push(set_tree(rest, min_len));
                }
            }
            for i in 0..elems.len() {
                for c in elems[i].children() {
                    // Skip candidates that collide with another element:
                    // deduplication would silently drop below min_len.
                    let collides = elems
                        .iter()
                        .enumerate()
                        .any(|(j, e)| j != i && e.value() == c.value());
                    if collides {
                        continue;
                    }
                    let mut next = elems.clone();
                    next[i] = c;
                    out.push(set_tree(next, min_len));
                }
            }
            out
        })
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `BTreeSet` with `len` distinct elements drawn from `elem`.
    pub fn btree_set<S>(elem: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_tree(&self, rng: &mut StdRng) -> Tree<BTreeSet<S::Value>> {
            let n = rng.gen_range(self.len.clone());
            let mut elems: Vec<Tree<S::Value>> = Vec::with_capacity(n);
            let mut attempts = 0usize;
            while elems.len() < n && attempts < n * 50 + 50 {
                attempts += 1;
                let t = self.elem.new_tree(rng);
                if elems.iter().all(|e| e.value() != t.value()) {
                    elems.push(t);
                }
            }
            set_tree(elems, self.len.start)
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($helper:ident: $($S:ident . $idx:tt),+) => {
        fn $helper<$($S: Clone + Debug + 'static),+>(
            trees: ($(Tree<$S>,)+),
        ) -> Tree<($($S,)+)> {
            let value = ($(trees.$idx.value().clone(),)+);
            Tree::with_children(value, move || {
                let mut out: Vec<Tree<($($S,)+)>> = Vec::new();
                $(
                    for c in trees.$idx.children() {
                        let mut next = trees.clone();
                        next.$idx = c;
                        out.push($helper(next));
                    }
                )+
                out
            })
        }

        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
                $helper(($(self.$idx.new_tree(rng),)+))
            }
        }
    };
}

impl_tuple_strategy!(tuple_tree1: A.0);
impl_tuple_strategy!(tuple_tree2: A.0, B.1);
impl_tuple_strategy!(tuple_tree3: A.0, B.1, C.2);
impl_tuple_strategy!(tuple_tree4: A.0, B.1, C.2, D.3);
impl_tuple_strategy!(tuple_tree5: A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(tuple_tree6: A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(tuple_tree7: A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(tuple_tree8: A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-property configuration, mirroring `proptest::ProptestConfig`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_one<V, F>(test: &F, value: V) -> CaseOutcome
where
    F: Fn(V) -> TestCaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(TestCaseError::Reject(_))) => CaseOutcome::Reject,
        Ok(Err(TestCaseError::Fail(msg))) => CaseOutcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panicked with non-string payload".to_string());
            CaseOutcome::Fail(format!("panic: {msg}"))
        }
    }
}

/// Greedily descends the shrink tree to a locally minimal failing value.
fn shrink<V, F>(mut tree: Tree<V>, mut msg: String, test: &F) -> (V, String)
where
    V: Clone + Debug + 'static,
    F: Fn(V) -> TestCaseResult,
{
    let mut evals = 0usize;
    'descend: loop {
        for child in tree.children() {
            if evals >= SHRINK_BUDGET {
                break 'descend;
            }
            evals += 1;
            if let CaseOutcome::Fail(m) = run_one(test, child.value().clone()) {
                msg = m;
                tree = child;
                continue 'descend;
            }
        }
        break;
    }
    (tree.value().clone(), msg)
}

/// Drives one property: draws seeded cases, shrinks failures, panics
/// with a report ending in a reproduction command.
///
/// Normally invoked through the [`proptest!`](crate::proptest) macro,
/// which supplies `pkg`/`name` from the call site.
pub fn run_property<S, F>(config: &ProptestConfig, pkg: &str, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let fn_name = name.rsplit("::").next().unwrap_or(name);
    let fail = |seed: u64, passed: u32, value: &S::Value, msg: &str| -> ! {
        panic!(
            "property {name} failed after {passed} passing case(s)\n\
             \x20 failure: {msg}\n\
             \x20 minimal input: {value:?}\n\
             \x20 reproduce with: {SEED_ENV}={seed} cargo test -p {pkg} {fn_name}"
        );
    };

    if let Ok(seed_text) = std::env::var(SEED_ENV) {
        let seed: u64 = seed_text
            .parse()
            .unwrap_or_else(|_| panic!("invalid {SEED_ENV} value `{seed_text}`"));
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = strategy.new_tree(&mut rng);
        match run_one(&test, tree.value().clone()) {
            CaseOutcome::Pass => println!("{name}: seed {seed} passes"),
            CaseOutcome::Reject => println!("{name}: seed {seed} rejected by prop_assume"),
            CaseOutcome::Fail(msg) => {
                let (value, msg) = shrink(tree, msg, &test);
                fail(seed, 0, &value, &msg);
            }
        }
        return;
    }

    let base_seed = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases * 20 + 100;
    let mut draw = 0u64;
    while passed < config.cases {
        let case_seed = base_seed.wrapping_add(draw);
        draw += 1;
        let mut rng = StdRng::seed_from_u64(case_seed);
        let tree = strategy.new_tree(&mut rng);
        match run_one(&test, tree.value().clone()) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property {name}: too many prop_assume rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            CaseOutcome::Fail(msg) => {
                let (value, msg) = shrink(tree, msg, &test);
                fail(case_seed, passed, &value, &msg);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property-based tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a
/// `#[test]` that runs the body over generated inputs. An optional
/// leading `#![proptest_config(...)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::prop::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::prop::run_property(
                &__config,
                env!("CARGO_PKG_NAME"),
                concat!(module_path!(), "::", stringify!($name)),
                &__strategy,
                |__case| {
                    let ($($pat,)+) = __case;
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: `{:?}` vs `{:?}`",
            format!($($fmt)*),
            __l,
            __r
        );
    }};
}

/// Discards the current case when `cond` is false (the input does not
/// satisfy the property's precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_trees_shrink_toward_low_bound() {
        let t = int_tree_u64(13, 2);
        let first: Vec<u64> = t.children().iter().map(|c| *c.value()).collect();
        assert_eq!(first[0], 2); // low bound first
        assert!(first.iter().all(|&v| (2..13).contains(&v)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0usize..100, 0.0f64..1.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            strat.new_tree(&mut a).value(),
            strat.new_tree(&mut b).value()
        );
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property "x < 10" fails for x >= 10; the minimal
        // counterexample in 0..1000 is exactly 10.
        let strat = 0u64..1000;
        let mut rng = StdRng::seed_from_u64(0);
        // Find a failing tree, then shrink it.
        let tree = loop {
            let t = strat.new_tree(&mut rng);
            if *t.value() >= 10 {
                break t;
            }
        };
        let test = |x: u64| -> TestCaseResult {
            if x < 10 {
                Ok(())
            } else {
                Err(TestCaseError::fail("too big"))
            }
        };
        let (min, _) = shrink(tree, "seed".into(), &test);
        assert_eq!(min, 10);
    }

    #[test]
    fn vec_shrink_removes_and_shrinks_elements() {
        let strat = collection::vec(0usize..100, 2..8);
        let mut rng = StdRng::seed_from_u64(1);
        // Property: no element is >= 50 AND length < 5. Shrinker should
        // find a small witness.
        let test = |v: Vec<usize>| -> TestCaseResult {
            if v.len() >= 5 || v.iter().any(|&x| x >= 50) {
                Err(TestCaseError::fail("bad"))
            } else {
                Ok(())
            }
        };
        let tree = loop {
            let t = strat.new_tree(&mut rng);
            if matches!(run_one(&test, t.value().clone()), CaseOutcome::Fail(_)) {
                break t;
            }
        };
        let (min, _) = shrink(tree, "seed".into(), &test);
        let still_fails = min.len() >= 5 || min.iter().any(|&x| x >= 50);
        assert!(still_fails);
        // Minimal witnesses are either exactly [50, ...] shrunk to len 2
        // (the min length) with one offending element, or length 5 of
        // zeros.
        assert!(min == vec![0, 0, 0, 0, 0] || min.iter().filter(|&&x| x > 0).count() <= 1);
    }

    #[test]
    fn btree_set_respects_min_len_while_shrinking() {
        let strat = collection::btree_set(0usize..1000, 3..6);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let tree = strat.new_tree(&mut rng);
            assert!(tree.value().len() >= 3);
            for c in tree.children() {
                assert!(c.value().len() >= 3, "shrank below min: {:?}", c.value());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The harness itself: tuples, maps, selects and assume all work.
        #[test]
        fn harness_smoke(
            x in 0usize..50,
            label in sample::select(vec!["a", "b", "c"]),
            pair in (0u64..10, 0.0f64..1.0).prop_map(|(a, f)| (a * 2, f)),
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert!(!label.is_empty());
            prop_assert_eq!(pair.0 % 2, 0);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }
    }
}
