//! A scoped, deterministic job pool for fanning independent work across
//! OS threads, replacing `rayon`-style helpers for the workspace's
//! tuning campaigns.
//!
//! Built from `std::thread` + `std::sync` only. A batch of `FnOnce`
//! jobs is executed by a self-scheduling team of scoped worker threads
//! (each worker repeatedly claims the next unstarted job from a shared
//! counter — work-stealing-style load balancing without per-worker
//! queues), and the results are returned **in submission-index order**.
//!
//! # Determinism
//!
//! The pool never changes *what* is computed, only *where*: job `i`
//! always receives the same inputs and its result always lands in slot
//! `i` of the output, regardless of the thread count or the OS
//! schedule. Campaign code that derives each job's seed from its
//! submission index therefore produces bit-identical results at any
//! thread count — the invariant the golden paper-regression artifacts
//! rely on.
//!
//! # Thread-count control
//!
//! The effective parallelism of [`Pool::current`] is, in order of
//! precedence: a process-wide override set by [`set_thread_override`]
//! (the CLI's `-j`), the `COLLSEL_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`].
//!
//! # Panics
//!
//! A panicking job does not poison the pool or deadlock the batch: the
//! remaining jobs still run, and the payload of the panicking job with
//! the smallest submission index is re-raised on the caller once the
//! whole batch has finished (so the propagated panic is deterministic
//! too).
//!
//! ```
//! use collsel_support::pool::Pool;
//!
//! let squares = Pool::with_threads(4).run((0..8).map(|i| move || i * i));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable controlling the default thread count.
pub const THREADS_ENV: &str = "COLLSEL_THREADS";

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide thread-count override that takes precedence over
/// `COLLSEL_THREADS` and the detected parallelism (used by the CLI's
/// `-j`/`--threads` flag).
///
/// # Panics
///
/// Panics if `threads` is zero; use [`clear_thread_override`] to unset.
pub fn set_thread_override(threads: usize) {
    assert!(threads > 0, "thread override must be at least 1");
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Clears the override installed by [`set_thread_override`].
pub fn clear_thread_override() {
    THREAD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The thread count [`Pool::current`] would use right now.
pub fn current_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A job pool with a fixed worker count.
///
/// The pool itself is trivially cheap to construct: worker threads are
/// scoped to each [`run`](Pool::run) call, so jobs may borrow from the
/// caller's stack (clusters, configs, slices) without `'static` bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The pool configured by the environment: the
    /// [`set_thread_override`] value, else `COLLSEL_THREADS`, else the
    /// host's available parallelism.
    pub fn current() -> Pool {
        Pool::with_threads(current_threads())
    }

    /// A single-threaded pool ([`run`](Pool::run) executes inline).
    pub fn serial() -> Pool {
        Pool::with_threads(1)
    }

    /// This pool's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every job and returns the results in submission order.
    ///
    /// With one worker (or at most one job) the jobs run inline on the
    /// caller's thread, in order — the serial baseline the parallel
    /// schedule must be indistinguishable from.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the panicking job with the smallest
    /// submission index, after all jobs have finished.
    pub fn run<T, F, I>(&self, jobs: I) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
        I: IntoIterator<Item = F>,
    {
        let jobs: Vec<F> = jobs.into_iter().collect();
        if self.threads <= 1 || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let workers = self.threads.min(n);
        // Each slot holds Some(job) until a worker claims it; claimed
        // slots are decided by the shared counter, so no job runs twice.
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    *results[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for slot in results {
            let outcome = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("scope joined with a job unfinished");
            match outcome {
                Ok(v) => out.push(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 3, 8, 33] {
            let out = Pool::with_threads(threads).run((0..100usize).map(|i| move || i * 3));
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..50).collect();
        let slice = &data;
        let out = Pool::with_threads(4).run((0..50usize).map(|i| move || slice[i] + 1));
        assert_eq!(out, (1..=50).collect::<Vec<u64>>());
    }

    #[test]
    fn earliest_panic_wins_and_the_pool_does_not_deadlock() {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::with_threads(4).run((0..20usize).map(|i| {
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    assert!(i != 3 && i != 11, "job {i} failed");
                    i
                }
            }))
        }));
        let payload = result.expect_err("a panicking job must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("assert! message");
        assert!(msg.contains("job 3 failed"), "expected job 3 first: {msg}");
        assert_eq!(ran.load(Ordering::Relaxed), 20, "all jobs still ran");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
        let out = Pool::with_threads(0).run(vec![|| 7]);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn override_takes_precedence() {
        set_thread_override(3);
        assert_eq!(current_threads(), 3);
        assert_eq!(Pool::current().threads(), 3);
        clear_thread_override();
    }
}
