//! # collsel-support
//!
//! The workspace's **zero-dependency support library**. Every external
//! crate the project used to pull from crates.io is replaced here by a
//! small, purpose-built implementation, so the whole workspace builds
//! and tests **offline** with nothing but the Rust toolchain:
//!
//! | Module | Replaces | Surface |
//! |---|---|---|
//! | [`bytes`] | `bytes` | [`Bytes`] (cheap-clone `Arc<[u8]>` slice view), [`BytesMut`] |
//! | [`rng`] | `rand` | splitmix64 seeding + xoshiro256\*\* [`StdRng`] with `gen_range` |
//! | [`json`] | `serde`/`serde_json` | [`Json`] tree, parser, pretty writer, [`ToJson`]/[`FromJson`] |
//! | [`prop`] | `proptest` | [`proptest!`] macro, strategies, shrinking, seeded replay |
//! | [`bench`] | `criterion` | [`bench::Criterion`] timing harness with JSON reports |
//! | [`pool`] | `rayon` | [`pool::Pool`] scoped job pool with submission-order results |
//! | [`epoch`] | `arc-swap` | [`epoch::EpochSwap`] epoch-versioned atomic value swapping |
//!
//! The implementations cover exactly the subset of the upstream APIs the
//! workspace uses — they are not general-purpose replacements.
//!
//! [`payload`] is the one module that replaces nothing external: it is
//! the shared memoised store for deterministic measurement payloads
//! (with hit/miss counters) used by collective compilation, the
//! measurement tiers and the benches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod bytes;
pub mod epoch;
pub mod json;
pub mod payload;
pub mod pool;
pub mod prop;
pub mod rng;

pub use bytes::{Bytes, BytesMut};
pub use epoch::{EpochGuard, EpochSwap};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::{SeedableRng, StdRng};

/// Prelude for property-based tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::prop::{any, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}
