//! Cheap-to-clone byte buffers, mirroring the subset of the `bytes`
//! crate used by the runtime and the collective algorithms.
//!
//! [`Bytes`] is an immutable view into a reference-counted `Arc<[u8]>`
//! allocation: cloning or slicing never copies the payload, which is
//! what lets a simulated broadcast of a multi-megabyte buffer to a
//! hundred ranks stay cheap. [`BytesMut`] is a plain growable buffer
//! that can be frozen into a [`Bytes`].
//!
//! ```
//! use collsel_support::{Bytes, BytesMut};
//!
//! let b = Bytes::from(vec![1u8, 2, 3, 4]);
//! let tail = b.slice(2..);
//! assert_eq!(tail.as_ref(), &[3, 4]);
//!
//! let mut m = BytesMut::with_capacity(8);
//! m.extend_from_slice(&b);
//! assert_eq!(m.freeze(), b);
//! ```

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable slice of bytes.
///
/// Internally a `(Arc<[u8]>, start, end)` triple; `clone`, [`slice`]
/// and [`split_to`] are O(1) and share the underlying allocation.
///
/// [`slice`]: Bytes::slice
/// [`split_to`]: Bytes::split_to
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer. Does not allocate a payload.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wraps a static byte slice. (Copies it once into the shared
    /// allocation; the name is kept for `bytes` API compatibility.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of bounds of {len}-byte buffer"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits the view at `at`, returning the first `at` bytes and
    /// leaving `self` with the rest. O(1), no copy.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copies the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.len())
    }
}

/// A growable byte buffer that can be frozen into a [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} B)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_payload() {
        let b = Bytes::from((0u8..64).collect::<Vec<_>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 10);
        assert_eq!(b.slice(..4).as_ref(), &[0, 1, 2, 3]);
        assert_eq!(b.slice(60..).as_ref(), &[60, 61, 62, 63]);
        // Nested slices index relative to the view, not the allocation.
        assert_eq!(s.slice(2..4).as_ref(), &[12, 13]);
    }

    #[test]
    fn split_to_advances_the_view() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..9);
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(&[9, 8]);
        m.extend_from_slice(&[7]);
        let b = m.freeze();
        assert_eq!(b, Bytes::from(vec![9, 8, 7]));
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3, 4]).slice(1..3);
        let b = Bytes::from(vec![2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, vec![2u8, 3]);
    }
}
