//! Seedable pseudo-random numbers, replacing the `rand` crate.
//!
//! [`StdRng`] is **xoshiro256\*\*** (Blackman & Vigna) seeded through
//! **splitmix64**, the combination the `rand`/`rand_xoshiro` crates
//! recommend for seeding from a single `u64`. It is deterministic,
//! portable across platforms, and fast — exactly what the noise model
//! and the property-test harness need. It is *not* cryptographically
//! secure.
//!
//! ```
//! use collsel_support::rng::StdRng;
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x: f64 = a.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

use std::ops::Range;

/// Mixes a 64-bit state into a well-distributed output (splitmix64).
/// Advances `state` by the golden-ratio increment on every call.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `0..n` from a splitmix64 stream, without the
/// modulo bias of `splitmix64(state) % n`.
///
/// Uses rejection sampling over the smallest covering power-of-two
/// mask, so every value in `0..n` is exactly equally likely. Advances
/// `state` once per rejection round (power-of-two `n` never rejects).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn splitmix64_below(state: &mut u64, n: u64) -> u64 {
    assert!(n > 0, "splitmix64_below: empty range");
    if n.is_power_of_two() {
        return splitmix64(state) & (n - 1);
    }
    let mask = n.next_power_of_two() - 1;
    loop {
        let x = splitmix64(state) & mask;
        if x < n {
            return x;
        }
    }
}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256\*\*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl StdRng {
    /// Builds a generator from a single 64-bit seed (inherent alias of
    /// [`SeedableRng::seed_from_u64`]).
    pub fn seed_from_u64(seed: u64) -> Self {
        <Self as SeedableRng>::seed_from_u64(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformSample: PartialOrd + Copy {
    /// Draws one sample from `range` using `rng`.
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample(rng: &mut StdRng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in gen_range");
        let span = range.end - range.start;
        let x = range.start + rng.next_f64() * span;
        // Floating-point rounding can land exactly on `end`; clamp back
        // into the half-open interval.
        if x >= range.end {
            range.end - range.end * f64::EPSILON
        } else {
            x
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut StdRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the naive approach is avoided without
                // rejection loops.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for state 0, from the public-domain reference
        // implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn below_always_in_range() {
        let mut s = 99u64;
        for n in [1u64, 2, 3, 7, 13, 14, 16, 1000] {
            for _ in 0..1_000 {
                assert!(splitmix64_below(&mut s, n) < n);
            }
        }
    }

    #[test]
    fn below_is_unbiased_across_buckets() {
        // n = 14 is the size-grid exponent count that motivated the
        // helper: `% 14` over-represents 0..4. With rejection sampling
        // every bucket should sit within a few percent of uniform.
        let mut s = 0xC0FF_EEu64;
        let n = 14u64;
        let per_bucket = 10_000u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..n * per_bucket {
            counts[splitmix64_below(&mut s, n) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - per_bucket as f64).abs() / per_bucket as f64;
            assert!(dev < 0.05, "bucket {i}: {c} draws, deviation {dev:.3}");
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..17);
            assert!((10..17).contains(&x));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
