//! Epoch-versioned atomic value swapping — the in-tree `ArcSwap`
//! replacement behind the decision server's generation registry.
//!
//! [`EpochSwap<T>`] holds one **current generation** of a value and lets
//! any number of reader threads pin it wait-free-in-practice while a
//! writer atomically installs a replacement. The contract the serving
//! layer needs:
//!
//! * **readers pin an epoch** — [`EpochSwap::pin`] returns a guard that
//!   dereferences to the generation that was current at pin time and
//!   reports its epoch number; the guard stays valid for its whole
//!   lifetime even across any number of concurrent swaps;
//! * **swaps are atomic** — a reader sees either the pre-swap or the
//!   post-swap generation, never a torn mix; the epoch counter increases
//!   by exactly one per swap;
//! * **old generations drain before reclamation** — a generation's
//!   memory is freed only once every guard pinning it has dropped; the
//!   writer performing the reclaiming swap waits for the drain.
//!
//! The implementation is a small ring of generation slots guarded by
//! per-slot pin counts — atomics only, no locks on the read path. A
//! reader increments the current slot's pin count and then *validates*
//! that the slot is still current; a writer reuses a slot only after the
//! slot has been out of service for [`SLOTS`]` - 1` consecutive swaps
//! *and* its pin count has drained to zero. All cross-thread ordering on
//! the current-slot index and the pin counts is `SeqCst`, which makes
//! the validate-after-increment protocol airtight: if a reader's
//! validation load still observes the slot as current, its pin-count
//! increment is ordered before the writer's drain check in the single
//! total order, so the writer cannot have missed it.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Number of generation slots. A guard held across up to `SLOTS - 1`
/// swaps never delays any writer; the swap that would reuse the pinned
/// slot waits for the guard to drop.
pub const SLOTS: usize = 4;

/// One ring slot: a pin count, the epoch stored in the slot, and the
/// heap pointer to the generation value.
struct Slot<T> {
    pinners: AtomicUsize,
    epoch: AtomicU64,
    ptr: AtomicPtr<T>,
}

impl<T> Slot<T> {
    fn empty() -> Self {
        Slot {
            pinners: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// An atomically swappable, epoch-versioned value (see the module docs).
///
/// Readers call [`pin`](Self::pin); writers call [`swap`](Self::swap).
/// Concurrent swaps serialise against each other on an internal flag;
/// reads never block and never observe a partially installed value.
pub struct EpochSwap<T> {
    slots: [Slot<T>; SLOTS],
    current: AtomicUsize,
    epoch: AtomicU64,
    writing: AtomicBool,
}

// Safety: the value is shared across threads by reference through
// guards (needs `T: Sync`) and ownership of boxed generations moves to
// whichever thread reclaims them (needs `T: Send`).
unsafe impl<T: Send + Sync> Sync for EpochSwap<T> {}
unsafe impl<T: Send> Send for EpochSwap<T> {}

impl<T> EpochSwap<T> {
    /// Creates the cell with `initial` as generation (epoch) 1.
    pub fn new(initial: T) -> Self {
        let slots = [Slot::empty(), Slot::empty(), Slot::empty(), Slot::empty()];
        slots[0].epoch.store(1, Ordering::Relaxed);
        slots[0]
            .ptr
            .store(Box::into_raw(Box::new(initial)), Ordering::Relaxed);
        EpochSwap {
            slots,
            current: AtomicUsize::new(0),
            epoch: AtomicU64::new(1),
            writing: AtomicBool::new(false),
        }
    }

    /// The epoch of the current generation (1 for the initial value,
    /// +1 per completed swap). Monotonic.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Pins the current generation and returns a guard dereferencing to
    /// it. The guard keeps the generation alive (a writer wanting to
    /// reclaim its slot waits), so drop it promptly.
    pub fn pin(&self) -> EpochGuard<'_, T> {
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            self.slots[idx].pinners.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == idx {
                // Validated: the slot was current at a point after our
                // pin count was published, so the writer protocol keeps
                // its pointer alive until we unpin.
                let ptr = self.slots[idx].ptr.load(Ordering::SeqCst);
                let epoch = self.slots[idx].epoch.load(Ordering::SeqCst);
                debug_assert!(!ptr.is_null(), "current slot holds a generation");
                return EpochGuard {
                    swap: self,
                    idx,
                    ptr,
                    epoch,
                    _not_send: PhantomData,
                };
            }
            // A swap moved the current slot between our load and our
            // pin; unpin and retry on the new slot.
            self.slots[idx].pinners.fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Atomically installs `new` as the next generation and returns its
    /// epoch. Readers pinned to older generations keep them alive;
    /// this call blocks only if the slot being recycled (the generation
    /// from [`SLOTS`]` - 1` swaps ago) is still pinned.
    pub fn swap(&self, new: T) -> u64 {
        // Serialise writers.
        while self
            .writing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
        let cur = self.current.load(Ordering::SeqCst);
        let next = (cur + 1) % SLOTS;
        // Drain: wait for every reader of the generation previously
        // stored in the target slot. New readers cannot pin it (it is
        // not current), so the count only decreases.
        while self.slots[next].pinners.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        let old = self.slots[next]
            .ptr
            .swap(Box::into_raw(Box::new(new)), Ordering::SeqCst);
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.slots[next].epoch.store(epoch, Ordering::SeqCst);
        self.current.store(next, Ordering::SeqCst);
        self.writing.store(false, Ordering::Release);
        if !old.is_null() {
            // Safety: the slot was drained above and unreachable to new
            // readers throughout, so we hold the only reference.
            drop(unsafe { Box::from_raw(old) });
        }
        epoch
    }

    /// Convenience: pin, apply `f` to the current generation, unpin.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.pin())
    }
}

impl<T> Drop for EpochSwap<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.ptr.swap(std::ptr::null_mut(), Ordering::Relaxed);
            if !ptr.is_null() {
                // Safety: `&mut self` means no guards are alive.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for EpochSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let guard = self.pin();
        f.debug_struct("EpochSwap")
            .field("epoch", &guard.epoch())
            .field("current", &*guard)
            .finish()
    }
}

/// A pinned generation: dereferences to the value, reports its epoch,
/// and keeps the generation alive until dropped.
pub struct EpochGuard<'a, T> {
    swap: &'a EpochSwap<T>,
    idx: usize,
    ptr: *const T,
    epoch: u64,
    _not_send: PhantomData<*const ()>,
}

impl<T> EpochGuard<'_, T> {
    /// The epoch of the pinned generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<T> Deref for EpochGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the pin-validate protocol guarantees the pointer
        // stays valid until this guard unpins (see module docs).
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for EpochGuard<'_, T> {
    fn drop(&mut self) {
        self.swap.slots[self.idx]
            .pinners
            .fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T: fmt::Debug> fmt::Debug for EpochGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochGuard")
            .field("epoch", &self.epoch)
            .field("value", &**self)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn initial_value_is_epoch_one() {
        let cell = EpochSwap::new(41);
        assert_eq!(cell.epoch(), 1);
        let g = cell.pin();
        assert_eq!(*g, 41);
        assert_eq!(g.epoch(), 1);
    }

    #[test]
    fn swap_bumps_epoch_and_replaces_value() {
        let cell = EpochSwap::new("a".to_string());
        assert_eq!(cell.swap("b".to_string()), 2);
        assert_eq!(cell.swap("c".to_string()), 3);
        let g = cell.pin();
        assert_eq!(&*g, "c");
        assert_eq!(g.epoch(), 3);
        assert_eq!(cell.epoch(), 3);
    }

    #[test]
    fn old_generation_survives_swaps_while_pinned() {
        let cell = EpochSwap::new(0usize);
        let g = cell.pin();
        // SLOTS - 1 swaps never touch the pinned slot.
        for i in 1..SLOTS {
            cell.swap(i);
        }
        assert_eq!(*g, 0, "pinned generation unchanged after swaps");
        assert_eq!(g.epoch(), 1);
        assert_eq!(*cell.pin(), SLOTS - 1);
    }

    #[test]
    fn reclaiming_swap_waits_for_drain() {
        let cell = Arc::new(EpochSwap::new(0usize));
        let guard = cell.pin();
        for i in 1..SLOTS {
            cell.swap(i);
        }
        // The next swap must reuse the pinned slot: it blocks until the
        // guard drops.
        let swapped = Arc::new(AtomicBool::new(false));
        let t = {
            let cell = Arc::clone(&cell);
            let swapped = Arc::clone(&swapped);
            std::thread::spawn(move || {
                cell.swap(SLOTS);
                swapped.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !swapped.load(Ordering::SeqCst),
            "swap must wait for the pinned generation to drain"
        );
        drop(guard);
        t.join().unwrap();
        assert!(swapped.load(Ordering::SeqCst));
        assert_eq!(*cell.pin(), SLOTS);
    }

    #[test]
    fn concurrent_readers_always_see_a_whole_generation() {
        // Each generation is a (n, n * 3) pair; a torn read would break
        // the invariant. Hammer with readers while a writer swaps.
        let cell = Arc::new(EpochSwap::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let g = cell.pin();
                        let (a, b) = *g;
                        assert_eq!(b, a * 3, "torn generation");
                        assert!(g.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = g.epoch();
                    }
                })
            })
            .collect();
        for n in 1..=2000u64 {
            cell.swap((n, n * 3));
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 2001);
    }

    #[test]
    fn read_convenience_passes_through() {
        let cell = EpochSwap::new(vec![1, 2, 3]);
        assert_eq!(cell.read(|v| v.len()), 3);
    }
}
