//! Shared memoised store for deterministic measurement payloads.
//!
//! Three corners of the workspace used to synthesise the same
//! position-dependent byte pattern independently — collective
//! compilation (`collsel-coll`), the measurement tiers
//! (`collsel-estim`) and the throughput benches. A campaign touches a
//! few dozen distinct sizes across thousands of recordings and
//! retries, so the buffer for each size is built exactly once here and
//! handed out as a cheap [`Bytes`] (`Arc`-backed) clone afterwards.
//!
//! The store keeps process-wide hit/miss counters
//! ([`payload_counters`]) that campaign coverage accounting surfaces
//! next to its cell/batch totals, making cache effectiveness (and any
//! pathological size sweep blowing past the cap) visible in artifacts.

use crate::bytes::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Campaigns use a bounded set of sizes; the cap only guards against a
/// pathological caller sweeping millions of distinct lengths.
const CACHE_CAP: usize = 1024;

static CACHE: OnceLock<Mutex<HashMap<usize, Bytes>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// A deterministic position-dependent payload of `len` bytes
/// (`byte[i] = i % 251`).
///
/// Contents never affect simulated timing — the pattern just keeps
/// recorded schedules reproducible byte-for-byte. Memoised per
/// process: the first request for a size allocates and fills, every
/// later request is a reference-counted clone.
pub fn payload(len: usize) -> Bytes {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("payload cache lock");
    if let Some(b) = cache.get(&len) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return b.clone();
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let b = Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>());
    if cache.len() < CACHE_CAP {
        cache.insert(len, b.clone());
    }
    b
}

/// Monotonic process-wide counters of the payload store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadCounters {
    /// Requests served from the store.
    pub hits: u64,
    /// Requests that had to allocate and fill.
    pub misses: u64,
}

/// Snapshot of the store's hit/miss counters since process start.
///
/// The counters are global and monotonic — consumers that want a
/// per-phase delta snapshot before and after.
pub fn payload_counters() -> PayloadCounters {
    PayloadCounters {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_memoised() {
        let before = payload_counters();
        let a = payload(777);
        let b = payload(777);
        let after = payload_counters();
        assert_eq!(a, b);
        assert_eq!(a.len(), 777);
        assert_eq!(a[0], 0);
        assert_eq!(a[250], 250);
        assert_eq!(a[251], 0);
        // At least one of the two calls hit (the first may have missed
        // or hit depending on test order within the process).
        assert!(after.hits > before.hits);
        assert!(after.misses >= before.misses);
    }
}
