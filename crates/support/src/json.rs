//! A minimal JSON tree, parser and writer, replacing `serde`/`serde_json`
//! for the workspace's persistence paths (tuned models, experiment
//! artifacts, bench reports).
//!
//! Serialization is explicit: types implement [`ToJson`]/[`FromJson`]
//! by hand. The conventions intentionally match what `serde` derives
//! produced for the same types, so artifacts written by earlier
//! versions of the tools keep loading:
//!
//! * structs → objects with field-name keys,
//! * unit enum variants → their variant name as a string,
//! * tuples → fixed-length arrays,
//! * `Option` → the value or `null`,
//! * maps → objects with stringified keys (see [`JsonKey`]),
//! * non-finite floats → `null` (read back as `NaN`).
//!
//! ```
//! use collsel_support::json::Json;
//!
//! let v = Json::parse(r#"{"p": 4, "algs": ["binary", "chain"]}"#).unwrap();
//! assert_eq!(v.field("p").unwrap().as_f64().unwrap(), 4.0);
//! assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value of an object field, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value of an object field, or an error naming the missing key.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Writes the value with two-space indentation (the layout
    /// `serde_json::to_string_pretty` produced for earlier artifacts).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Writes the value with no whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                v.write(out, ind);
            }),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|n| n + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
        item(out, i, inner);
    }
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(n));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // serde_json refuses NaN/infinity; we degrade to null so a
        // diverged estimate still produces a loadable artifact.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-round-trip Display never uses exponents, so
        // the output is valid JSON and parses back to the same bits.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or(JsonError("invalid \\u escape".into()))?,
                            );
                        }
                        other => return err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // the bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("bad \\u escape".into()))?;
        let v = u32::from_str_radix(chunk, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => err(format!("invalid number `{text}`")),
        }
    }
}

/// Conversion into a [`Json`] tree (the `Serialize` replacement).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] tree (the `Deserialize` replacement).
pub trait FromJson: Sized {
    /// Reads `Self` out of a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v.as_f64() {
                    Some(n) => Ok(n as $t),
                    None => err(format!("expected number, found {v}")),
                }
            }
        }
    )*};
}

impl_json_num!(u8, u16, u32, u64, usize, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) => Ok(*n),
            Json::Null => Ok(f64::NAN), // non-finite round-trips as null
            other => err(format!("expected number, found {other}")),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {other}")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some(s) => Ok(s.to_string()),
            None => err(format!("expected string, found {v}")),
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some(items) => items.iter().map(T::from_json).collect(),
            None => err(format!("expected array, found {v}")),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => err(format!("expected 2-element array, found {v}")),
        }
    }
}

/// Map keys, serialized as JSON object keys (strings) the way `serde`
/// serializes string-convertible keys.
pub trait JsonKey: Sized + Ord {
    /// The key rendered as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(key: &str) -> Result<Self, JsonError>;
}

impl JsonKey for usize {
    fn to_key(&self) -> String {
        self.to_string()
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        key.parse()
            .map_err(|_| JsonError(format!("invalid integer key `{key}`")))
    }
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        Ok(key.to_string())
    }
}

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
                .collect(),
            other => err(format!("expected object, found {other}")),
        }
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct as an object with
/// one field per named field — the layout `serde` derives produced.
/// Must be invoked where the fields are visible.
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(v.field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`]/[`JsonKey`] for a fieldless enum
/// as its variant identifier string — the `serde` unit-variant layout.
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Str(match self {
                    $($ty::$variant => stringify!($variant).to_string(),)+
                })
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    _ => Err($crate::JsonError(format!(
                        concat!("invalid ", stringify!($ty), " `{}`"), v
                    ))),
                }
            }
        }
        impl $crate::json::JsonKey for $ty {
            fn to_key(&self) -> String {
                match self {
                    $($ty::$variant => stringify!($variant).to_string(),)+
                }
            }
            fn from_key(key: &str) -> Result<Self, $crate::JsonError> {
                match key {
                    $(stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::JsonError(format!(
                        concat!("invalid ", stringify!($ty), " key `{}`"), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::Str("grisou".into())),
            ("gamma", Json::Arr(vec![Json::Num(1.114), Json::Num(1.54)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("alpha", Json::Num(2.2e-12))])),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        assert!(text.contains("{\n  \"name\": \"grisou\""));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [2.2e-12, 1.8e-8, 0.1, 1.0 / 3.0, 1e300, -7.25] {
            let text = Json::Num(x).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x, "{text}");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(8192.0).to_string_compact(), "8192");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
    }

    #[test]
    fn derived_impls_round_trip() {
        let m: BTreeMap<usize, f64> = [(2, 1.0), (3, 1.114)].into_iter().collect();
        let v = m.to_json();
        assert_eq!(v.to_string_compact(), r#"{"2":1,"3":1.114}"#);
        assert_eq!(BTreeMap::<usize, f64>::from_json(&v).unwrap(), m);

        let pairs: Vec<(usize, f64)> = vec![(2, 0.5), (4, 0.25)];
        assert_eq!(
            Vec::<(usize, f64)>::from_json(&pairs.to_json()).unwrap(),
            pairs
        );

        let opt: Option<usize> = None;
        assert_eq!(opt.to_json(), Json::Null);
        assert_eq!(Option::<usize>::from_json(&Json::Null).unwrap(), None);
    }

    #[test]
    fn nan_degrades_to_null() {
        assert_eq!(f64::NAN.to_json().to_string_compact(), "null");
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
    }
}
