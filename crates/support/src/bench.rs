//! A small wall-clock benchmarking harness, replacing `criterion` for
//! the workspace's benches.
//!
//! The API mirrors the subset of criterion the benches use —
//! [`Criterion::bench_function`], `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — and each bench
//! binary writes a JSON report next to the other experiment artifacts
//! (`target/collsel-bench/<binary>_<group>.json`), in the same
//! pretty-printed object style as the files under `results/`.
//!
//! ```no_run
//! use collsel_support::bench::{criterion_group, criterion_main, Criterion};
//!
//! fn fast(c: &mut Criterion) {
//!     c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! }
//!
//! criterion_group! {
//!     name = benches;
//!     config = Criterion::default().sample_size(10);
//!     targets = fast
//! }
//! criterion_main!(benches);
//! ```

use crate::json::{Json, ToJson};
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Target wall-clock duration of one timing sample; iterations per
/// sample are chosen so a sample takes at least roughly this long.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Measures one routine: the closure passed to
/// [`Criterion::bench_function`] receives this and must call [`iter`].
///
/// [`iter`]: Bencher::iter
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug)]
struct BenchResult {
    name: String,
    mean_s: f64,
    std_dev_s: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("mean_s", self.mean_s.to_json()),
            ("std_dev_s", self.std_dev_s.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
        ])
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and records/prints its timing.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibration pass: one iteration, to size the real samples.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

        let mut times_s = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times_s.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let n = times_s.len() as f64;
        let mean = times_s.iter().sum::<f64>() / n;
        let var = times_s.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let std_dev = var.sqrt();
        println!(
            "{name:<40} time: {} ± {} ({} samples × {} iters)",
            format_time(mean),
            format_time(std_dev),
            self.sample_size,
            iters
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_s: mean,
            std_dev_s: std_dev,
            samples: self.sample_size,
            iters_per_sample: iters,
        });
    }

    /// Writes the group's JSON report under `target/collsel-bench/`.
    /// Called by [`criterion_main!`]; failures to write are reported
    /// but do not fail the bench run.
    pub fn write_report(&self, group: &str) {
        let binary = std::env::args()
            .next()
            .as_deref()
            .and_then(|p| {
                std::path::Path::new(p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_string());
        // Strip the disambiguation hash cargo appends to bench binaries.
        let binary = match binary.rsplit_once('-') {
            Some((stem, hash)) if hash.chars().all(|c| c.is_ascii_hexdigit()) => stem.to_string(),
            _ => binary,
        };
        let report = Json::obj(vec![
            ("group", group.to_json()),
            ("benchmarks", self.results.to_json()),
        ]);
        let dir = std::path::Path::new("target").join("collsel-bench");
        let path = dir.join(format!("{binary}_{group}.json"));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            std::fs::write(&path, report.to_string_pretty())
        };
        match write() {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::bench::Criterion = $config;
            $( $target(&mut c); )+
            c.write_report(stringify!($name));
        }
    };
}

/// Writes a `BENCH_*.json` artifact atomically (temp file + rename),
/// refusing to replace an existing artifact with a hollow one.
///
/// A bench that panics mid-run must not destroy the previous good
/// artifact: the rename only happens after the full report is on disk,
/// and a report whose `cells` array is empty (the shape a bench
/// produces when every cell failed or was skipped) is rejected with an
/// error instead of written. Benches that build their cells before
/// calling this therefore can never clobber real results with nothing.
///
/// # Errors
///
/// Returns an error if the report has an empty `cells` array or if
/// writing/renaming fails.
pub fn write_artifact(path: impl AsRef<std::path::Path>, report: &Json) -> Result<(), String> {
    let path = path.as_ref();
    if let Some(Json::Arr(cells)) = report.get("cells") {
        if cells.is_empty() {
            return Err(format!(
                "refusing to write {} with zero cells (previous artifact kept)",
                path.display()
            ));
        }
    }
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact.json".to_string())
    ));
    std::fs::write(&tmp, report.to_string_pretty())
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_routine() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop_sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert!(r.mean_s > 0.0 && r.mean_s.is_finite());
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn write_artifact_refuses_empty_cells_and_keeps_the_old_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("collsel-artifact-test-{}.json", std::process::id()));
        let good = Json::obj(vec![(
            "cells",
            Json::Arr(vec![Json::obj(vec![("qps", 1.0.to_json())])]),
        )]);
        write_artifact(&path, &good).expect("good artifact writes");
        let hollow = Json::obj(vec![("cells", Json::Arr(Vec::new()))]);
        assert!(write_artifact(&path, &hollow).is_err());
        let kept = std::fs::read_to_string(&path).expect("old artifact still there");
        assert!(kept.contains("qps"), "previous artifact untouched");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_shape_is_stable() {
        let r = BenchResult {
            name: "x".into(),
            mean_s: 1.5e-3,
            std_dev_s: 1e-5,
            samples: 10,
            iters_per_sample: 4,
        };
        let j = r.to_json();
        assert_eq!(j.field("name").unwrap().as_str().unwrap(), "x");
        assert_eq!(j.field("samples").unwrap().as_f64().unwrap(), 10.0);
    }
}
