//! The per-rank communication handle: the API collective algorithms are
//! written against.
//!
//! [`Ctx`] mirrors the slice of MPI that the Open MPI collective
//! implementations use: blocking and non-blocking point-to-point
//! operations, typed requests, waits, a barrier, and the local clock
//! (`MPI_Wtime`). User code between communication calls takes **zero
//! virtual time**; CPU costs of communication itself (send/receive
//! overheads) are charged by the engine.
//!
//! Requests are typed ([`SendRequest`] vs [`RecvRequest`]) so that the
//! compiler enforces what a wait can return: payloads come only out of
//! receives.

use crate::msg::{Peer, RecvStatus, Tag, TagSel};
use crate::proto::{BlockOp, Completion, PostOp, RankMsg, ReqId, Resume, WaitMode};
use collsel_netsim::SimTime;
use collsel_support::Bytes;
use std::sync::mpsc::{Receiver, Sender};

/// Handle to an in-flight non-blocking send.
///
/// Must be completed with [`Ctx::wait_send`] or [`Ctx::wait_all_sends`].
#[derive(Debug)]
#[must_use = "a send request must be waited on"]
pub struct SendRequest {
    pub(crate) id: ReqId,
}

/// Handle to an in-flight non-blocking receive.
///
/// Must be completed with [`Ctx::wait_recv`], [`Ctx::wait_all_recvs`] or
/// [`Ctx::wait_any_recv`].
#[derive(Debug)]
#[must_use = "a receive request must be waited on"]
pub struct RecvRequest {
    pub(crate) id: ReqId,
}

/// The per-rank communication context handed to the user function by
/// [`crate::simulate`].
///
/// All methods take `&mut self`: a rank is a single sequential process.
#[derive(Debug)]
pub struct Ctx {
    rank: usize,
    size: usize,
    next_req: ReqId,
    to_engine: Sender<RankMsg>,
    resume: Receiver<Resume>,
}

impl Ctx {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        to_engine: Sender<RankMsg>,
        resume: Receiver<Resume>,
    ) -> Self {
        Ctx {
            rank,
            size,
            next_req: 0,
            to_engine,
            resume,
        }
    }

    /// This process's rank in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the simulation (world size).
    pub fn size(&self) -> usize {
        self.size
    }

    fn alloc_req(&mut self) -> ReqId {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    fn post(&mut self, op: PostOp) {
        let _ = self.to_engine.send(RankMsg::Post {
            rank: self.rank,
            op,
        });
    }

    fn block(&mut self, op: BlockOp) -> (SimTime, Vec<Completion>) {
        let _ = self.to_engine.send(RankMsg::Block {
            rank: self.rank,
            op,
        });
        match self.resume.recv() {
            Ok(Resume::Ready { now, completions }) => (now, completions),
            Ok(Resume::Abort) | Err(_) => {
                // Unwind this rank thread; the harness catches this and
                // the engine already knows why the run is being aborted.
                std::panic::panic_any(crate::sim::AbortToken);
            }
        }
    }

    /// Starts a non-blocking send of `payload` to `dst` with `tag`
    /// (`MPI_Isend`).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a valid rank.
    pub fn isend(&mut self, dst: usize, tag: Tag, payload: Bytes) -> SendRequest {
        assert!(dst < self.size, "isend to rank {dst} of {}", self.size);
        let req = self.alloc_req();
        self.post(PostOp::Isend {
            req,
            dst,
            tag,
            payload,
        });
        SendRequest { id: req }
    }

    /// Starts a non-blocking receive matching `src` and `tag`
    /// (`MPI_Irecv`). Both accept wildcards via [`Peer::Any`] /
    /// [`TagSel::Any`]; plain `usize` / `u32` values convert to exact
    /// matches.
    pub fn irecv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> RecvRequest {
        let src = src.into();
        if let Peer::Rank(r) = src {
            assert!(r < self.size, "irecv from rank {r} of {}", self.size);
        }
        let req = self.alloc_req();
        self.post(PostOp::Irecv {
            req,
            src,
            tag: tag.into(),
        });
        RecvRequest { id: req }
    }

    /// Completes a non-blocking send (`MPI_Wait`).
    pub fn wait_send(&mut self, req: SendRequest) {
        let _ = self.block(BlockOp::Wait {
            reqs: vec![req.id],
            mode: WaitMode::All,
        });
    }

    /// Completes a non-blocking receive (`MPI_Wait`), returning the
    /// payload and its status.
    pub fn wait_recv(&mut self, req: RecvRequest) -> (Bytes, RecvStatus) {
        let (_, mut completions) = self.block(BlockOp::Wait {
            reqs: vec![req.id],
            mode: WaitMode::All,
        });
        let c = completions.pop().expect("engine returns one completion");
        Self::into_recv(c)
    }

    /// Completes a batch of sends (`MPI_Waitall`).
    pub fn wait_all_sends(&mut self, reqs: Vec<SendRequest>) {
        if reqs.is_empty() {
            return;
        }
        let _ = self.block(BlockOp::Wait {
            reqs: reqs.into_iter().map(|r| r.id).collect(),
            mode: WaitMode::All,
        });
    }

    /// Completes a batch of receives (`MPI_Waitall`), returning payloads
    /// in request order.
    pub fn wait_all_recvs(&mut self, reqs: Vec<RecvRequest>) -> Vec<(Bytes, RecvStatus)> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let (_, completions) = self.block(BlockOp::Wait {
            reqs: reqs.iter().map(|r| r.id).collect(),
            mode: WaitMode::All,
        });
        completions.into_iter().map(Self::into_recv).collect()
    }

    /// Completes the earliest-finishing receive of `reqs`
    /// (`MPI_Waitany`), returning its index within `reqs`, the payload
    /// and the status. The remaining requests stay pending and are given
    /// back as the final element of the tuple.
    ///
    /// # Panics
    ///
    /// Panics if `reqs` is empty.
    pub fn wait_any_recv(
        &mut self,
        reqs: Vec<RecvRequest>,
    ) -> (usize, Bytes, RecvStatus, Vec<RecvRequest>) {
        assert!(!reqs.is_empty(), "wait_any_recv needs at least one request");
        let (_, mut completions) = self.block(BlockOp::Wait {
            reqs: reqs.iter().map(|r| r.id).collect(),
            mode: WaitMode::Any,
        });
        let c = completions.pop().expect("engine returns one completion");
        let idx = reqs
            .iter()
            .position(|r| r.id == c.req)
            .expect("completed request belongs to the waited set");
        let mut rest = reqs;
        let _ = rest.remove(idx);
        let (payload, status) = Self::into_recv(c);
        (idx, payload, status, rest)
    }

    /// Blocking standard-mode send (`MPI_Send`): `isend` + wait.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a valid rank.
    pub fn send(&mut self, dst: usize, tag: Tag, payload: Bytes) {
        let req = self.isend(dst, tag, payload);
        self.wait_send(req);
    }

    /// Blocking receive (`MPI_Recv`).
    pub fn recv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> (Bytes, RecvStatus) {
        let req = self.irecv(src, tag);
        self.wait_recv(req)
    }

    /// Combined blocking send and receive (`MPI_Sendrecv`): both
    /// directions progress concurrently.
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: Tag,
        payload: Bytes,
        src: impl Into<Peer>,
        recv_tag: impl Into<TagSel>,
    ) -> (Bytes, RecvStatus) {
        let r = self.irecv(src, recv_tag);
        let s = self.isend(dst, send_tag, payload);
        self.wait_send(s);
        self.wait_recv(r)
    }

    /// Synchronises all ranks (`MPI_Barrier`).
    ///
    /// The built-in barrier is an *ideal* synchronisation: every rank
    /// resumes at the latest entry time, with no network cost. It exists
    /// for measurement framing; a real dissemination barrier lives in
    /// the collective-algorithms crate.
    pub fn barrier(&mut self) {
        let _ = self.block(BlockOp::Barrier);
    }

    /// Reads this rank's local virtual clock (`MPI_Wtime`).
    pub fn wtime(&mut self) -> SimTime {
        let (now, _) = self.block(BlockOp::Wtime);
        now
    }

    /// Advances this rank's virtual clock by `span` of local computation
    /// (the `Compute(γ)` op of the schedule IR) without touching the
    /// network.
    pub fn compute(&mut self, span: collsel_netsim::SimSpan) {
        self.post(PostOp::Compute { span });
    }

    fn into_recv(c: Completion) -> (Bytes, RecvStatus) {
        let payload = c.payload.expect("receive completion carries a payload");
        let (source, tag) = c.origin.expect("receive completion carries its origin");
        let len = payload.len();
        (payload, RecvStatus { source, tag, len })
    }

    pub(crate) fn notify_finished(&mut self) {
        let _ = self.to_engine.send(RankMsg::Finished { rank: self.rank });
    }

    pub(crate) fn notify_panicked(&mut self, message: String) {
        let _ = self.to_engine.send(RankMsg::Panicked {
            rank: self.rank,
            message,
        });
    }
}
