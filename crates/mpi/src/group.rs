//! Sub-communicator support: run a collective on a subset of the
//! world's ranks by *rank remapping*, with no new engine machinery.
//!
//! [`GroupComm`] wraps any [`Comm`] and presents a dense
//! `0..group_size` rank space over an explicit member list: sends and
//! receives translate group ranks to global ranks on the way down
//! (and receive statuses back up), and offset tags by a per-group base
//! so concurrent collectives on overlapping groups never collide on a
//! `(src, dst, tag)` channel. Because the translation happens *above*
//! the `Comm` surface, the same wrapped program records
//! ([`crate::RecCtx`]), replays ([`crate::simulate_scheduled`]) and
//! compiles to a timing DAG ([`crate::TimingDag`]) exactly like a
//! world-sized program — the existing Schedule/DAG machinery sees only
//! ordinary point-to-point traffic between global ranks.
//!
//! The collective algorithms in `collsel-coll` are written against
//! `Comm` using only point-to-point operations, `wtime` and `compute`
//! (none calls `barrier` internally), which is exactly the surface a
//! remapping adapter can support. A *global* barrier inside a
//! sub-communicator collective would deadlock ranks outside the group,
//! so [`GroupComm::barrier`] panics instead of silently synchronising
//! the wrong set.

use crate::comm::Comm;
use crate::ctx::{RecvRequest, SendRequest};
use crate::msg::{Peer, RecvStatus, Tag, TagSel};
use collsel_netsim::{SimSpan, SimTime};
use collsel_support::Bytes;

/// Tag offset between concurrent group collectives issued in one step.
///
/// Each collective running on a sub-communicator gets its own tag
/// window of this width; within a window, algorithms use small tags
/// (segment indices and round numbers — far below 2^20), so traffic
/// from different calls that happens to share a global `(src, dst)`
/// pair still lands on distinct channels and FIFO matching per channel
/// stays a compile-time fact.
pub const GROUP_TAG_STRIDE: Tag = 1 << 20;

/// A dense-rank view of a subset of the world, layered over any
/// [`Comm`].
///
/// `ranks[g]` is the global rank of group rank `g`; group rank 0 is
/// the group's root by convention (callers keep `ranks` sorted so the
/// root is the lowest global member).
#[derive(Debug)]
pub struct GroupComm<'a, C: Comm> {
    inner: &'a mut C,
    ranks: &'a [usize],
    /// This process's rank *within the group*.
    me: usize,
    tag_base: Tag,
}

impl<'a, C: Comm> GroupComm<'a, C> {
    /// Wraps `inner` as group rank `ranks.iter().position(== rank)`,
    /// or `None` if the calling rank is not a member (non-members
    /// simply skip the collective).
    ///
    /// # Panics
    ///
    /// Panics on an empty group, a member outside the world, or a
    /// duplicate member.
    pub fn new(inner: &'a mut C, ranks: &'a [usize], tag_base: Tag) -> Option<GroupComm<'a, C>> {
        assert!(!ranks.is_empty(), "empty rank group");
        let world = inner.size();
        for (i, &r) in ranks.iter().enumerate() {
            assert!(r < world, "group member {r} outside world of {world}");
            assert!(
                !ranks[..i].contains(&r),
                "duplicate member {r} in rank group"
            );
        }
        let me = ranks.iter().position(|&r| r == inner.rank())?;
        Some(GroupComm {
            inner,
            ranks,
            me,
            tag_base,
        })
    }

    fn global(&self, group_rank: usize) -> usize {
        assert!(
            group_rank < self.ranks.len(),
            "group rank {group_rank} outside group of {}",
            self.ranks.len()
        );
        self.ranks[group_rank]
    }

    /// Translates a completed receive's status into the group view:
    /// global source back to group rank, tag back into the group's
    /// window. Exact-source receives within the window cannot match
    /// outside traffic, so the lookups cannot fail.
    fn localize(&self, status: RecvStatus) -> RecvStatus {
        let source = self
            .ranks
            .iter()
            .position(|&r| r == status.source)
            .expect("matched sender is a group member");
        RecvStatus {
            source,
            tag: status.tag - self.tag_base,
            len: status.len,
        }
    }
}

impl<C: Comm> Comm for GroupComm<'_, C> {
    fn rank(&self) -> usize {
        self.me
    }

    fn size(&self) -> usize {
        self.ranks.len()
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Bytes) -> SendRequest {
        let dst = self.global(dst);
        self.inner.isend(dst, self.tag_base + tag, payload)
    }

    fn irecv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> RecvRequest {
        // Wildcards cannot be remapped: `Peer::Any` would accept
        // traffic from outside the group and `TagSel::Any` traffic
        // from other tag windows. The collective algorithms only use
        // exact sources and tags, so the restriction is theoretical.
        let src = match src.into() {
            Peer::Rank(g) => Peer::Rank(self.global(g)),
            Peer::Any => panic!("wildcard receive source unsupported on a rank group"),
        };
        let tag = match tag.into() {
            TagSel::Exact(t) => TagSel::Exact(self.tag_base + t),
            TagSel::Any => panic!("wildcard receive tag unsupported on a rank group"),
        };
        self.inner.irecv(src, tag)
    }

    fn wait_send(&mut self, req: SendRequest) {
        self.inner.wait_send(req);
    }

    fn wait_recv(&mut self, req: RecvRequest) -> (Bytes, RecvStatus) {
        let (data, status) = self.inner.wait_recv(req);
        let status = self.localize(status);
        (data, status)
    }

    fn wait_all_sends(&mut self, reqs: Vec<SendRequest>) {
        self.inner.wait_all_sends(reqs);
    }

    fn wait_all_recvs(&mut self, reqs: Vec<RecvRequest>) -> Vec<(Bytes, RecvStatus)> {
        self.inner
            .wait_all_recvs(reqs)
            .into_iter()
            .map(|(data, status)| {
                let status = self.localize(status);
                (data, status)
            })
            .collect()
    }

    fn wait_any_recv(
        &mut self,
        reqs: Vec<RecvRequest>,
    ) -> (usize, Bytes, RecvStatus, Vec<RecvRequest>) {
        let (idx, data, status, rest) = self.inner.wait_any_recv(reqs);
        let status = self.localize(status);
        (idx, data, status, rest)
    }

    fn barrier(&mut self) {
        // A global barrier would synchronise non-members too (wrong),
        // and a group barrier needs an algorithm, not an engine
        // primitive — use `Alg::Barrier` collectives on the group.
        panic!("engine barrier unsupported on a rank group");
    }

    fn wtime(&mut self) -> SimTime {
        self.inner.wtime()
    }

    fn compute(&mut self, span: SimSpan) {
        self.inner.compute(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::sim::{simulate, simulate_with, SimOptions};
    use collsel_netsim::ClusterModel;

    /// Each group member sends its group rank to group rank 0 over the
    /// group view; the root sees senders under their *group* identity
    /// while traffic flows between global ranks.
    #[test]
    fn group_remaps_ranks_tags_and_statuses() {
        let cluster = ClusterModel::gros();
        let ranks: Vec<usize> = vec![1, 3, 4];
        let out = simulate(&cluster, 6, 0, {
            let ranks = ranks.clone();
            move |ctx| {
                let Some(mut g) = GroupComm::new(ctx, &ranks, GROUP_TAG_STRIDE) else {
                    return None; // non-member: no group traffic at all
                };
                assert_eq!(g.size(), 3);
                if g.rank() == 0 {
                    let mut seen = Vec::new();
                    for src in 1..g.size() {
                        let (data, status) = g.recv(src, 7);
                        assert_eq!(status.source, src, "status is in group space");
                        assert_eq!(status.tag, 7, "tag offset is stripped");
                        seen.push(data[0]);
                    }
                    Some(seen)
                } else {
                    let me = g.rank() as u8;
                    g.send(0, 7, Bytes::from(vec![me]));
                    Some(Vec::new())
                }
            }
        })
        .expect("group exchange completes");
        assert_eq!(out.results[0], None, "rank 0 is not a member");
        assert_eq!(out.results[1], Some(vec![1, 2]), "root sees group ranks");
        assert_eq!(out.results[3], Some(vec![]));
        assert_eq!(out.results[5], None);
    }

    /// Two overlapping groups exchanging concurrently with distinct tag
    /// windows must not cross-match even on shared (src, dst) pairs.
    #[test]
    fn overlapping_groups_stay_on_separate_channels() {
        let cluster = ClusterModel::gros();
        let a: Vec<usize> = vec![0, 1];
        let b: Vec<usize> = vec![0, 1, 2];
        let out = simulate_with(&cluster, 3, 0, SimOptions::default(), {
            let (a, b) = (a.clone(), b.clone());
            move |ctx| {
                let mut got = Vec::new();
                if let Some(mut g) = GroupComm::new(ctx, &a, 0) {
                    if g.rank() == 0 {
                        got.push(g.recv(1, 0).0[0]);
                    } else {
                        g.send(0, 0, Bytes::from(vec![0xAA]));
                    }
                }
                if let Some(mut g) = GroupComm::new(ctx, &b, GROUP_TAG_STRIDE) {
                    if g.rank() == 0 {
                        got.push(g.recv(1, 0).0[0]);
                    } else if g.rank() == 1 {
                        g.send(0, 0, Bytes::from(vec![0xBB]));
                    }
                }
                got
            }
        })
        .expect("both groups complete");
        assert_eq!(out.results[0], vec![0xAA, 0xBB]);
    }

    #[test]
    fn group_barrier_is_rejected() {
        let cluster = ClusterModel::gros();
        let err = simulate(&cluster, 2, 0, move |ctx| {
            let ranks = [0usize, 1];
            if let Some(mut g) = GroupComm::new(ctx, &ranks, 0) {
                g.barrier();
            }
        })
        .expect_err("group barrier must panic the rank");
        match err {
            SimError::RankPanic { message, .. } => {
                assert!(message.contains("engine barrier unsupported"), "{message}");
            }
            other => panic!("expected RankPanic, got {other:?}"),
        }
    }
}
