//! Message envelopes and matching selectors.
//!
//! Matching follows MPI semantics: a receive names a source and a tag,
//! either of which may be a wildcard, and messages between a given pair
//! of processes with the same tag are non-overtaking.

use std::fmt;

/// A message tag (non-negative, like MPI user tags).
pub type Tag = u32;

/// Source selector for a receive: a concrete rank or the wildcard
/// (`MPI_ANY_SOURCE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Peer {
    /// Match only messages from this rank.
    Rank(usize),
    /// Match messages from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl Peer {
    /// Whether this selector accepts messages from `rank`.
    pub fn matches(self, rank: usize) -> bool {
        match self {
            Peer::Rank(r) => r == rank,
            Peer::Any => true,
        }
    }
}

impl From<usize> for Peer {
    fn from(rank: usize) -> Self {
        Peer::Rank(rank)
    }
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peer::Rank(r) => write!(f, "rank {r}"),
            Peer::Any => write!(f, "any source"),
        }
    }
}

/// Tag selector for a receive: a concrete tag or the wildcard
/// (`MPI_ANY_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagSel {
    /// Match only messages with this tag.
    Exact(Tag),
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
}

impl TagSel {
    /// Whether this selector accepts messages with `tag`.
    pub fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Exact(t) => t == tag,
            TagSel::Any => true,
        }
    }
}

impl From<Tag> for TagSel {
    fn from(tag: Tag) -> Self {
        TagSel::Exact(tag)
    }
}

impl fmt::Display for TagSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagSel::Exact(t) => write!(f, "tag {t}"),
            TagSel::Any => write!(f, "any tag"),
        }
    }
}

/// Completion metadata of a finished receive, mirroring `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecvStatus {
    /// The rank that sent the matched message.
    pub source: usize,
    /// The tag of the matched message.
    pub tag: Tag,
    /// Payload size in bytes.
    pub len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_matching() {
        assert!(Peer::Rank(3).matches(3));
        assert!(!Peer::Rank(3).matches(4));
        assert!(Peer::Any.matches(0));
        assert!(Peer::Any.matches(99));
    }

    #[test]
    fn tag_matching() {
        assert!(TagSel::Exact(7).matches(7));
        assert!(!TagSel::Exact(7).matches(8));
        assert!(TagSel::Any.matches(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Peer::from(5), Peer::Rank(5));
        assert_eq!(TagSel::from(9), TagSel::Exact(9));
    }

    #[test]
    fn display() {
        assert_eq!(Peer::Rank(2).to_string(), "rank 2");
        assert_eq!(Peer::Any.to_string(), "any source");
        assert_eq!(TagSel::Exact(1).to_string(), "tag 1");
        assert_eq!(TagSel::Any.to_string(), "any tag");
    }
}
