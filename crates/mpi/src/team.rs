//! Persistent rank-worker team: reuse OS threads across simulations.
//!
//! [`simulate`](crate::simulate) spawns (and joins) one scoped thread
//! per rank on every call. For a single run that cost is noise; a tuning
//! campaign issues tens of thousands of short runs, and the spawn/join
//! round-trips plus their stack allocations become a measurable slice of
//! wall-clock. [`simulate_pooled`] removes it: each *caller* OS thread
//! lazily grows a private team of detached rank workers (thread-local,
//! so concurrent campaign jobs never share a team or contend on it) and
//! re-dispatches rank bodies onto them run after run.
//!
//! The price is tighter bounds: the rank closure must be `Send + Sync +
//! 'static` because it travels to long-lived threads, where the scoped
//! variant lets it borrow from the caller's stack. Results are
//! bit-identical between the two paths — they share the engine, the
//! fabric seeding and the rank bodies; only thread reuse differs.

use crate::ctx::Ctx;
use crate::error::SimError;
use crate::proto::RankMsg;
use crate::sim::{
    assemble_outcome, build_fabric, check_ranks, run_rank_body, stash_scratch, take_scratch,
    SimOptions, SimOutcome,
};
use collsel_netsim::{ClusterModel, SimTime};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};

/// A unit of work shipped to a rank worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A lazily grown set of detached worker threads, one per rank slot.
struct Team {
    workers: Vec<Sender<Job>>,
}

impl Team {
    const fn new() -> Team {
        Team {
            workers: Vec::new(),
        }
    }

    /// Grows the team to at least `n` workers.
    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (tx, rx) = mpsc::channel::<Job>();
            let slot = self.workers.len();
            std::thread::Builder::new()
                .name(format!("collsel-rank-{slot}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // A rank body already catches its own panics;
                        // this outer catch keeps the worker alive even
                        // if job plumbing itself unwinds.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("failed to spawn rank worker thread");
            self.workers.push(tx);
        }
    }

    fn submit(&self, slot: usize, job: Job) {
        self.workers[slot]
            .send(job)
            .expect("rank worker thread died");
    }

    /// Drops workers beyond `cap` so a one-off oversized run doesn't pin
    /// its threads for the rest of a campaign. Dropping a sender lets
    /// the worker finish its current job and exit its receive loop.
    fn shrink_to(&mut self, cap: usize) {
        self.workers.truncate(cap);
        self.workers.shrink_to(cap);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.workers.len()
    }
}

thread_local! {
    /// Each caller OS thread owns its team, so concurrent campaign jobs
    /// (e.g. from `collsel_support::pool`) never contend on workers.
    static TEAM: RefCell<Team> = const { RefCell::new(Team::new()) };
}

/// Like [`simulate_with`](crate::simulate_with), but dispatches ranks
/// onto a persistent per-caller-thread worker team instead of spawning
/// `ranks` fresh OS threads per call.
///
/// This is the campaign hot path: across tens of thousands of short
/// simulations, thread reuse removes the per-run spawn/join cost. The
/// rank closure needs `Send + Sync + 'static` (it is shared with
/// long-lived workers); use [`simulate`](crate::simulate) when it must
/// borrow from the caller's stack. Given the same cluster, seed and
/// program, the outcome is bit-identical to the scoped variant.
///
/// # Errors
///
/// Same as [`simulate_with`](crate::simulate_with).
///
/// # Panics
///
/// Same as [`simulate`](crate::simulate).
pub fn simulate_pooled<T, F>(
    cluster: &ClusterModel,
    ranks: usize,
    seed: u64,
    opts: SimOptions,
    f: F,
) -> Result<SimOutcome<T>, SimError>
where
    F: Fn(&mut Ctx) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    check_ranks(cluster, ranks);
    let fabric = build_fabric(cluster, seed, opts);
    let (to_engine, from_ranks) = mpsc::channel::<RankMsg>();
    let mut resume_txs = Vec::with_capacity(ranks);
    let mut resume_rxs = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (tx, rx) = mpsc::channel();
        resume_txs.push(tx);
        resume_rxs.push(rx);
    }

    let f = Arc::new(f);
    let results: Arc<Mutex<Vec<Option<T>>>> =
        Arc::new(Mutex::new((0..ranks).map(|_| None).collect()));
    let deadline = opts.deadline.map(|d| SimTime::ZERO + d);
    let transport = crate::engine::ChannelTransport {
        from_ranks,
        resume_tx: resume_txs,
    };
    let engine = crate::engine::Engine::new(fabric, ranks, transport, deadline, take_scratch());

    // One latch message per rank marks its job (not just its simulated
    // program) as finished, so `results` is complete before we read it.
    let (done_tx, done_rx) = mpsc::channel::<()>();
    TEAM.with(|team| {
        let mut team = team.borrow_mut();
        team.ensure(ranks);
        for (rank, resume_rx) in resume_rxs.into_iter().enumerate() {
            let to_engine = to_engine.clone();
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let done = done_tx.clone();
            team.submit(
                rank,
                Box::new(move || {
                    run_rank_body(rank, ranks, to_engine, resume_rx, &results, |ctx| f(ctx));
                    // Release our handles before signalling: the caller
                    // unwraps `results` as soon as every latch fires.
                    drop(results);
                    drop(f);
                    let _ = done.send(());
                }),
            );
        }
        // Cap the persistent team: workers beyond the cap still run the
        // job queued above (dropping a sender lets them drain first),
        // but don't survive into the rest of the campaign.
        team.shrink_to(crate::engine::RECYCLE_RANK_CAP);
    });
    drop(to_engine);
    drop(done_tx);

    // The engine runs on the caller thread. On error it aborts all
    // blocked ranks, whose workers then finish their jobs; either way
    // every job signals (or drops) its latch, so this cannot hang.
    let (engine_result, scratch, _transport) = engine.run();
    stash_scratch(scratch);
    let mut remaining = ranks;
    while remaining > 0 {
        match done_rx.recv() {
            Ok(()) => remaining -= 1,
            Err(_) => break, // all latch senders dropped: every job ended
        }
    }

    let report = engine_result?;
    let results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("a rank job still holds the results"))
        .into_inner()
        .expect("a rank panicked while holding the results lock");
    Ok(assemble_outcome(report, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_support::Bytes;

    fn ring_program(ctx: &mut Ctx) -> u64 {
        let p = ctx.size();
        let next = (ctx.rank() + 1) % p;
        let prev = (ctx.rank() + p - 1) % p;
        ctx.send(next, 0, Bytes::from(vec![ctx.rank() as u8; 2048]));
        let (data, _) = ctx.recv(prev, 0);
        data.len() as u64 + ctx.wtime().as_nanos()
    }

    #[test]
    fn pooled_matches_scoped_bit_for_bit() {
        let cluster = ClusterModel::gros();
        for seed in [1u64, 42, 1009] {
            let scoped =
                crate::simulate(&cluster, 8, seed, ring_program).expect("scoped run succeeds");
            let pooled = simulate_pooled(&cluster, 8, seed, SimOptions::default(), ring_program)
                .expect("pooled run succeeds");
            assert_eq!(scoped.results, pooled.results);
            assert_eq!(scoped.report.finish_times, pooled.report.finish_times);
            assert_eq!(scoped.report.makespan, pooled.report.makespan);
            assert_eq!(scoped.report.messages, pooled.report.messages);
            assert_eq!(scoped.report.bytes, pooled.report.bytes);
        }
    }

    #[test]
    fn pooled_runs_back_to_back_reusing_workers() {
        let cluster = ClusterModel::gros();
        let first = simulate_pooled(&cluster, 4, 7, SimOptions::default(), ring_program)
            .expect("first run");
        for _ in 0..10 {
            let again = simulate_pooled(&cluster, 4, 7, SimOptions::default(), ring_program)
                .expect("repeat run");
            assert_eq!(first.report.makespan, again.report.makespan);
        }
    }

    #[test]
    fn pooled_surfaces_rank_panics() {
        let cluster = ClusterModel::gros();
        let err = simulate_pooled(&cluster, 4, 3, SimOptions::default(), |ctx: &mut Ctx| {
            assert!(ctx.rank() != 2, "rank 2 exploded");
            ctx.barrier();
        })
        .expect_err("rank panic must surface");
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 2);
                assert!(message.contains("rank 2 exploded"));
            }
            other => panic!("expected RankPanic, got {other:?}"),
        }
        // The team survives a panicked run and keeps working.
        let ok = simulate_pooled(&cluster, 4, 3, SimOptions::default(), ring_program)
            .expect("team still healthy");
        assert_eq!(ok.results.len(), 4);
    }

    #[test]
    fn team_is_capped_after_an_oversized_run() {
        use crate::engine::RECYCLE_RANK_CAP;
        // A dedicated OS thread keeps this test's thread-local team
        // isolated from the other tests on the harness threads.
        std::thread::spawn(|| {
            let big = ClusterModel::builder("big", RECYCLE_RANK_CAP + 44).build();
            let p = RECYCLE_RANK_CAP + 44;
            let out = simulate_pooled(&big, p, 5, SimOptions::default(), |ctx: &mut Ctx| {
                ctx.barrier();
                ctx.rank()
            })
            .expect("oversized run succeeds");
            assert_eq!(out.results.len(), p);
            TEAM.with(|team| {
                assert!(
                    team.borrow().len() <= RECYCLE_RANK_CAP,
                    "one oversized run must not pin workers past the cap"
                );
            });
            // Back under the cap, the team still works.
            let ok = simulate_pooled(&big, 4, 5, SimOptions::default(), ring_program)
                .expect("small follow-up run");
            assert_eq!(ok.results.len(), 4);
        })
        .join()
        .expect("capped-team test thread");
    }

    #[test]
    fn pooled_surfaces_deadlocks() {
        let cluster = ClusterModel::gros();
        let err = simulate_pooled(&cluster, 2, 1, SimOptions::default(), |ctx: &mut Ctx| {
            // Both ranks receive, nobody sends.
            let _ = ctx.recv(crate::Peer::Any, 0);
        })
        .expect_err("deadlock must surface");
        assert!(matches!(err, SimError::Deadlock { .. }));
    }
}
