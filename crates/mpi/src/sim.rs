//! Simulation entry point: spawn one thread per rank, run the engine,
//! collect results.
//!
//! Two execution strategies share all of the engine machinery:
//!
//! * [`simulate`] (and its `_with`/`_traced` variants) spawns **scoped**
//!   rank threads per call, so the rank closure may borrow from the
//!   caller's stack. This is the general-purpose path.
//! * [`crate::simulate_pooled`] dispatches the ranks onto a persistent
//!   per-OS-thread worker team, avoiding the P `thread::spawn`/join
//!   round-trips per run — the hot path for tuning campaigns that run
//!   tens of thousands of short simulations.
//!
//! Both paths also recycle the engine's per-run buffers through a
//! thread-local [`EngineScratch`] stash, so consecutive runs on the same
//! caller thread reuse their allocations.

use crate::ctx::Ctx;
use crate::engine::{ChannelTransport, Engine, EngineReport, EngineScratch, RECYCLE_RANK_CAP};
use crate::engine_dag::DagScratch;
use crate::error::SimError;
use crate::proto::RankMsg;
use collsel_netsim::{ClusterModel, Fabric, SimSpan, SimTime, TransferRecord};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// Marker panic payload used to unwind rank threads on engine abort.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AbortToken;

thread_local! {
    /// Engine buffers recycled across consecutive runs on this thread.
    static ENGINE_SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
}

pub(crate) fn take_scratch() -> EngineScratch {
    ENGINE_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

pub(crate) fn stash_scratch(mut scratch: EngineScratch) {
    // Cap the recycled capacity so one oversized run doesn't pin its
    // buffers for the rest of a campaign.
    scratch.shrink_to_ranks(RECYCLE_RANK_CAP);
    ENGINE_SCRATCH.with(|s| *s.borrow_mut() = scratch);
}

thread_local! {
    /// Timing-DAG evaluation buffers recycled across consecutive
    /// [`crate::simulate_dag`] calls on this thread (the batched
    /// [`crate::DagEvaluator`] owns its scratch instead).
    static DAG_SCRATCH: RefCell<DagScratch> = RefCell::new(DagScratch::default());
}

pub(crate) fn take_dag_scratch() -> DagScratch {
    DAG_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

pub(crate) fn stash_dag_scratch(mut scratch: DagScratch) {
    scratch.shrink();
    DAG_SCRATCH.with(|s| *s.borrow_mut() = scratch);
}

/// Knobs for [`simulate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Record a [`TransferRecord`] per message (see [`simulate_traced`]).
    pub traced: bool,
    /// Virtual-time watchdog: abort with [`SimError::Timeout`] as soon
    /// as the next possible event lies past this much virtual time.
    /// `None` (the default) disables the watchdog.
    ///
    /// The watchdog is a *virtual-clock* budget, so it is deterministic:
    /// it catches runs whose simulated time explodes (e.g. under an
    /// injected brown-out), not host-machine slowness.
    pub deadline: Option<SimSpan>,
}

impl SimOptions {
    /// Options with a virtual-time deadline and no tracing.
    pub fn with_deadline(deadline: SimSpan) -> SimOptions {
        SimOptions {
            traced: false,
            deadline: Some(deadline),
        }
    }
}

/// Summary statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time at which each rank's function returned.
    pub finish_times: Vec<SimTime>,
    /// The latest finish time (virtual makespan of the run).
    pub makespan: SimTime,
    /// Total point-to-point messages transferred.
    pub messages: u64,
    /// Total payload bytes transferred.
    pub bytes: u64,
    /// Messages that used the shared-memory (same node) path.
    pub shm_messages: u64,
    /// Per-transfer records (empty unless [`simulate_traced`] was used).
    pub trace: Vec<TransferRecord>,
}

/// Result of a completed simulation: per-rank return values plus the
/// run report.
#[derive(Debug, Clone)]
pub struct SimOutcome<T> {
    /// `results[r]` is what rank `r`'s function returned.
    pub results: Vec<T>,
    /// Aggregate statistics of the run.
    pub report: RunReport,
}

/// Runs `f` as an SPMD program with `ranks` processes on `cluster`.
///
/// Each rank executes `f(&mut ctx)` on its own OS thread while a central
/// engine advances virtual time deterministically; `seed` drives the
/// network noise stream (same seed, same cluster, same program ⇒
/// identical timings).
///
/// ```
/// use collsel_support::Bytes;
/// use collsel_netsim::ClusterModel;
///
/// let cluster = ClusterModel::gros();
/// let out = collsel_mpi::simulate(&cluster, 2, 7, |ctx| {
///     if ctx.rank() == 0 {
///         ctx.send(1, 0, Bytes::from_static(b"hi"));
///         0
///     } else {
///         let (data, _) = ctx.recv(0, 0);
///         data.len()
///     }
/// })
/// .expect("no deadlock");
/// assert_eq!(out.results, vec![0, 2]);
/// ```
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] if the program can make no progress and
/// [`SimError::RankPanic`] if any rank's function panics.
///
/// # Panics
///
/// Panics if `ranks` is zero or exceeds the cluster's process slots.
pub fn simulate<T, F>(
    cluster: &ClusterModel,
    ranks: usize,
    seed: u64,
    f: F,
) -> Result<SimOutcome<T>, SimError>
where
    F: Fn(&mut Ctx) -> T + Sync,
    T: Send,
{
    simulate_impl(cluster, ranks, seed, SimOptions::default(), f)
}

/// Like [`simulate`], with explicit [`SimOptions`] (tracing and/or a
/// virtual-time watchdog deadline).
///
/// # Errors
///
/// Same as [`simulate`], plus [`SimError::Timeout`] when a deadline is
/// configured and the run's virtual time would exceed it.
///
/// # Panics
///
/// Same as [`simulate`].
pub fn simulate_with<T, F>(
    cluster: &ClusterModel,
    ranks: usize,
    seed: u64,
    opts: SimOptions,
    f: F,
) -> Result<SimOutcome<T>, SimError>
where
    F: Fn(&mut Ctx) -> T + Sync,
    T: Send,
{
    simulate_impl(cluster, ranks, seed, opts, f)
}

/// Like [`simulate`], but records a [`TransferRecord`] for every
/// message transfer; the trace is returned in
/// [`RunReport::trace`] (render it with
/// [`collsel_netsim::trace::to_chrome_trace`] or summarise with
/// [`collsel_netsim::trace::summarize`]).
///
/// # Errors
///
/// Same as [`simulate`].
///
/// # Panics
///
/// Same as [`simulate`].
pub fn simulate_traced<T, F>(
    cluster: &ClusterModel,
    ranks: usize,
    seed: u64,
    f: F,
) -> Result<SimOutcome<T>, SimError>
where
    F: Fn(&mut Ctx) -> T + Sync,
    T: Send,
{
    simulate_impl(
        cluster,
        ranks,
        seed,
        SimOptions {
            traced: true,
            deadline: None,
        },
        f,
    )
}

/// Validates the (cluster, ranks) pair shared by all entry points.
pub(crate) fn check_ranks(cluster: &ClusterModel, ranks: usize) {
    assert!(ranks > 0, "need at least one rank");
    assert!(
        ranks <= cluster.max_ranks(),
        "cluster {} has {} process slots, requested {ranks}",
        cluster.name(),
        cluster.max_ranks()
    );
}

/// Builds the fabric for one run according to `opts`.
pub(crate) fn build_fabric(cluster: &ClusterModel, seed: u64, opts: SimOptions) -> Fabric {
    let mut fabric = Fabric::new(cluster.clone(), seed);
    if opts.traced {
        fabric.enable_tracing();
    }
    fabric
}

/// Converts the engine's internal report into the public [`RunReport`].
pub(crate) fn report_from_engine(report: EngineReport) -> RunReport {
    let makespan = report
        .finish_times
        .iter()
        .copied()
        .fold(SimTime::ZERO, SimTime::max);
    RunReport {
        finish_times: report.finish_times,
        makespan,
        messages: report.stats.messages,
        bytes: report.stats.bytes,
        shm_messages: report.stats.shm_messages,
        trace: report.trace,
    }
}

/// Assembles the public outcome from the engine report and the per-rank
/// results gathered by either execution strategy.
pub(crate) fn assemble_outcome<T>(report: EngineReport, results: Vec<Option<T>>) -> SimOutcome<T> {
    let results: Vec<T> = results
        .into_iter()
        .enumerate()
        .map(|(rank, v)| v.unwrap_or_else(|| panic!("rank {rank} finished without a result")))
        .collect();
    SimOutcome {
        results,
        report: report_from_engine(report),
    }
}

/// The body every rank thread runs, shared by both execution strategies.
/// Catches panics, distinguishing engine-initiated aborts from real rank
/// failures, and stores the rank's return value.
pub(crate) fn run_rank_body<T>(
    rank: usize,
    ranks: usize,
    to_engine: mpsc::Sender<RankMsg>,
    resume_rx: mpsc::Receiver<crate::proto::Resume>,
    results: &Mutex<Vec<Option<T>>>,
    f: impl FnOnce(&mut Ctx) -> T,
) where
    T: Send,
{
    let mut ctx = Ctx::new(rank, ranks, to_engine, resume_rx);
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
    match outcome {
        Ok(value) => {
            results.lock().expect("results lock")[rank] = Some(value);
            ctx.notify_finished();
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortToken>().is_some() {
                // The engine initiated the abort; stay quiet.
                return;
            }
            let message = panic_message(payload.as_ref());
            ctx.notify_panicked(message);
        }
    }
}

fn simulate_impl<T, F>(
    cluster: &ClusterModel,
    ranks: usize,
    seed: u64,
    opts: SimOptions,
    f: F,
) -> Result<SimOutcome<T>, SimError>
where
    F: Fn(&mut Ctx) -> T + Sync,
    T: Send,
{
    check_ranks(cluster, ranks);
    let fabric = build_fabric(cluster, seed, opts);
    let (to_engine, from_ranks) = mpsc::channel::<RankMsg>();
    let mut resume_txs = Vec::with_capacity(ranks);
    let mut resume_rxs = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (tx, rx) = mpsc::channel();
        resume_txs.push(tx);
        resume_rxs.push(rx);
    }

    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..ranks).map(|_| None).collect());
    let deadline = opts.deadline.map(|d| SimTime::ZERO + d);
    let transport = ChannelTransport {
        from_ranks,
        resume_tx: resume_txs,
    };
    let engine = Engine::new(fabric, ranks, transport, deadline, take_scratch());

    let (engine_result, scratch, _transport) = std::thread::scope(|scope| {
        for (rank, resume_rx) in resume_rxs.into_iter().enumerate() {
            let to_engine = to_engine.clone();
            let f = &f;
            let results = &results;
            scope.spawn(move || {
                run_rank_body(rank, ranks, to_engine, resume_rx, results, f);
            });
        }
        drop(to_engine);
        engine.run()
    });
    stash_scratch(scratch);

    let report = engine_result?;
    let results = results
        .into_inner()
        .expect("a rank panicked while holding the results lock");
    Ok(assemble_outcome(report, results))
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
