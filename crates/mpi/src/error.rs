//! Error types of the simulated MPI runtime.

use std::error::Error;
use std::fmt;

/// A fatal simulation failure.
///
/// The runtime validates arguments eagerly (panicking on programmer
/// errors like out-of-range ranks), so the errors that escape to the
/// caller are genuine runtime outcomes of the simulated program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A rank's user function panicked; the whole run is torn down.
    RankPanic {
        /// The rank whose function panicked.
        rank: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Every rank is blocked and none can make progress.
    Deadlock {
        /// Human-readable description of who waits on what.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::RankPanic {
            rank: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "rank 3 panicked: boom");
        let d = SimError::Deadlock {
            detail: "rank 0: blocked".into(),
        };
        assert!(d.to_string().starts_with("deadlock:"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(SimError::Deadlock {
            detail: String::new(),
        });
        assert!(e.source().is_none());
    }
}
