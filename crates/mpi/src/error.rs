//! Error types of the simulated MPI runtime and measurement pipeline.

use collsel_netsim::SimSpan;
use std::error::Error;
use std::fmt;

/// A fatal simulation failure.
///
/// The runtime validates arguments eagerly (panicking on programmer
/// errors like out-of-range ranks), so the errors that escape to the
/// caller are genuine runtime outcomes of the simulated program. The
/// estimation layer reuses this type for measurement-level failures
/// ([`SimError::PrecisionNotReached`]) so one error type travels
/// through the whole sim → estim → select pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A rank's user function panicked; the whole run is torn down.
    RankPanic {
        /// The rank whose function panicked.
        rank: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Every rank is blocked and none can make progress.
    Deadlock {
        /// Human-readable description of who waits on what.
        detail: String,
    },
    /// The virtual-time watchdog fired: the next possible event lies
    /// beyond the run's deadline (see
    /// [`SimOptions::deadline`](crate::SimOptions)).
    Timeout {
        /// The configured virtual-time budget.
        deadline: SimSpan,
        /// Human-readable description of what was still pending.
        detail: String,
    },
    /// An adaptive measurement exhausted its repeat budget without the
    /// confidence interval reaching the precision target.
    PrecisionNotReached {
        /// Target relative CI half-width (e.g. 0.025 for the paper).
        target: f64,
        /// Achieved relative CI half-width when the budget ran out.
        achieved: f64,
        /// Number of samples actually taken.
        samples: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            SimError::Timeout { deadline, detail } => {
                write!(f, "virtual-time watchdog fired after {deadline}: {detail}")
            }
            SimError::PrecisionNotReached {
                target,
                achieved,
                samples,
            } => write!(
                f,
                "precision target {:.2}% not reached after {samples} samples \
                 (achieved CI half-width {:.2}% of the mean)",
                100.0 * target,
                100.0 * achieved
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::RankPanic {
            rank: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "rank 3 panicked: boom");
        let d = SimError::Deadlock {
            detail: "rank 0: blocked".into(),
        };
        assert!(d.to_string().starts_with("deadlock:"));
        let t = SimError::Timeout {
            deadline: SimSpan::from_millis(5),
            detail: "2 ranks blocked".into(),
        };
        assert!(t.to_string().contains("watchdog"));
        assert!(t.to_string().contains("5.000ms"));
        let p = SimError::PrecisionNotReached {
            target: 0.025,
            achieved: 0.101,
            samples: 200,
        };
        let s = p.to_string();
        assert!(s.contains("2.50%") && s.contains("10.10%") && s.contains("200"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(SimError::Deadlock {
            detail: String::new(),
        });
        assert!(e.source().is_none());
    }
}
